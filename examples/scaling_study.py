#!/usr/bin/env python3
"""Full-scale scaling study (paper Tables II/III + Fig. 7).

Regenerates the paper's performance tables from the calibrated machine
model and the event-simulated iteration schedules, printing modeled values
next to the paper's reported numbers.

Run:
    python examples/scaling_study.py
"""

from repro.experiments import run_fig7a, run_fig7b, run_table2, run_table3


def main() -> None:
    print("=" * 78)
    print("Small Lead Titanate dataset (4158 probes) — paper Table II")
    print("=" * 78)
    print(run_table2().format())

    print()
    print("=" * 78)
    print("Large Lead Titanate dataset (16632 probes) — paper Table III")
    print("=" * 78)
    table3 = run_table3()
    print(table3.format())
    print()
    print("headline factors vs the paper's abstract:")
    print(
        f"  memory reduction 6 -> 4158 GPUs: {table3.memory_reduction_factor():5.1f}x"
        "   (paper: 51x)"
    )
    print(
        f"  scalability GD vs HVE:           {table3.scalability_factor():5.1f}x"
        "   (paper:  9x)"
    )
    print(
        f"  speed GD-best vs HVE-at-max:     {table3.speed_factor():5.1f}x"
        "   (paper: 86x)"
    )

    print()
    print("=" * 78)
    print("Strong scaling vs ideal O(1/P) — paper Fig. 7a")
    print("=" * 78)
    fig7a = run_fig7a()
    print(fig7a.format())
    for label in ("small Lead Titanate", "large Lead Titanate"):
        pts = fig7a.superlinear_points(label)
        print(f"  super-linear GPU counts ({label}): {pts}")

    print()
    print("=" * 78)
    print("Runtime breakdown, APPP vs w/o APPP — paper Fig. 7b")
    print("=" * 78)
    fig7b = run_fig7b()
    print(fig7b.format())
    print(
        f"\n  comm(w/o APPP) / comm(APPP) at 462 GPUs: "
        f"{fig7b.comm_ratio(462):.0f}x (paper: 16x)"
    )


if __name__ == "__main__":
    main()
