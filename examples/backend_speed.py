#!/usr/bin/env python3
"""Timed comparison of the compute backends and precision policies.

Times the batched probe-window transform (the multislice hot kernel) and
one full cost+gradient evaluation on every backend available on this
machine, at complex128 and complex64, and prints the speedups over the
numpy/complex128 reference.  The same sweep, JSON-serialized, is what
``benchmarks/run_benchmarks.py`` writes to ``BENCH_backends.json``.

Run:
    PYTHONPATH=src python examples/backend_speed.py
"""

import time

import numpy as np

from repro.backend import available_backend_names, get_backend, resolve_precision
from repro.physics.multislice import MultisliceModel
from repro.physics.probe import ProbeSpec, make_probe
from repro.utils.fftutils import fft2c, ifft2c


def best_of(fn, repeats=5):
    fn()  # warm-up (plan caches, twiddle tables)
    return min(
        (lambda t0: (fn(), time.perf_counter() - t0)[1])(time.perf_counter())
        for _ in range(repeats)
    )


def main() -> None:
    backends = available_backend_names()
    print(f"available backends: {', '.join(backends)}")
    print("(cupy auto-registers too; it only lists here with a GPU)\n")

    # --- the batched probe-window FFT round trip ----------------------
    rng = np.random.default_rng(0)
    batch, n = 16, 96
    stack128 = rng.normal(size=(batch, n, n)) + 1j * rng.normal(size=(batch, n, n))
    print(f"batched fft2c/ifft2c round trip ({batch}x{n}x{n}):")
    # The reference scenario is timed first, explicitly — backend
    # iteration order must not pick the baseline.
    baseline = best_of(
        lambda: ifft2c(fft2c(stack128, "numpy"), "numpy")
    )
    for name in backends:
        backend = get_backend(name)
        for dtype in ("complex128", "complex64"):
            stack = stack128.astype(resolve_precision(dtype).complex_dtype)
            seconds = best_of(lambda: ifft2c(fft2c(stack, backend), backend))
            print(
                f"  {name:>10} {dtype:>10}: {seconds * 1e3:7.2f} ms"
                f"   ({baseline / seconds:4.2f}x vs numpy/complex128)"
            )

    # --- one multislice cost+gradient evaluation ----------------------
    window, slices = 64, 8
    probe = make_probe(
        ProbeSpec(window=window, defocus_pm=5000.0, pixel_size_pm=10.0)
    ).array
    obj = np.exp(1j * 0.1 * rng.normal(size=(slices, window, window)))
    truth = np.exp(1j * 0.1 * rng.normal(size=(slices, window, window)))
    ref_model = MultisliceModel(
        window, slices, 10.0, 2.508, 125.0,
        backend="numpy", dtype="complex128",
    )
    ref_measured = ref_model.forward_amplitude(probe, truth)
    baseline = best_of(
        lambda: ref_model.cost_and_gradient(probe, obj, ref_measured)
    )
    print(f"\nmultislice cost+gradient ({slices} slices, {window}px window):")
    for name in backends:
        for dtype in ("complex128", "complex64"):
            model = MultisliceModel(
                window, slices, 10.0, 2.508, 125.0,
                backend=name, dtype=dtype,
            )
            measured = model.forward_amplitude(probe, truth)
            seconds = best_of(
                lambda: model.cost_and_gradient(probe, obj, measured)
            )
            print(
                f"  {name:>10} {dtype:>10}: {seconds * 1e3:7.2f} ms"
                f"   ({baseline / seconds:4.2f}x vs numpy/complex128)"
            )

    print(
        "\ncomplex64 halves every buffer (the paper's Table I storage"
        " model);\nthe threaded backend adds planned, multi-worker"
        " scipy.fft on top."
    )


if __name__ == "__main__":
    main()
