#!/usr/bin/env python3
"""Reconstruction as a service: three concurrent jobs on a two-worker
pool, with live progress, a mid-flight pause, and a bit-exact resume.

Demonstrates the ``repro.service`` job layer:

* submit returns a handle immediately; a bounded worker pool runs the
  queue (priority + aging fairness) while the submitter keeps working;
* every job's progress is a pollable/subscribable stream of cost, rate
  and ETA updates;
* a paused job checkpoints at the iteration boundary and resumes to a
  final archive bit-identical to an uninterrupted run (gd synchronous
  and hve are exactly resumable).

Run:
    python examples/service_demo.py
"""

import tempfile
import time

import numpy as np

from repro import (
    ReconstructionConfig,
    reconstruct,
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)
from repro.service import JobState, ReconstructionService


def main() -> None:
    # 1. One shared acquisition, three differently-configured jobs.
    spec = scaled_pbtio3_spec(
        scan_grid=(6, 6), detector_px=24, n_slices=2, overlap_ratio=0.72
    )
    dataset = simulate_dataset(spec, seed=7)
    lr = suggest_lr(dataset, alpha=0.4)
    iterations = 8

    def gd(mode, n_ranks):
        return ReconstructionConfig(
            solver="gd",
            solver_params={"n_ranks": n_ranks, "iterations": iterations,
                           "lr": lr, "mode": mode},
        )

    configs = {
        "gd-sync-4": gd("synchronous", 4),
        "gd-sync-9": gd("synchronous", 9),
        "hve-4": ReconstructionConfig(
            solver="hve",
            solver_params={"n_ranks": 4, "iterations": iterations,
                           "lr": lr},
        ),
    }

    with tempfile.TemporaryDirectory() as root:
        with ReconstructionService(root, workers=2) as service:
            # 2. Submit all three; handles come back before any finishes.
            handles = {
                name: service.submit(dataset, config, job_id=name)
                for name, config in configs.items()
            }
            print(f"submitted {len(handles)} jobs to a 2-worker pool\n")

            # 3. Watch the pool drain: poll each job's progress stream.
            settled = set()
            while len(settled) < len(handles):
                time.sleep(0.05)
                for name, handle in handles.items():
                    state = handle.state
                    stream = handle.progress()
                    update = stream.poll() if stream else None
                    if update is not None and name not in settled:
                        print(f"  {name:10} {state:9} "
                              f"iter {update.iteration}/{update.total}  "
                              f"cost {update.cost:.3e}  "
                              f"{update.iter_per_s:6.1f} it/s")
                    if state in JobState.SETTLED:
                        settled.add(name)

            # 4. Every archive matches its serial run bit for bit.
            print("\nparity vs direct reconstruct():")
            for name, handle in handles.items():
                archive = handle.result()
                direct = reconstruct(dataset, configs[name])
                exact = (
                    np.array_equal(archive.volume, direct.volume)
                    and list(archive.history) == list(direct.history)
                )
                print(f"  {name:10} final cost {archive.final_cost:.3e}  "
                      f"bit-exact: {exact}")

        # 5. Pause/resume: stop a fresh job after 3 iterations, resume
        #    it under a brand-new service (the checkpoint is durable),
        #    and verify the stitched result is still bit-exact.
        print("\npause -> resume (new service over the same root):")
        config = configs["gd-sync-4"]
        with ReconstructionService(root, workers=1) as service:
            handle = service.submit(dataset, config, job_id="paused-job")
            handle.pause(at_iteration=3)
            handle.wait()
            print(f"  paused at iteration "
                  f"{handle.record().iterations_done}/{iterations}")
        with ReconstructionService(root, workers=1) as service:
            handle = service.resume("paused-job")
            handle.wait()
            archive = handle.result()
            direct = reconstruct(dataset, config)
            print(f"  resumed to {archive.n_iterations} iterations; "
                  f"bit-exact: {np.array_equal(archive.volume, direct.volume)}")


if __name__ == "__main__":
    main()
