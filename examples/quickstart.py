#!/usr/bin/env python3
"""Quickstart: simulate a PbTiO3 acquisition and reconstruct it with the
Gradient Decomposition algorithm (paper Alg. 1) on a virtual 3x3 GPU mesh,
driven through the config-based ``repro.reconstruct`` API.

Run:
    python examples/quickstart.py
"""

import numpy as np

import repro
from repro import (
    ReconstructionConfig,
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)
from repro.metrics.image_quality import complex_correlation


def main() -> None:
    # 1. A scaled-down Lead Titanate acquisition (same geometry family as
    #    the paper's Table I datasets: multislice PbTiO3, 200 keV, raster
    #    scan with overlapping probes).
    spec = scaled_pbtio3_spec(
        scan_grid=(8, 8), detector_px=24, n_slices=2, overlap_ratio=0.72
    )
    print(f"dataset: {spec.name}")
    print(f"  probes:      {spec.n_probes} ({spec.scan_grid[0]}x{spec.scan_grid[1]} raster)")
    print(f"  detector:    {spec.detector_px}x{spec.detector_px}")
    print(f"  volume:      {spec.object_shape[0]}x{spec.object_shape[1]}x{spec.n_slices}")
    dataset = simulate_dataset(spec, seed=7)

    # 2. Describe the run as a config: the paper's Algorithm 1 ("gd" in
    #    the solver registry; "hve" and "serial" are the baselines) on 9
    #    virtual GPUs, per-probe local updates + gradient accumulation
    #    passes once per iteration, APPP planner.  The config is plain
    #    JSON — print it, save it, replay it, or run it from the CLI with
    #    `repro-ptycho reconstruct --config run.json`.
    config = ReconstructionConfig(
        solver="gd",
        solver_params={
            "n_ranks": 9,
            "iterations": 10,
            "lr": float(suggest_lr(dataset, alpha=0.35)),
            "mode": "alg1",
            "sync_period": "iteration",
            "planner": "appp",
            "compensate_local": True,
        },
    )
    print(f"\nconfig:\n{config.to_json()}\n")

    # 3. One call runs any registered solver; the observer watches each
    #    iteration live (see repro.api.IterationEvent for all fields).
    result = repro.reconstruct(
        dataset,
        config,
        observers=[
            lambda ev: print(
                f"  [live] iter {ev.iteration + 1}/{ev.n_iterations}  "
                f"cost {ev.cost:.4e}  ({ev.elapsed_s:.2f}s)"
            )
        ],
    )

    # 4. Report.
    print("\nconvergence (sum of squared amplitude residuals):")
    for it, cost in enumerate(result.history):
        bar = "#" * max(1, int(40 * cost / result.history[0]))
        print(f"  iter {it:2d}  {cost:10.4e}  {bar}")

    m = spec.detector_px // 2  # well-scanned interior
    corr = complex_correlation(
        result.volume[:, m:-m, m:-m] - 1.0,
        dataset.ground_truth[:, m:-m, m:-m] - 1.0,
    )
    print(f"\nstructure correlation vs ground truth: {corr:.3f}")
    print(f"messages exchanged: {result.messages}")
    print(f"bytes moved:        {result.message_bytes / 1e6:.2f} MB")
    print(
        f"peak memory/rank:   {result.peak_memory_mean / 1e6:.2f} MB "
        f"(vs {dataset.amplitudes.nbytes / 1e6 + result.volume.nbytes / 1e6:.2f} MB serial)"
    )


if __name__ == "__main__":
    main()
