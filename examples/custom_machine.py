#!/usr/bin/env python3
"""Planning a deployment on *your* cluster.

The performance model is not Summit-specific: describe your machine
(GPUs per node, memory, link speeds, sustained kernel throughput) and your
acquisition, and the predictor tells you how many GPUs you need for a
target wall-clock time and whether the memory fits.

This example sizes a hypothetical A100 cluster (8 GPUs/node, 40 GB,
NVLink3 + HDR InfiniBand, ~4x the V100-era sustained throughput) for the
paper's large Lead Titanate acquisition.

Run:
    python examples/custom_machine.py
"""

from repro import MachineSpec, PerformancePredictor, large_pbtio3_spec


def main() -> None:
    a100_cluster = MachineSpec(
        name="a100-hdr",
        gpus_per_node=8,
        gpu_memory_bytes=40e9,
        effective_flops=8.8e11,      # ~4x the calibrated V100-era stack
        probe_overhead_s=1e-3,
        memory_bandwidth=1.5e12,
        intra_node_bw=300e9,         # NVLink3
        intra_node_latency_s=2e-6,
        inter_node_bw=25e9,          # HDR200
        inter_node_latency_s=4e-6,
        collective_bw=4e9,
        speed_jitter=0.10,
    )
    spec = large_pbtio3_spec()
    predictor = PerformancePredictor(spec, machine=a100_cluster)

    print(f"machine: {a100_cluster.name} ({a100_cluster.gpus_per_node} GPUs/node)")
    print(f"dataset: {spec.name} ({spec.n_probes} probes, "
          f"{spec.object_shape[0]}x{spec.object_shape[1]}x{spec.n_slices} volume)")
    print()
    header = f"{'GPUs':>6} {'nodes':>6} {'mem/GPU GB':>11} {'time min':>9} {'eff %':>7}"
    print(header)
    print("-" * len(header))
    rows = predictor.sweep([8, 64, 256, 1024, 4096], "gd")
    for r in rows:
        print(
            f"{r.gpus:>6} {r.nodes:>6} {float(r.memory_gb):>11.2f} "
            f"{float(r.runtime_min):>9.1f} {float(r.efficiency_pct):>7.0f}"
        )

    # Sizing question: smallest sweep point under 5 minutes?
    target = next(
        (r for r in rows if float(r.runtime_min) < 5.0), None
    )
    print()
    if target is not None:
        print(
            f"=> {target.gpus} GPUs ({target.nodes} nodes) reconstruct the "
            f"acquisition in {float(target.runtime_min):.1f} minutes at "
            f"{float(target.memory_gb):.2f} GB per GPU."
        )
    else:
        print("=> no sweep point meets the 5-minute target; add GPUs.")


if __name__ == "__main__":
    main()
