#!/usr/bin/env python3
"""Mixed-state (multi-mode) probe reconstruction.

Real illumination is partially coherent: the detector records an
*incoherent* sum of intensities over a few orthogonal probe modes.  A
single-mode model cannot explain such data — its best fit stalls at a
cost floor set by the coherence of the beam.  This demo:

1. simulates a partially coherent acquisition (2-mode illumination,
   ``simulate_dataset(..., probe_modes=2)``),
2. reconstructs it with the scalar model and with ``probe_modes=2``,
3. shows the mixed-state model descending through the scalar model's
   floor, and the recovered mode stack's energy ordering,
4. round-trips the ``(M, w, w)`` stack through a result archive and
   resumes from it bit-exactly.

Run:
    python examples/mixed_state_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import ReconstructionConfig
from repro.io import load_result, save_result


def make_dataset():
    spec = repro.scaled_pbtio3_spec(
        scan_grid=(4, 4), detector_px=16, n_slices=2, overlap_ratio=0.7
    )
    return repro.simulate_dataset(spec, seed=17, probe_modes=2)


def config(probe_modes=None, iterations=8):
    return ReconstructionConfig(
        solver="gd",
        solver_params={
            "n_ranks": 4,
            "iterations": iterations,
            "lr": 0.02,
            "mode": "synchronous",
            "refine_probe": True,
        },
        probe_modes=probe_modes,
    )


def main() -> None:
    dataset = make_dataset()
    print("partially coherent acquisition (2-mode illumination):")
    print(f"  {dataset.scan.n_positions} positions, "
          f"{dataset.probe.window}px probe window\n")

    scalar = repro.reconstruct(dataset, config())
    mixed = repro.reconstruct(dataset, config(probe_modes=2))

    print("cost history (same solver, scalar vs 2-mode probe):")
    for it, (s, m) in enumerate(zip(scalar.history, mixed.history)):
        print(f"  iter {it:2d}   scalar {s:10.4e}   mixed {m:10.4e}")
    ratio = scalar.history[-1] / mixed.history[-1]
    print(f"\n  mixed-state final cost is {ratio:.1f}x lower — the "
          "incoherent 2-mode model explains the partial coherence the "
          "scalar model cannot.\n")

    powers = np.sum(np.abs(mixed.probe) ** 2, axis=(-2, -1))
    total = powers.sum()
    print(f"recovered mode stack: shape {mixed.probe.shape}, "
          "energy-ordered after per-sweep SVD orthogonalization:")
    for m, p in enumerate(powers):
        print(f"  mode {m}: {100 * p / total:5.1f}% of probe power")

    # The (M, w, w) stack survives archives: resume from a saved half
    # run and land bit-for-bit on the uninterrupted result.
    with tempfile.TemporaryDirectory() as tmp:
        half = repro.reconstruct(dataset, config(probe_modes=2, iterations=4))
        archive = load_result(save_result(Path(tmp) / "half.npz", half))
        resumed = repro.reconstruct(
            dataset,
            config(probe_modes=2, iterations=4),
            initial_volume=archive.volume,
            initial_probe=archive.probe,
        )
    exact = np.array_equal(resumed.volume, mixed.volume) and np.array_equal(
        resumed.probe, mixed.probe
    )
    print(f"\narchive round trip: 4+4 iterations == 8 straight: "
          f"{'bit-exact' if exact else 'MISMATCH'}")


if __name__ == "__main__":
    main()
