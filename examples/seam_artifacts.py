#!/usr/bin/env python3
"""Seam-artifact comparison (paper Fig. 8).

Reconstructs the same high-overlap acquisition with the Halo Voxel
Exchange baseline and the Gradient Decomposition method on a 3x3 mesh,
quantifies tile-border seams, and saves the phase images plus a boundary
profile for inspection.

Run:
    python examples/seam_artifacts.py
Outputs (under examples/output/):
    fig8_serial.npy, fig8_gd.npy, fig8_hve.npy  - phase images
    fig8_profile.txt                            - boundary profile table
"""

import os

import numpy as np

from repro.core.decomposition import decompose_gradient
from repro.experiments.fig8 import run_fig8
from repro.metrics.seam import boundary_profile
from repro.parallel.topology import MeshLayout

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    print("running Fig. 8 seam-artifact experiment (three reconstructions)...")
    result = run_fig8()
    print()
    print(result.format())
    print()
    verdict = "REPRODUCED" if result.hve_has_seams and result.gd_seam_free else "DIVERGED"
    print(f"paper claim (HVE seams, GD seam-free): {verdict}")

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    for name, volume in (
        ("serial", result.volume_serial),
        ("gd", result.volume_gd),
        ("hve", result.volume_hve),
    ):
        phase = np.angle(volume[0])
        np.save(os.path.join(OUTPUT_DIR, f"fig8_{name}.npy"), phase)

    # Boundary profile: mean |row difference| per row; seams appear as
    # spikes at the marked tile-boundary rows.
    decomp = decompose_gradient(
        result.dataset.scan,
        result.dataset.object_shape,
        mesh=MeshLayout(3, 3),
    )
    lines = ["row  serial    gd        hve       boundary"]
    p_serial, marks = boundary_profile(result.volume_serial, decomp)
    p_gd, _ = boundary_profile(result.volume_gd, decomp)
    p_hve, _ = boundary_profile(result.volume_hve, decomp)
    for row in range(len(p_serial)):
        marker = "  <-- tile boundary" if (row + 1) in marks else ""
        lines.append(
            f"{row + 1:3d}  {p_serial[row]:.6f}  {p_gd[row]:.6f}  "
            f"{p_hve[row]:.6f}{marker}"
        )
    path = os.path.join(OUTPUT_DIR, "fig8_profile.txt")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"\nphase images and boundary profile written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()
