#!/usr/bin/env python3
"""Convergence vs communication frequency (paper Fig. 9).

Runs the Gradient Decomposition with the three delayed-accumulation
settings of the paper's Fig. 9 and prints the cost curves as ASCII plots.

Run:
    python examples/convergence_study.py
"""

from repro.experiments.fig9 import run_fig9


def ascii_curve(history, width=50):
    top = max(history)
    lines = []
    for it, cost in enumerate(history):
        bar = "#" * max(1, int(width * cost / top))
        lines.append(f"    iter {it:2d}  {cost:10.4e}  {bar}")
    return "\n".join(lines)


def main() -> None:
    print("running Fig. 9 convergence study (3 x 10 iterations, 42 ranks)...")
    result = run_fig9(iterations=10)
    print()
    print(result.format())
    print()
    for label, history in result.histories.items():
        print(f"  {label} ({result.message_counts[label]} messages):")
        print(ascii_curve(history))
        print()

    if result.reduced_frequency_wins():
        print(
            "paper claim REPRODUCED: passes once/twice per iteration "
            "converge at least as fast as per-probe passes, with "
            f"{result.communication_savings():.0f}x fewer messages."
        )
    else:
        print("paper claim NOT reproduced at this configuration.")


if __name__ == "__main__":
    main()
