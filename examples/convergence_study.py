#!/usr/bin/env python3
"""Convergence vs communication frequency (paper Fig. 9).

Runs the Gradient Decomposition with the three delayed-accumulation
settings of the paper's Fig. 9 and prints the cost curves as ASCII plots.

Observing a run
---------------
Reconstructors used to take a bare ``callback(iteration, cost, engine)``
hook; that keyword still works but is deprecated.  The replacement is the
structured observer API — any callable receiving a
:class:`repro.api.IterationEvent` can be passed to
``repro.reconstruct(dataset, config, observers=[...])`` or to any
reconstructor's ``reconstruct(..., observers=[...])``::

    # before (deprecated):
    recon.reconstruct(dataset, callback=lambda it, cost, eng: log(it, cost))
    # after:
    repro.reconstruct(dataset, config,
                      observers=[lambda ev: log(ev.iteration, ev.cost)])

Events also carry wall-clock time, message/memory counters, and a lazy
``snapshot()`` producing a full ReconstructionResult — which is how
:class:`repro.api.CheckpointPolicy` writes restartable checkpoints every
N iterations (demonstrated below).

Run:
    python examples/convergence_study.py
"""

import tempfile
from pathlib import Path

import repro
from repro import CheckpointPolicy, ReconstructionConfig
from repro.experiments.fig9 import run_fig9


def ascii_curve(history, width=50):
    top = max(history)
    lines = []
    for it, cost in enumerate(history):
        bar = "#" * max(1, int(width * cost / top))
        lines.append(f"    iter {it:2d}  {cost:10.4e}  {bar}")
    return "\n".join(lines)


def observer_demo() -> None:
    """A small run watched live and checkpointed every 2 iterations."""
    spec = repro.scaled_pbtio3_spec(
        scan_grid=(4, 4), detector_px=16, n_slices=2, overlap_ratio=0.72
    )
    dataset = repro.simulate_dataset(spec, seed=5)
    config = ReconstructionConfig(
        solver="gd",
        solver_params={
            "n_ranks": 4,
            "iterations": 6,
            "lr": float(repro.suggest_lr(dataset, alpha=0.35)),
        },
    )
    with tempfile.TemporaryDirectory() as tmp:
        checkpoints = CheckpointPolicy(Path(tmp), every=2, config=config)
        ticker = lambda ev: print(
            f"  iter {ev.iteration + 1}/{ev.n_iterations}  cost {ev.cost:.4e}"
        )
        repro.reconstruct(dataset, config, observers=[ticker, checkpoints])
        print(f"  checkpoints written: {[p.name for p in checkpoints.saved_paths]}")


def main() -> None:
    print("observer demo (live ticker + CheckpointPolicy every 2 iterations):")
    observer_demo()
    print()

    print("running Fig. 9 convergence study (3 x 10 iterations, 42 ranks)...")
    result = run_fig9(iterations=10)
    print()
    print(result.format())
    print()
    for label, history in result.histories.items():
        print(f"  {label} ({result.message_counts[label]} messages):")
        print(ascii_curve(history))
        print()

    if result.reduced_frequency_wins():
        print(
            "paper claim REPRODUCED: passes once/twice per iteration "
            "converge at least as fast as per-probe passes, with "
            f"{result.communication_savings():.0f}x fewer messages."
        )
    else:
        print("paper claim NOT reproduced at this configuration.")


if __name__ == "__main__":
    main()
