"""Observer/event API: event stream, checkpointing, legacy callback shim."""

import numpy as np
import pytest

from repro.api import (
    CheckpointPolicy,
    HistoryRecorder,
    IterationEvent,
    ReconstructionConfig,
    reconstruct,
)
from repro.baseline import HaloExchangeReconstructor, SerialReconstructor
from repro.core import GradientDecompositionReconstructor, ReconstructionResult
from repro.io import load_result


def _config(solver, lr, iterations=3):
    return ReconstructionConfig(
        solver, {"iterations": iterations, "lr": float(lr)}
    )


class TestEventStream:
    @pytest.mark.parametrize("solver", ["gd", "hve", "serial"])
    def test_one_event_per_iteration(self, tiny_dataset, tiny_lr, solver):
        recorder = HistoryRecorder()
        result = reconstruct(
            tiny_dataset, _config(solver, tiny_lr), observers=[recorder]
        )
        assert len(recorder.events) == 3
        assert [e.iteration for e in recorder.events] == [0, 1, 2]
        assert all(e.solver == solver for e in recorder.events)
        assert all(e.n_iterations == 3 for e in recorder.events)
        assert recorder.costs == result.history
        assert recorder.events[-1].is_last
        assert not recorder.events[0].is_last

    def test_elapsed_and_traffic_monotonic(self, tiny_dataset, tiny_lr):
        recorder = HistoryRecorder()
        reconstruct(tiny_dataset, _config("gd", tiny_lr), observers=[recorder])
        elapsed = [e.elapsed_s for e in recorder.events]
        messages = [e.messages for e in recorder.events]
        assert elapsed == sorted(elapsed)
        assert messages == sorted(messages)
        assert messages[-1] > 0
        assert recorder.events[0].peak_memory_bytes > 0

    def test_multiple_observers_in_order(self, tiny_dataset, tiny_lr):
        seen = []
        reconstruct(
            tiny_dataset,
            _config("serial", tiny_lr, iterations=1),
            observers=[lambda e: seen.append("a"), lambda e: seen.append("b")],
        )
        assert seen == ["a", "b"]

    def test_snapshot_is_partial_result(self, tiny_dataset, tiny_lr):
        snapshots = []
        reconstruct(
            tiny_dataset,
            _config("gd", tiny_lr),
            observers=[lambda e: snapshots.append(e.snapshot())],
        )
        assert all(isinstance(s, ReconstructionResult) for s in snapshots)
        assert [len(s.history) for s in snapshots] == [1, 2, 3]
        assert snapshots[0].volume.shape == (
            tiny_dataset.n_slices,
            *tiny_dataset.object_shape,
        )

    def test_late_snapshot_is_self_consistent(self, tiny_dataset, tiny_lr):
        recorder = HistoryRecorder()
        result = reconstruct(
            tiny_dataset, _config("gd", tiny_lr), observers=[recorder]
        )
        # snapshot() called after the run reflects the *final* state in
        # full — history, volume and counters all describe one moment.
        late = recorder.events[0].snapshot()
        assert late.history == result.history
        assert late.messages == result.messages
        np.testing.assert_array_equal(late.volume, result.volume)

    def test_events_are_frozen(self, tiny_dataset, tiny_lr):
        recorder = HistoryRecorder()
        reconstruct(
            tiny_dataset,
            _config("serial", tiny_lr, iterations=1),
            observers=[recorder],
        )
        with pytest.raises(AttributeError):
            recorder.events[0].cost = 0.0


class TestCheckpointPolicy:
    def test_fires_every_n_iterations(self, tiny_dataset, tiny_lr, tmp_path):
        policy = CheckpointPolicy(tmp_path / "ck", every=2)
        reconstruct(
            tiny_dataset,
            _config("gd", tiny_lr, iterations=5),
            observers=[policy],
        )
        # iterations 2 and 4 of 5 (1-based cadence)
        assert [p.name for p in policy.saved_paths] == [
            "checkpoint_iter0002.npz",
            "checkpoint_iter0004.npz",
        ]
        assert policy.latest == policy.saved_paths[-1]

    def test_checkpoints_are_loadable_and_resumable(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        config = _config("gd", tiny_lr, iterations=4)
        policy = CheckpointPolicy(tmp_path, every=2, config=config)
        result = reconstruct(tiny_dataset, config, observers=[policy])

        archive = load_result(policy.latest)
        assert archive.config == config
        assert len(archive.history) == 4
        np.testing.assert_array_equal(archive.volume, result.volume)

        resumed = reconstruct(
            tiny_dataset,
            config.with_run_params(resume=str(policy.latest)),
        )
        assert resumed.history[0] < result.history[0]

    def test_keep_last_prunes(self, tiny_dataset, tiny_lr, tmp_path):
        policy = CheckpointPolicy(tmp_path, every=1, keep_last=2)
        reconstruct(
            tiny_dataset,
            _config("serial", tiny_lr, iterations=5),
            observers=[policy],
        )
        assert len(policy.saved_paths) == 2
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == [
            "checkpoint_iter0004.npz",
            "checkpoint_iter0005.npz",
        ]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointPolicy(tmp_path, every=0)
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointPolicy(tmp_path, keep_last=0)


class TestLegacyCallbackShim:
    def test_gd_callback_warns_and_fires(self, tiny_dataset, tiny_lr):
        calls = []
        recon = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=tiny_lr
        )
        with pytest.warns(DeprecationWarning, match="observers"):
            recon.reconstruct(
                tiny_dataset,
                callback=lambda it, cost, eng: calls.append((it, cost)),
            )
        assert [it for it, _ in calls] == [0, 1]

    def test_serial_callback_warns_and_fires(self, tiny_dataset, tiny_lr):
        calls = []
        recon = SerialReconstructor(iterations=2, lr=tiny_lr)
        with pytest.warns(DeprecationWarning):
            recon.reconstruct(
                tiny_dataset, callback=lambda it, c, vol: calls.append(it)
            )
        assert calls == [0, 1]

    def test_hve_callback_warns_and_fires(self, tiny_dataset, tiny_lr):
        calls = []
        recon = HaloExchangeReconstructor(n_ranks=4, iterations=2, lr=tiny_lr)
        with pytest.warns(DeprecationWarning):
            recon.reconstruct(
                tiny_dataset, callback=lambda it, c, eng: calls.append(it)
            )
        assert calls == [0, 1]

    def test_callback_and_observers_both_fire(self, tiny_dataset, tiny_lr):
        events, calls = [], []
        recon = SerialReconstructor(iterations=2, lr=tiny_lr)
        with pytest.warns(DeprecationWarning):
            recon.reconstruct(
                tiny_dataset,
                callback=lambda it, c, vol: calls.append(it),
                observers=[events.append],
            )
        assert calls == [0, 1]
        assert [e.iteration for e in events] == [0, 1]
        assert all(isinstance(e, IterationEvent) for e in events)

    def test_no_warning_without_callback(self, tiny_dataset, tiny_lr, recwarn):
        recon = SerialReconstructor(iterations=1, lr=tiny_lr)
        recon.reconstruct(tiny_dataset)
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
