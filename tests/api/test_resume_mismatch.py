"""Resume validation: an archive only seeds a run whose numerics match
the one that produced it.  ``ReconstructionConfig.fingerprint()`` hashes
the numerics-determining fields (solver, solver params, backend, dtype)
and ignores the neutral ones (iterations, executor, store, batching), so
legitimate replays pass and silent warm-start-from-the-wrong-run fails
loudly with :class:`ResumeMismatchError`."""

import numpy as np
import pytest

from repro import reconstruct
from repro.api import ReconstructionConfig, ResumeMismatchError
from repro.io import save_result



def gd(lr, **over):
    params = {"n_ranks": 4, "iterations": 4, "lr": lr, "mode": "synchronous"}
    params.update(over)
    return ReconstructionConfig(solver="gd", solver_params=params)


@pytest.fixture()
def archive_path(tmp_path, tiny_dataset, tiny_lr):
    config = gd(tiny_lr)
    result = reconstruct(tiny_dataset, config)
    path = tmp_path / "seed.npz"
    save_result(path, result, config=config)
    return path


class TestFingerprint:
    def test_identical_configs_match(self, tiny_lr):
        assert gd(tiny_lr).fingerprint() == gd(tiny_lr).fingerprint()

    def test_numerics_fields_change_fingerprint(self, tiny_lr):
        base = gd(tiny_lr).fingerprint()
        assert gd(tiny_lr * 2).fingerprint() != base
        assert gd(tiny_lr, mode="alg1").fingerprint() != base
        assert gd(tiny_lr, n_ranks=9).fingerprint() != base
        assert ReconstructionConfig(
            solver="hve",
            solver_params={"n_ranks": 4, "iterations": 4, "lr": tiny_lr},
        ).fingerprint() != base
        assert gd(tiny_lr).with_compute(
            dtype="complex64"
        ).fingerprint() != base

    def test_neutral_fields_do_not_change_fingerprint(self, tiny_lr):
        base = gd(tiny_lr).fingerprint()
        assert gd(tiny_lr, iterations=99).fingerprint() == base
        assert gd(tiny_lr).with_runtime(
            executor="process", runtime_workers=2
        ).fingerprint() == base
        assert gd(tiny_lr).with_data(batch_size=4).fingerprint() == base

    def test_ambient_none_matches_explicit_default(self, tiny_lr):
        # backend=None resolves to the ambient default at fingerprint
        # time, so an archive that recorded "numpy" explicitly still
        # seeds a config that left the field ambient.
        ambient = gd(tiny_lr)
        explicit = ambient.with_compute(
            backend="numpy", dtype="complex128"
        )
        assert ambient.fingerprint() == explicit.fingerprint()


class TestResumeCheck:
    def test_matching_resume_runs(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        # reconstruct() returns the *leg* (history of the 4 resumed
        # iterations); the volume matches the uninterrupted run bit for
        # bit.  Whole-job accounting is the service layer's job.
        resumed = reconstruct(
            tiny_dataset,
            gd(tiny_lr).with_run_params(resume=str(archive_path)),
        )
        full = reconstruct(tiny_dataset, gd(tiny_lr, iterations=8))
        np.testing.assert_array_equal(full.volume, resumed.volume)
        assert resumed.history == full.history[4:]

    def test_mismatched_lr_raises(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        config = gd(tiny_lr * 2).with_run_params(resume=str(archive_path))
        with pytest.raises(ResumeMismatchError, match="fingerprint"):
            reconstruct(tiny_dataset, config)

    def test_mismatched_solver_raises(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        config = ReconstructionConfig(
            solver="hve",
            solver_params={"n_ranks": 4, "iterations": 4, "lr": tiny_lr},
            run_params={"resume": str(archive_path)},
        )
        with pytest.raises(ResumeMismatchError):
            reconstruct(tiny_dataset, config)

    def test_resume_unchecked_bypasses(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        config = gd(tiny_lr * 2).with_run_params(
            resume=str(archive_path), resume_unchecked=True
        )
        result = reconstruct(tiny_dataset, config)  # warm start, no raise
        assert result.n_iterations == 4

    def test_configless_archive_skips_check(
        self, tmp_path, tiny_dataset, tiny_lr
    ):
        # Archives written without an embedded config predate the
        # check; they resume as before (nothing to compare against).
        result = reconstruct(tiny_dataset, gd(tiny_lr))
        path = tmp_path / "bare.npz"
        save_result(path, result)  # no config=
        resumed = reconstruct(
            tiny_dataset,
            gd(tiny_lr * 2).with_run_params(resume=str(path)),
        )
        assert resumed.n_iterations == 4

    def test_neutral_knob_changes_resume_fine(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        # Resuming on a different executor/batching is a legitimate
        # replay (bit-identical machinery) and must not trip the check.
        config = gd(tiny_lr).with_data(batch_size=3).with_run_params(
            resume=str(archive_path)
        )
        resumed = reconstruct(tiny_dataset, config)
        full = reconstruct(tiny_dataset, gd(tiny_lr, iterations=8))
        np.testing.assert_array_equal(full.volume, resumed.volume)
        assert resumed.history == full.history[4:]

    def test_error_message_names_both_fingerprints(
        self, tiny_dataset, tiny_lr, archive_path
    ):
        config = gd(tiny_lr * 2).with_run_params(resume=str(archive_path))
        with pytest.raises(ResumeMismatchError) as err:
            reconstruct(tiny_dataset, config)
        message = str(err.value)
        assert gd(tiny_lr * 2).fingerprint()[:12] in message
        assert "resume_unchecked" in message


class TestProbeForwarding:
    def test_probe_refining_resume_is_bit_exact(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        # The archive carries the refined probe; resume forwards it as
        # initial_probe, so split runs match uninterrupted ones probe
        # and all.
        config = gd(tiny_lr, refine_probe=True)
        first = reconstruct(tiny_dataset, config)
        path = tmp_path / "probe_seed.npz"
        save_result(path, first, config=config)
        resumed = reconstruct(
            tiny_dataset, config.with_run_params(resume=str(path))
        )
        full = reconstruct(
            tiny_dataset, gd(tiny_lr, refine_probe=True, iterations=8)
        )
        np.testing.assert_array_equal(full.volume, resumed.volume)
        np.testing.assert_array_equal(full.probe, resumed.probe)
        assert resumed.history == full.history[4:]
