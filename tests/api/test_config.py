"""ReconstructionConfig: validation, immutability, lossless round-trips."""

import json

import pytest

from repro.api import ReconstructionConfig


class TestConstruction:
    def test_minimal(self):
        cfg = ReconstructionConfig("gd")
        assert cfg.solver == "gd"
        assert dict(cfg.solver_params) == {}
        assert dict(cfg.run_params) == {}

    def test_solver_must_be_nonempty_string(self):
        with pytest.raises(ValueError, match="non-empty"):
            ReconstructionConfig("")
        with pytest.raises(ValueError, match="non-empty"):
            ReconstructionConfig(None)

    def test_params_must_be_mapping(self):
        with pytest.raises(TypeError, match="mapping"):
            ReconstructionConfig("gd", solver_params=[("lr", 0.5)])

    def test_keys_must_be_strings(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            ReconstructionConfig("gd", solver_params={1: "x"})

    def test_non_json_value_rejected_with_location(self):
        with pytest.raises(TypeError, match=r"solver_params\['mesh'\]"):
            ReconstructionConfig("gd", solver_params={"mesh": object()})

    def test_nested_non_json_value_rejected(self):
        with pytest.raises(TypeError, match="not JSON-serializable"):
            ReconstructionConfig("gd", solver_params={"a": {"b": [set()]}})

    def test_frozen(self):
        cfg = ReconstructionConfig("gd")
        with pytest.raises(AttributeError):
            cfg.solver = "hve"
        with pytest.raises(TypeError):
            cfg.solver_params["lr"] = 1.0

    def test_mutating_source_dict_does_not_leak(self):
        params = {"lr": 0.5}
        cfg = ReconstructionConfig("gd", solver_params=params)
        params["lr"] = 99.0
        assert cfg.solver_params["lr"] == 0.5


class TestRoundTrip:
    CFG = ReconstructionConfig(
        "gd",
        solver_params={
            "n_ranks": 9,
            "lr": 0.125,
            "sync_period": "iteration",
            "compensate_local": True,
            "mesh": [3, 3],
        },
        run_params={"resume": "prev.npz"},
    )

    def test_dict_round_trip(self):
        assert ReconstructionConfig.from_dict(self.CFG.to_dict()) == self.CFG

    def test_json_round_trip(self):
        assert ReconstructionConfig.from_json(self.CFG.to_json()) == self.CFG

    def test_json_is_plain_json(self):
        payload = json.loads(self.CFG.to_json())
        assert payload["solver"] == "gd"
        assert payload["solver_params"]["mesh"] == [3, 3]
        assert payload["run_params"] == {"resume": "prev.npz"}

    def test_tuples_normalized_to_lists(self):
        cfg = ReconstructionConfig("gd", solver_params={"mesh": (3, 3)})
        assert cfg.solver_params["mesh"] == [3, 3]
        assert ReconstructionConfig.from_json(cfg.to_json()) == cfg

    def test_to_dict_is_a_copy(self):
        payload = self.CFG.to_dict()
        payload["solver_params"]["lr"] = -1
        assert self.CFG.solver_params["lr"] == 0.125

    def test_from_dict_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys.*'extra'"):
            ReconstructionConfig.from_dict({"solver": "gd", "extra": 1})

    def test_from_dict_missing_solver_rejected(self):
        with pytest.raises(ValueError, match="missing the 'solver' key"):
            ReconstructionConfig.from_dict({"solver_params": {}})


class TestProbeModes:
    def test_validation(self):
        with pytest.raises(ValueError, match="probe_modes"):
            ReconstructionConfig("gd", probe_modes=0)
        with pytest.raises(ValueError, match="probe_modes"):
            ReconstructionConfig("gd", probe_modes=-2)
        with pytest.raises((TypeError, ValueError), match="probe_modes"):
            ReconstructionConfig("gd", probe_modes=True)

    def test_round_trips(self):
        cfg = ReconstructionConfig("gd", {"lr": 0.5}, probe_modes=3)
        assert cfg.to_dict()["probe_modes"] == 3
        assert ReconstructionConfig.from_dict(cfg.to_dict()) == cfg
        assert ReconstructionConfig.from_json(cfg.to_json()) == cfg

    def test_with_probe_derives(self):
        base = ReconstructionConfig("gd", {"lr": 0.5})
        mixed = base.with_probe(probe_modes=2)
        assert mixed.probe_modes == 2
        assert base.probe_modes is None  # original untouched
        # None keeps the current value, like every other with_* helper;
        # probe_modes=1 is the explicit way back to the scalar path.
        assert mixed.with_probe().probe_modes == 2
        assert mixed.with_probe(probe_modes=1).probe_modes == 1

    def test_scalar_fingerprint_is_unchanged(self):
        # probe_modes=None and =1 both mean "the historical scalar
        # path" and must keep the pre-mixed-state fingerprint bytes:
        # every archived scalar run stays replay-identifiable.
        base = ReconstructionConfig("gd", {"lr": 0.5})
        explicit = base.with_probe(probe_modes=1)
        assert base.fingerprint() == explicit.fingerprint()

    def test_mixed_state_fingerprint_differs(self):
        base = ReconstructionConfig("gd", {"lr": 0.5})
        assert (
            base.with_probe(probe_modes=2).fingerprint()
            != base.fingerprint()
        )
        assert (
            base.with_probe(probe_modes=2).fingerprint()
            != base.with_probe(probe_modes=3).fingerprint()
        )


class TestDerivation:
    def test_with_solver_params_merges(self):
        cfg = ReconstructionConfig("gd", solver_params={"lr": 0.5, "n_ranks": 4})
        new = cfg.with_solver_params(lr=0.25, iterations=3)
        assert dict(new.solver_params) == {
            "lr": 0.25,
            "n_ranks": 4,
            "iterations": 3,
        }
        assert cfg.solver_params["lr"] == 0.5  # original untouched

    def test_with_run_params_merges(self):
        cfg = ReconstructionConfig("gd")
        new = cfg.with_run_params(resume="a.npz")
        assert dict(new.run_params) == {"resume": "a.npz"}
        assert dict(cfg.run_params) == {}

    def test_equality(self):
        a = ReconstructionConfig("gd", {"lr": 0.5})
        b = ReconstructionConfig("gd", {"lr": 0.5})
        c = ReconstructionConfig("gd", {"lr": 0.6})
        assert a == b
        assert a != c

    def test_hashable(self):
        a = ReconstructionConfig("gd", {"lr": 0.5})
        b = ReconstructionConfig("gd", {"lr": 0.5})
        c = ReconstructionConfig("gd", {"lr": 0.6})
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}
        assert {a: "x"}[b] == "x"
