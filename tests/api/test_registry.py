"""Solver registry: lookup, registration, adapters, uniform results."""

import numpy as np
import pytest

from repro.api import (
    ReconstructionConfig,
    SolverCapabilityError,
    UnknownSolverError,
    get_solver,
    reconstruct,
    register_solver,
    solver_from_config,
    solver_names,
    unregister_solver,
)
from repro.core import ReconstructionResult

TINY = {"iterations": 2}


class TestLookup:
    def test_builtin_solvers_registered(self):
        assert {"gd", "hve", "serial"} <= set(solver_names())

    def test_unknown_solver_lists_registered_names(self):
        with pytest.raises(UnknownSolverError) as err:
            get_solver("nope")
        message = str(err.value)
        for name in ("gd", "hve", "serial"):
            assert name in message

    def test_unknown_solver_via_config(self):
        with pytest.raises(UnknownSolverError, match="registered solvers"):
            solver_from_config(ReconstructionConfig("nope"))


class TestRegistration:
    def test_third_party_roundtrip(self):
        @register_solver("thirdparty-test")
        class Dummy:
            accepted_params = frozenset({"iterations"})

            def __init__(self, iterations=1):
                self.iterations = iterations

            def reconstruct(self, dataset, *, observers=(),
                            initial_probe=None, initial_volume=None):
                return "ran"

        try:
            assert "thirdparty-test" in solver_names()
            assert Dummy.solver_name == "thirdparty-test"
            solver = solver_from_config(
                ReconstructionConfig("thirdparty-test", {"iterations": 7})
            )
            assert solver.iterations == 7
        finally:
            unregister_solver("thirdparty-test")
        assert "thirdparty-test" not in solver_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_solver("gd")
            class Clash:
                def reconstruct(self, dataset, **kw):
                    pass

    def test_class_without_reconstruct_rejected(self):
        with pytest.raises(TypeError, match="reconstruct"):
            @register_solver("no-reconstruct")
            class Bad:
                pass

    def test_unregister_unknown_rejected(self):
        with pytest.raises(UnknownSolverError):
            unregister_solver("never-was")


class TestAdapters:
    def test_unknown_param_is_capability_error(self):
        with pytest.raises(SolverCapabilityError) as err:
            solver_from_config(
                ReconstructionConfig("hve", {"refine_probe": True})
            )
        assert "hve" in str(err.value)
        assert "refine_probe" in str(err.value)
        assert "accepted" in str(err.value)

    def test_hve_rejects_initial_probe(self, tiny_dataset):
        solver = solver_from_config(ReconstructionConfig("hve", TINY))
        with pytest.raises(SolverCapabilityError, match="initial_probe"):
            solver.reconstruct(
                tiny_dataset, initial_probe=tiny_dataset.probe.array
            )

    def test_mesh_json_spelling(self, tiny_dataset):
        solver = solver_from_config(
            ReconstructionConfig("gd", {"mesh": [2, 2], "iterations": 1})
        )
        assert solver.inner.mesh.n_ranks == 4

    def test_bad_mesh_spelling_rejected(self):
        with pytest.raises(SolverCapabilityError, match="rows, cols"):
            solver_from_config(ReconstructionConfig("gd", {"mesh": [2]}))

    def test_delegation_to_inner(self, tiny_dataset):
        solver = solver_from_config(
            ReconstructionConfig("gd", {"n_ranks": 4, "iterations": 1})
        )
        decomp = solver.decompose(tiny_dataset)  # delegated attribute
        schedule = solver.build_iteration_schedule(decomp)
        assert len(list(schedule)) > 0

    @pytest.mark.parametrize("name", ["gd", "hve", "serial"])
    def test_all_solvers_same_result_shape(self, tiny_dataset, tiny_lr, name):
        config = ReconstructionConfig(
            name, {"iterations": 2, "lr": float(tiny_lr)}
        )
        result = reconstruct(tiny_dataset, config)
        assert isinstance(result, ReconstructionResult)
        assert result.volume.shape == (
            tiny_dataset.n_slices,
            *tiny_dataset.object_shape,
        )
        assert len(result.history) == 2
        assert result.history[-1] < result.history[0]
        assert result.messages >= 0
        assert len(result.peak_memory_per_rank) >= 1


class TestReconstructEntryPoint:
    def test_accepts_plain_dict_config(self, tiny_dataset, tiny_lr):
        result = reconstruct(
            tiny_dataset,
            {
                "solver": "serial",
                "solver_params": {"iterations": 1, "lr": float(tiny_lr)},
            },
        )
        assert len(result.history) == 1

    def test_unknown_run_param_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown run_params"):
            reconstruct(
                tiny_dataset,
                ReconstructionConfig(
                    "serial", TINY, run_params={"bogus": 1}
                ),
            )

    def test_resume_run_param(self, tiny_dataset, tiny_lr, tmp_path):
        from repro.io import load_result, save_result

        cfg = ReconstructionConfig(
            "serial", {"iterations": 2, "lr": float(tiny_lr)}
        )
        first = reconstruct(tiny_dataset, cfg)
        path = tmp_path / "first.npz"
        save_result(path, first, config=cfg)

        resumed = reconstruct(
            tiny_dataset, cfg.with_run_params(resume=str(path))
        )
        # warm start: resumed run starts below the cold run's start
        assert resumed.history[0] < first.history[0]

    def test_replay_from_embedded_config_reproduces_history(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        from repro.io import load_result, save_result

        config = ReconstructionConfig(
            "gd",
            {
                "n_ranks": 4,
                "iterations": 3,
                "lr": float(tiny_lr),
                "sync_period": "iteration",
            },
        )
        result = reconstruct(tiny_dataset, config)
        path = tmp_path / "run.npz"
        save_result(path, result, config=config)

        archive = load_result(path)
        assert archive.config == config
        replay = reconstruct(tiny_dataset, archive.config)
        assert replay.history == archive.history
        np.testing.assert_array_equal(replay.volume, archive.volume)
