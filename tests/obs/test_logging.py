"""Logging satellite: level precedence and idempotent CLI setup."""

from __future__ import annotations

import io
import logging

import pytest

import repro
from repro.obs.logconfig import (
    ENV_LOG,
    configure_logging,
    resolve_log_level,
)


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    root = logging.getLogger("repro")
    handlers = list(root.handlers)
    level = root.level
    yield
    root.handlers[:] = handlers
    root.setLevel(level)


class TestResolveLogLevel:
    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        assert resolve_log_level() == logging.WARNING

    def test_verbosity_steps(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        assert resolve_log_level(verbosity=1) == logging.INFO
        assert resolve_log_level(verbosity=2) == logging.DEBUG
        assert resolve_log_level(verbosity=5) == logging.DEBUG

    def test_explicit_beats_verbosity_and_env(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG, "DEBUG")
        assert resolve_log_level(explicit="ERROR", verbosity=2) == logging.ERROR
        assert resolve_log_level(explicit="15") == 15

    def test_env_beats_default_only(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG, "info")
        assert resolve_log_level() == logging.INFO
        assert resolve_log_level(verbosity=2) == logging.DEBUG

    def test_bad_env_falls_back_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG, "chatty")
        assert resolve_log_level() == logging.WARNING

    def test_bad_explicit_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_log_level(explicit="chatty")


class TestConfigureLogging:
    def _cli_handlers(self):
        return [
            h
            for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli_handler", False)
        ]

    def test_installs_exactly_one_handler(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        configure_logging(verbosity=1)
        configure_logging(verbosity=2)
        configure_logging(explicit="WARNING")
        assert len(self._cli_handlers()) == 1
        assert logging.getLogger("repro").level == logging.WARNING

    def test_emits_to_given_stream(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        stream = io.StringIO()
        configure_logging(verbosity=1, stream=stream)
        logging.getLogger("repro.obs.test").info("hello from the suite")
        assert "hello from the suite" in stream.getvalue()
        assert "repro.obs.test" in stream.getvalue()

    def test_root_logger_left_alone(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        before = list(logging.getLogger().handlers)
        configure_logging(verbosity=2)
        assert list(logging.getLogger().handlers) == before


def test_package_root_has_null_handler():
    """Library default: silent unless an application opts in."""
    handlers = logging.getLogger("repro").handlers
    assert any(isinstance(h, logging.NullHandler) for h in handlers)
    assert repro  # the import above is what installs it
