"""Telemetry must never change the numbers.

Tracing is a read-out, not a participant: a traced run must produce
bit-identical results to an untraced one, and the ``telemetry`` config
knob must be invisible to ``fingerprint()`` so cached goldens and
checkpoint resume keys keep matching.
"""

from __future__ import annotations

import pytest

from repro.api import ReconstructionConfig, reconstruct
from repro.obs.telemetry import ENV_TRACE, Telemetry, activate

from tests.helpers import result_fingerprint


def _config(**overrides):
    base = dict(
        solver="gd",
        solver_params={"iterations": 3, "lr": 0.02},
        backend="numpy",
        dtype="complex128",
    )
    base.update(overrides)
    return ReconstructionConfig(**base)


class TestRunInvariance:
    def test_traced_run_matches_untraced(self, tiny_dataset):
        plain = reconstruct(tiny_dataset, config=_config())
        traced = reconstruct(tiny_dataset, config=_config(telemetry=True))
        assert result_fingerprint(traced) == result_fingerprint(plain)
        assert traced.telemetry is not None
        assert plain.telemetry is None

    def test_env_driven_tracing_matches_untraced(self, tiny_dataset, monkeypatch):
        monkeypatch.delenv(ENV_TRACE, raising=False)
        plain = reconstruct(tiny_dataset, config=_config())
        monkeypatch.setenv(ENV_TRACE, "1")
        traced = reconstruct(tiny_dataset, config=_config())
        assert result_fingerprint(traced) == result_fingerprint(plain)
        assert traced.telemetry is not None

    def test_ambient_recorder_matches_untraced(self, tiny_dataset):
        plain = reconstruct(tiny_dataset, config=_config())
        tel = Telemetry()
        with activate(tel):
            traced = reconstruct(tiny_dataset, config=_config())
        assert result_fingerprint(traced) == result_fingerprint(plain)
        # The ambient recorder's view is attached to the result too.
        assert traced.telemetry["phases"]

    def test_traced_summary_covers_engine_phases(self, tiny_dataset):
        result = reconstruct(tiny_dataset, config=_config(telemetry=True))
        summary = result.telemetry
        assert "engine.compute" in summary["phases"]
        assert summary["breakdown"]["gradient"] > 0.0
        assert summary["counters"].get("fft.calls", 0) > 0


class TestConfigNeutrality:
    def test_fingerprint_ignores_telemetry(self):
        assert _config().fingerprint() == _config(telemetry=True).fingerprint()
        assert _config().fingerprint() == _config(telemetry=False).fingerprint()

    def test_round_trips_through_dict(self):
        config = _config(telemetry=True)
        clone = ReconstructionConfig.from_dict(config.to_dict())
        assert clone.telemetry is True
        assert clone.fingerprint() == config.fingerprint()

    def test_default_is_none_meaning_env_decides(self):
        assert _config().telemetry is None

    def test_with_telemetry_helper(self):
        config = _config().with_telemetry()
        assert config.telemetry is True
        assert config.with_telemetry(False).telemetry is False

    def test_non_bool_rejected(self):
        with pytest.raises(ValueError, match="telemetry"):
            _config(telemetry="yes")
