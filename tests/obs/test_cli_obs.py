"""Observability CLI surface: ``--trace``, ``repro stats``, ``jobs
--watch``, and the logging flags — all in-process through ``main()``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io.storage import load_result


@pytest.fixture()
def dataset_path(tmp_path):
    path = tmp_path / "ds.npz"
    assert main([
        "simulate", "--grid", "3x3", "--detector", "16",
        "--slices", "2", "--seed", "7", "--out", str(path),
    ]) == 0
    return path


@pytest.fixture()
def traced_run(dataset_path, tmp_path):
    out = tmp_path / "result.npz"
    trace = tmp_path / "trace.json"
    code = main([
        "reconstruct", "--dataset", str(dataset_path),
        "--algorithm", "gd", "--ranks", "4", "--iterations", "2",
        "--out", str(out), "--trace", str(trace),
    ])
    assert code == 0
    return {"out": out, "trace": trace}


class TestTraceFlag:
    def test_writes_valid_chrome_trace(self, capsys, traced_run):
        # capsys precedes traced_run so the fixture's stdout is captured
        payload = json.loads(traced_run["trace"].read_text())
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M")
            assert "pid" in event and "tid" in event and "ts" in event
        stdout = capsys.readouterr().out
        assert "PHASE" in stdout  # the stats table prints after the run
        assert str(traced_run["trace"]) in stdout

    def test_attaches_summary_to_archive(self, traced_run):
        archive = load_result(traced_run["out"])
        assert archive.telemetry is not None
        assert archive.telemetry["breakdown"]["gradient"] > 0.0

    def test_untraced_archive_has_no_summary(self, dataset_path, tmp_path):
        out = tmp_path / "plain.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "gd", "--ranks", "4", "--iterations", "2",
            "--out", str(out),
        ]) == 0
        assert load_result(out).telemetry is None


class TestStatsCommand:
    def test_table_from_archive(self, traced_run, capsys):
        assert main(["stats", str(traced_run["out"])]) == 0
        out = capsys.readouterr().out
        assert "PHASE" in out and "SECONDS" in out
        assert "engine.compute" in out

    def test_json_from_archive(self, traced_run, capsys):
        assert main(["stats", str(traced_run["out"]), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-telemetry/1"
        assert payload["phases"]

    def test_untraced_archive_exits_2(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "plain.npz"
        main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "gd", "--ranks", "4", "--iterations", "1",
            "--out", str(out),
        ])
        assert main(["stats", str(out)]) == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.npz")]) == 2


class TestLoggingFlags:
    def test_verbose_and_log_level_accepted(self, dataset_path, tmp_path):
        out = tmp_path / "v.npz"
        assert main([
            "-v", "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "gd", "--ranks", "4", "--iterations", "1",
            "--out", str(out),
        ]) == 0
        assert main([
            "--log-level", "DEBUG", "stats", str(tmp_path / "nope"),
        ]) == 2  # flag parses; the command still fails on its own terms

    def test_parser_exposes_flags(self):
        parser = build_parser()
        args = parser.parse_args(["-vv", "simulate", "--out", "x"])
        assert args.verbose == 2
        args = parser.parse_args(
            ["--log-level", "INFO", "simulate", "--out", "x"]
        )
        assert args.log_level == "INFO"


class TestJobsWatch:
    def test_watch_terminates_when_jobs_settle(
        self, dataset_path, tmp_path, capsys
    ):
        root = tmp_path / "jobs"
        config = tmp_path / "config.json"
        from repro.api import ReconstructionConfig

        config.write_text(ReconstructionConfig(
            solver="gd",
            solver_params={"n_ranks": 4, "iterations": 2, "lr": 0.02},
        ).to_json())
        assert main([
            "submit", "--root", str(root), "--dataset", str(dataset_path),
            "--config", str(config), "--job-id", "w1",
        ]) == 0
        assert main([
            "serve", "--root", str(root), "--workers", "1", "--drain",
        ]) == 0
        capsys.readouterr()
        # All jobs settled: the watch loop renders once and exits.
        assert main([
            "jobs", "--root", str(root), "--watch", "--interval", "0.05",
        ]) == 0
        assert "w1" in capsys.readouterr().out

    def test_watch_count_bounds_polling(self, tmp_path, capsys):
        root = tmp_path / "jobs"
        root.mkdir()
        # Empty root, no jobs: --watch-count stops the loop regardless.
        assert main([
            "jobs", "--root", str(root), "--watch",
            "--interval", "0.01", "--watch-count", "2",
        ]) == 0
