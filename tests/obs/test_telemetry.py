"""Telemetry core: recording, merging, enablement, and the null path.

The two load-bearing guarantees here are (1) precedence — an explicit
config value always beats ``REPRO_TRACE`` — and (2) the disabled
recorder being cheap enough that tier-1 can pin a per-call budget on
the hot-path guard.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import telemetry as obs
from repro.obs.telemetry import (
    ENV_TRACE,
    NULL_TELEMETRY,
    BREAKDOWN_KEYS,
    NullTelemetry,
    Telemetry,
    activate,
    current,
    default_telemetry_enabled,
    resolve_telemetry,
)


class TestRecording:
    def test_span_aggregates_calls_and_seconds(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("engine.compute", rank=1):
                pass
        summary = tel.summary()
        assert summary["phases"]["engine.compute"]["calls"] == 3
        assert summary["phases"]["engine.compute"]["seconds"] >= 0.0
        assert summary["ranks"]["1"]["engine.compute"] >= 0.0

    def test_span_records_raw_event_with_args(self):
        tel = Telemetry()
        with tel.span("run.iteration", iteration=4):
            pass
        ((name, rank, t0, t1, args),) = tel.events_snapshot()
        assert name == "run.iteration"
        assert rank is None
        assert t1 >= t0 >= tel.epoch
        assert args == {"iteration": 4}

    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("fft.calls")
        tel.count("fft.calls", 2.0)
        tel.add({"fft.calls": 1.0, "fft.seconds": 0.5})
        counters = tel.counters_snapshot()
        assert counters["fft.calls"] == 4.0
        assert counters["fft.seconds"] == 0.5

    def test_phase_label_tracks_last_opened_span(self):
        tel = Telemetry()
        assert tel.phase_label() is None
        with tel.span("engine.compute"):
            assert tel.phase_label() == "engine.compute"

    def test_max_events_drops_are_counted_never_silent(self):
        tel = Telemetry(max_events=2)
        for _ in range(5):
            with tel.span("x"):
                pass
        summary = tel.summary()
        assert summary["events_recorded"] == 2
        assert summary["events_dropped"] == 3
        # Aggregates keep counting past the raw-event bound.
        assert summary["phases"]["x"]["calls"] == 5

    def test_breakdown_buckets(self):
        tel = Telemetry()
        with tel.span("engine.compute"):
            pass
        with tel.span("engine.exchange"):
            pass
        tel.add({"fft.seconds": 0.25, "queue.wait.seconds": 0.5})
        breakdown = tel.summary()["breakdown"]
        assert tuple(breakdown) == BREAKDOWN_KEYS
        assert breakdown["fft"] == 0.25
        assert breakdown["queue"] == 0.5
        assert breakdown["gradient"] > 0.0
        assert breakdown["halo"] > 0.0
        assert breakdown["collective"] == 0.0


class TestDrainIngest:
    def test_round_trip_merges_everything(self):
        worker = Telemetry()
        with worker.span("engine.compute", rank=2):
            pass
        worker.add({"fft.calls": 7.0})
        payload = worker.drain()
        # drain resets the worker for its next step report
        assert worker.events_snapshot() == []
        assert worker.counters_snapshot() == {}

        parent = Telemetry()
        with parent.span("run.iteration"):
            pass
        parent.ingest(payload)
        summary = parent.summary()
        assert summary["phases"]["engine.compute"]["calls"] == 1
        assert summary["ranks"]["2"]["engine.compute"] >= 0.0
        assert summary["counters"]["fft.calls"] == 7.0
        assert summary["events_recorded"] == 2

    def test_ingest_preserves_per_rank_event_order(self):
        worker = Telemetry()
        for _ in range(4):
            with worker.span("step", rank=3):
                pass
        parent = Telemetry()
        parent.ingest(worker.drain())
        starts = [t0 for _, rank, t0, _, _ in parent.events_snapshot()
                  if rank == 3]
        assert starts == sorted(starts)

    def test_ingest_respects_max_events_and_counts_overflow(self):
        worker = Telemetry()
        for _ in range(5):
            with worker.span("x"):
                pass
        parent = Telemetry(max_events=3)
        parent.ingest(worker.drain())
        summary = parent.summary()
        assert summary["events_recorded"] == 3
        assert summary["events_dropped"] == 2

    def test_ingest_empty_payload_is_noop(self):
        parent = Telemetry()
        parent.ingest({})
        assert parent.summary()["events_recorded"] == 0


class TestActivation:
    def test_default_is_shared_null_recorder(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_activate_installs_and_restores(self):
        tel = Telemetry()
        with activate(tel) as active:
            assert active is tel
            assert current() is tel
        assert current() is NULL_TELEMETRY

    def test_activation_nests(self):
        outer, inner = Telemetry(), Telemetry()
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer

    def test_activation_is_thread_local(self):
        tel = Telemetry()
        seen = {}

        def probe():
            seen["other"] = current()

        with activate(tel):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is NULL_TELEMETRY


class TestEnablement:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE, "1")
        assert resolve_telemetry(False) is False
        monkeypatch.delenv(ENV_TRACE)
        assert resolve_telemetry(True) is True

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsy_env_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv(ENV_TRACE, value)
        assert default_telemetry_enabled() is False
        assert resolve_telemetry(None) is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "trace.json"])
    def test_truthy_env_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_TRACE, value)
        assert resolve_telemetry(None) is True

    def test_unset_env_defaults_off(self, monkeypatch):
        monkeypatch.delenv(ENV_TRACE, raising=False)
        assert resolve_telemetry(None) is False


class TestNullPath:
    def test_null_methods_are_noops(self):
        null = NullTelemetry()
        with null.span("x", rank=1, foo="bar"):
            pass
        null.count("a")
        null.add({"a": 1.0})
        assert null.phase_label() is None
        assert null.summary() is None

    def test_disabled_guard_budget(self):
        """The per-site cost of the disabled path: one thread-local read
        plus one attribute test.  Pinned at a deliberately generous
        2 microseconds per call (measured ~0.1 us) so the test only
        fires if someone accidentally puts allocation, locking or
        formatting in front of the guard."""
        n = 50_000
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(n):
                tel = obs.current()
                if not tel.enabled:
                    pass
            best = min(best, time.perf_counter() - t0)
        assert best / n < 2e-6, f"disabled guard costs {best / n * 1e9:.0f}ns"
