"""Export paths: Chrome trace JSON, the stats table, and load_stats.

The acceptance-critical case lives here: a process-executor run must
produce one merged multi-rank trace whose per-rank timelines are
monotonic — worker spans ship back through the step report and must
not invert under merging.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.io.storage import load_result, save_result
from repro.obs.export import (
    chrome_trace,
    format_stats_table,
    load_stats,
    write_chrome_trace,
)
from repro.obs.telemetry import Telemetry, activate


def _sample_telemetry():
    tel = Telemetry()
    with tel.span("run.iteration", iteration=0):
        with tel.span("engine.compute", rank=0):
            pass
        with tel.span("engine.compute", rank=1):
            pass
    tel.add({"fft.calls": 4.0, "fft.seconds": 0.01})
    return tel


class TestChromeTrace:
    def test_round_trips_through_json_with_valid_fields(self):
        tel = _sample_telemetry()
        payload = json.loads(json.dumps(chrome_trace(tel)))
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_rank_rows_and_run_row(self):
        payload = chrome_trace(_sample_telemetry())
        names = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[0] == "run"
        assert names[1] == "rank 0"
        assert names[2] == "rank 1"

    def test_span_args_survive(self):
        payload = chrome_trace(_sample_telemetry())
        iteration_events = [
            e for e in payload["traceEvents"]
            if e.get("name") == "run.iteration"
        ]
        assert iteration_events[0]["args"] == {"iteration": 0}

    def test_write_chrome_trace(self, tmp_path):
        out = write_chrome_trace(tmp_path / "trace.json", _sample_telemetry())
        payload = json.loads(out.read_text())
        assert payload["otherData"]["schema"] == "repro-trace/1"


class TestMultiRankMerge:
    """Process-executor rank spans merge without clock-skew inversions."""

    @pytest.fixture(scope="class")
    def traced_process_run(self, small_dataset, small_lr):
        tel = Telemetry()
        with activate(tel):
            result = GradientDecompositionReconstructor(
                executor="process", backend="numpy", n_ranks=4,
                runtime_workers=2, iterations=2, lr=small_lr,
                mode="synchronous", halo="exact",
            ).reconstruct(small_dataset)
        return tel, result

    def test_all_ranks_present(self, traced_process_run):
        tel, _ = traced_process_run
        assert set(tel.summary()["ranks"]) == {"0", "1", "2", "3"}

    def test_per_rank_timestamps_monotonic(self, traced_process_run):
        tel, _ = traced_process_run
        payload = chrome_trace(tel)
        starts = {}
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            starts.setdefault(event["pid"], []).append(event["ts"])
        assert len(starts) >= 5  # run row + 4 rank rows
        for pid, series in starts.items():
            assert series == sorted(series), (
                f"pid {pid} timeline not monotonic — worker span merge "
                f"reordered events"
            )

    def test_matches_serial_fingerprint(
        self, traced_process_run, small_dataset, small_lr
    ):
        _, traced = traced_process_run
        plain = GradientDecompositionReconstructor(
            executor="serial", backend="numpy", n_ranks=4,
            iterations=2, lr=small_lr, mode="synchronous", halo="exact",
        ).reconstruct(small_dataset)
        np.testing.assert_array_equal(traced.volume, plain.volume)
        assert traced.history == plain.history


class TestStatsTable:
    def test_sections_render(self):
        tel = _sample_telemetry()
        table = format_stats_table(tel.summary())
        assert "PHASE" in table and "SHARE" in table
        assert "gradient" in table
        assert "engine.compute" in table
        assert "fft.calls" in table
        # timing counters are folded into the breakdown, not repeated
        assert "fft.seconds" not in table

    def test_dropped_events_are_called_out(self):
        tel = Telemetry(max_events=1)
        for _ in range(3):
            with tel.span("x"):
                pass
        assert "2 events dropped" in format_stats_table(tel.summary())


class TestLoadStats:
    def test_archive_round_trip(self, tmp_path, tiny_dataset, tiny_lr):
        tel = Telemetry()
        with activate(tel):
            result = GradientDecompositionReconstructor(
                backend="numpy", n_ranks=2, iterations=2, lr=tiny_lr,
            ).reconstruct(tiny_dataset)
        result.telemetry = tel.summary()
        path = tmp_path / "result.npz"
        save_result(path, result)
        summary = load_stats(path)
        assert summary == result.telemetry
        assert load_result(path).telemetry == result.telemetry

    def test_archive_without_telemetry_raises(
        self, tmp_path, tiny_dataset, tiny_lr
    ):
        result = GradientDecompositionReconstructor(
            backend="numpy", n_ranks=2, iterations=1, lr=tiny_lr,
        ).reconstruct(tiny_dataset)
        path = tmp_path / "plain.npz"
        save_result(path, result)
        with pytest.raises(ValueError, match="no telemetry"):
            load_stats(path)

    def test_job_dir_unwraps_and_adds_queue_counters(self, tmp_path):
        tel = _sample_telemetry()
        (tmp_path / "telemetry.json").write_text(json.dumps({
            "schema": "repro-job-telemetry/1",
            "job_id": "j-test",
            "state": "DONE",
            "queue": {"wait_s": 1.5, "run_s": 2.5},
            "summary": tel.summary(),
        }))
        summary = load_stats(tmp_path)
        assert summary["counters"]["job.queue_wait_s"] == 1.5
        assert summary["counters"]["job.run_s"] == 2.5
        assert "job.queue_wait_s" in format_stats_table(summary)

    def test_untraced_job_dir_raises_with_guidance(self, tmp_path):
        (tmp_path / "telemetry.json").write_text(json.dumps({
            "schema": "repro-job-telemetry/1",
            "job_id": "j-test",
            "state": "DONE",
            "queue": {"wait_s": 0.1, "run_s": 0.2},
            "summary": None,
        }))
        with pytest.raises(ValueError, match="without tracing"):
            load_stats(tmp_path)

    def test_dir_without_telemetry_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="telemetry.json"):
            load_stats(tmp_path)

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_stats(tmp_path / "nope.npz")
