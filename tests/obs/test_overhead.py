"""Overhead budget: disabled telemetry must cost < 2% of a run.

The seed code had no telemetry guards at all, so "no worse than seed"
means the guards' total cost must vanish against the numeric work.
Direct wall-clock pairing of two identical runs only measures OS
noise, so instead this bounds the overhead from first principles:

    (guard sites crossed per run)  x  (cost of one disabled guard)

must be under 2% of the measured untraced runtime.  The site count
comes from a traced run of the same configuration (every span and
counter a traced run records is a guard an untraced run branches
past), padded 4x to cover guard sites that fire without recording.
Slow-marked: runs the pinned small stack several times.
"""

from __future__ import annotations

import time

import pytest

from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.obs import telemetry as obs
from repro.obs.telemetry import Telemetry, activate

pytestmark = pytest.mark.slow


def _solver(small_lr):
    return GradientDecompositionReconstructor(
        backend="numpy", n_ranks=4, iterations=3, lr=small_lr,
        mode="synchronous", halo="exact",
    )


def _guard_cost_seconds() -> float:
    n = 100_000
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(n):
            tel = obs.current()
            if not tel.enabled:
                pass
        best = min(best, time.perf_counter() - t0)
    return best / n


def test_disabled_overhead_under_two_percent(small_dataset, small_lr):
    # How many guard sites does this configuration actually cross?
    tel = Telemetry()
    with activate(tel):
        _solver(small_lr).reconstruct(small_dataset)
    summary = tel.summary()
    sites = summary["events_recorded"] + summary["events_dropped"]
    sites += sum(summary["counters"].values())
    # Every recorded event/increment is one guard crossing (add() with
    # several keys even overcounts); 2x pads the few guards that branch
    # without recording (iteration loop, launch, prefetch waits).
    sites = max(int(sites), 1) * 2

    # How long does the untraced run take?
    runtime = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _solver(small_lr).reconstruct(small_dataset)
        runtime = min(runtime, time.perf_counter() - t0)

    overhead = sites * _guard_cost_seconds()
    assert overhead / runtime < 0.02, (
        f"disabled telemetry costs {100 * overhead / runtime:.2f}% "
        f"({sites} guard sites x {_guard_cost_seconds() * 1e9:.0f}ns "
        f"against a {runtime:.3f}s run)"
    )
