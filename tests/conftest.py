"""Shared fixtures: session-scoped scaled datasets.

Dataset simulation costs a few hundred milliseconds; sharing them across
the suite keeps hundreds of tests fast.  Tests never mutate datasets
(reconstructors copy what they need), so session scope is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """3x3 probes, 16px detector, 2 slices — the smallest real acquisition."""
    spec = scaled_pbtio3_spec(
        scan_grid=(3, 3), detector_px=16, n_slices=2, overlap_ratio=0.7
    )
    return simulate_dataset(spec, seed=101)


@pytest.fixture(scope="session")
def small_dataset():
    """6x6 probes, 24px detector, 3 slices — the equivalence workhorse."""
    spec = scaled_pbtio3_spec(
        scan_grid=(6, 6), detector_px=24, n_slices=3, overlap_ratio=0.7
    )
    return simulate_dataset(spec, seed=202)


@pytest.fixture(scope="session")
def highoverlap_dataset():
    """High circle-overlap acquisition (the paper's Sec. IV regime)."""
    spec = scaled_pbtio3_spec(
        scan_grid=(10, 10), detector_px=20, n_slices=2, circle_overlap=0.8
    )
    return simulate_dataset(spec, seed=303)


@pytest.fixture(scope="session")
def small_lr(small_dataset):
    """A convergent step size for ``small_dataset``."""
    return suggest_lr(small_dataset, alpha=0.4)


@pytest.fixture(scope="session")
def tiny_lr(tiny_dataset):
    return suggest_lr(tiny_dataset, alpha=0.4)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
