"""Executor registry + ambient resolution (the backend precedence rule)."""

import pytest

from repro.runtime import (
    DEFAULT_EXECUTOR_NAME,
    ENV_EXECUTOR,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    UnknownExecutorError,
    default_executor_name,
    executor_names,
    get_executor,
    partition_ranks,
    register_executor,
    resolve_executor,
    unregister_executor,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "process"} <= set(executor_names())

    def test_get_executor(self):
        assert get_executor("serial") is SerialExecutor
        assert get_executor("process") is ProcessExecutor

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownExecutorError, match="serial"):
            get_executor("quantum")

    def test_register_and_unregister(self):
        @register_executor("custom-test")
        class Custom(SerialExecutor):
            pass

        try:
            assert "custom-test" in executor_names()
            assert Custom.name == "custom-test"
            assert isinstance(resolve_executor("custom-test"), Custom)
        finally:
            unregister_executor("custom-test")
        assert "custom-test" not in executor_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("serial")(SerialExecutor)

    def test_registration_requires_launch(self):
        with pytest.raises(TypeError, match="launch"):
            register_executor("broken-test")(object)


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        assert default_executor_name() == DEFAULT_EXECUTOR_NAME
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_env_fills_ambient(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        assert default_executor_name() == "process"
        assert isinstance(resolve_executor(None), ProcessExecutor)

    def test_explicit_beats_env(self, monkeypatch):
        """The precedence contract: an explicit executor is never
        silently overridden by REPRO_EXECUTOR."""
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_instance_passthrough(self):
        ex = ProcessExecutor(workers=2)
        assert resolve_executor(ex) is ex
        assert resolve_executor(ex, workers=2) is ex  # agreeing is fine

    def test_instance_with_conflicting_workers_rejected(self):
        """workers= must never be silently dropped against a configured
        instance."""
        ex = ProcessExecutor(workers=4)
        with pytest.raises(ValueError, match="conflicts"):
            resolve_executor(ex, workers=2)

    def test_workers_forwarded(self):
        assert resolve_executor("process", workers=3).workers == 3

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessExecutor(workers=0)
        with pytest.raises(ValueError, match="positive"):
            resolve_executor("serial", workers=-1)


class TestPartition:
    def test_even_split(self):
        assert partition_ranks(4, 2) == [(0, 1), (2, 3)]

    def test_uneven_split_front_loads(self):
        assert partition_ranks(5, 3) == [(0, 1), (2, 3), (4,)]

    def test_one_worker_hosts_all(self):
        assert partition_ranks(3, 1) == [(0, 1, 2)]

    def test_covers_every_rank_once(self):
        for p in (1, 2, 5, 9, 16):
            for w in range(1, p + 1):
                blocks = partition_ranks(p, w)
                flat = [r for b in blocks for r in b]
                assert flat == list(range(p))
                assert len(blocks) == w

    def test_too_many_workers_rejected(self):
        with pytest.raises(ValueError):
            partition_ranks(2, 3)
        with pytest.raises(ValueError):
            partition_ranks(2, 0)


class TestExecutorProtocol:
    def test_executor_is_abstract(self):
        with pytest.raises(TypeError):
            Executor()
