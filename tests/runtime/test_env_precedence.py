"""The precedence contract, pinned: explicit config fields beat env vars.

A replayed config that pins ``backend=``/``dtype=``/``executor=`` must
run exactly what it says even when ``REPRO_BACKEND``/``REPRO_DTYPE``/
``REPRO_EXECUTOR`` point elsewhere — the environment only fills *ambient*
(``None``) fields.  Each knob gets a behavioural check (not just a
recorded-name check) plus a CLI round-trip.
"""

import json

import numpy as np
import pytest

import repro
from repro.api import ReconstructionConfig
from repro.backend import (
    ENV_BACKEND,
    ENV_DTYPE,
    NumpyBackend,
    register_backend,
    unregister_backend,
)
from repro.runtime import (
    ENV_EXECUTOR,
    SerialExecutor,
    register_executor,
    unregister_executor,
)


@pytest.fixture()
def traced_backend():
    calls = []

    @register_backend("traced-env-test")
    class Traced(NumpyBackend):
        def fft2(self, a, norm="ortho"):
            calls.append(a.shape)
            return super().fft2(a, norm=norm)

    try:
        yield calls
    finally:
        unregister_backend("traced-env-test")


@pytest.fixture()
def traced_executor():
    launches = []

    @register_executor("traced-exec-test")
    class TracedExecutor(SerialExecutor):
        def launch(self, plan):
            launches.append(plan)
            return super().launch(plan)

    try:
        yield launches
    finally:
        unregister_executor("traced-exec-test")


class TestExplicitBeatsEnv:
    def test_pinned_backend_ignores_env(
        self, tiny_dataset, monkeypatch, traced_backend
    ):
        monkeypatch.setenv(ENV_BACKEND, "traced-env-test")
        cfg = ReconstructionConfig(
            "serial", {"iterations": 1, "lr": 0.1}, backend="numpy"
        )
        repro.reconstruct(tiny_dataset, cfg)
        assert not traced_backend, (
            "explicit backend='numpy' was overridden by REPRO_BACKEND"
        )

    def test_ambient_backend_follows_env(
        self, tiny_dataset, monkeypatch, traced_backend
    ):
        monkeypatch.setenv(ENV_BACKEND, "traced-env-test")
        cfg = ReconstructionConfig("serial", {"iterations": 1, "lr": 0.1})
        repro.reconstruct(tiny_dataset, cfg)
        assert traced_backend

    def test_pinned_dtype_ignores_env(self, tiny_dataset, monkeypatch):
        monkeypatch.setenv(ENV_DTYPE, "complex64")
        cfg = ReconstructionConfig(
            "serial", {"iterations": 1, "lr": 0.1}, dtype="complex128"
        )
        result = repro.reconstruct(tiny_dataset, cfg)
        assert result.volume.dtype == np.complex128

    def test_ambient_dtype_follows_env(self, tiny_dataset, monkeypatch):
        monkeypatch.setenv(ENV_DTYPE, "complex64")
        cfg = ReconstructionConfig("serial", {"iterations": 1, "lr": 0.1})
        result = repro.reconstruct(tiny_dataset, cfg)
        assert result.volume.dtype == np.complex64

    def test_pinned_executor_ignores_env(
        self, tiny_dataset, tiny_lr, monkeypatch, traced_executor
    ):
        monkeypatch.setenv(ENV_EXECUTOR, "traced-exec-test")
        cfg = ReconstructionConfig(
            "gd",
            {"n_ranks": 2, "iterations": 1, "lr": float(tiny_lr)},
            executor="serial",
        )
        repro.reconstruct(tiny_dataset, cfg)
        assert not traced_executor, (
            "explicit executor='serial' was overridden by REPRO_EXECUTOR"
        )

    def test_ambient_executor_follows_env(
        self, tiny_dataset, tiny_lr, monkeypatch, traced_executor
    ):
        monkeypatch.setenv(ENV_EXECUTOR, "traced-exec-test")
        cfg = ReconstructionConfig(
            "gd", {"n_ranks": 2, "iterations": 1, "lr": float(tiny_lr)}
        )
        repro.reconstruct(tiny_dataset, cfg)
        assert traced_executor


class TestConfigRoundTrip:
    def test_runtime_fields_round_trip(self):
        cfg = ReconstructionConfig(
            "gd",
            solver_params={"n_ranks": 4},
            executor="process",
            runtime_workers=3,
        )
        clone = ReconstructionConfig.from_json(cfg.to_json())
        assert clone == cfg
        payload = json.loads(cfg.to_json())
        assert payload["executor"] == "process"
        assert payload["runtime_workers"] == 3

    def test_legacy_payload_loads_ambient(self):
        cfg = ReconstructionConfig.from_dict(
            {"solver": "gd", "solver_params": {"n_ranks": 4}}
        )
        assert cfg.executor is None
        assert cfg.runtime_workers is None

    def test_invalid_runtime_fields_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            ReconstructionConfig("gd", executor="")
        with pytest.raises(ValueError, match="runtime_workers"):
            ReconstructionConfig("gd", runtime_workers=0)
        with pytest.raises(ValueError, match="runtime_workers"):
            ReconstructionConfig("gd", runtime_workers=True)

    def test_with_runtime_derivation(self):
        cfg = ReconstructionConfig("gd", backend="numpy")
        new = cfg.with_runtime(executor="process", runtime_workers=2)
        assert new.executor == "process"
        assert new.runtime_workers == 2
        assert new.backend == "numpy"  # untouched
        assert cfg.executor is None  # original untouched
        assert new.with_solver_params(lr=0.1).executor == "process"
        assert new.with_run_params(resume="a.npz").runtime_workers == 2
        assert new.with_compute(dtype="complex64").executor == "process"

    def test_pinning_executor_on_serial_solver_rejected(self):
        from repro.api import SolverCapabilityError, solver_from_config

        cfg = ReconstructionConfig(
            "serial", {"iterations": 1}, executor="process"
        )
        with pytest.raises(SolverCapabilityError, match="executor"):
            solver_from_config(cfg)


class TestCliRoundTrip:
    @pytest.fixture()
    def dataset_path(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ds.npz"
        assert main([
            "simulate", "--grid", "3x3", "--detector", "16",
            "--seed", "5", "--out", str(path),
        ]) == 0
        return path

    def test_executor_flag_recorded_in_archive(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.io import load_result

        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--iterations", "1", "--ranks", "2",
            "--executor", "process", "--runtime-workers", "2",
            "--out", str(out),
        ]) == 0
        assert "executor: process, workers=2" in capsys.readouterr().out
        archive = load_result(out)
        assert archive.config.executor == "process"
        assert archive.config.runtime_workers == 2

    def test_default_flags_record_ambient_executor(
        self, dataset_path, tmp_path, monkeypatch
    ):
        from repro.cli import main
        from repro.io import load_result

        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--iterations", "1", "--ranks", "2", "--out", str(out),
        ]) == 0
        assert load_result(out).config.executor == "serial"

    def test_replayed_config_keeps_pinned_fields_under_env(
        self, dataset_path, tmp_path, monkeypatch
    ):
        """The full satellite contract in one flow: archive a pinned
        config, replay it under conflicting env vars, and confirm the
        pins survive into the replayed archive."""
        from repro.cli import main
        from repro.io import load_result

        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "solver": "gd",
            "solver_params": {"n_ranks": 2, "iterations": 1, "lr": 0.02},
            "backend": "numpy",
            "dtype": "complex128",
            "executor": "serial",
        }))
        monkeypatch.setenv(ENV_BACKEND, "threaded")
        monkeypatch.setenv(ENV_DTYPE, "complex64")
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--config", str(config_path), "--out", str(out),
        ]) == 0
        archive = load_result(out)
        assert archive.config.backend == "numpy"
        assert archive.config.dtype == "complex128"
        assert archive.config.executor == "serial"
        assert archive.volume.dtype == np.complex128

    def test_executor_flag_overrides_config_for_replay(
        self, dataset_path, tmp_path
    ):
        from repro.cli import main
        from repro.io import load_result

        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "solver": "gd",
            "solver_params": {"n_ranks": 2, "iterations": 1, "lr": 0.02},
            "executor": "serial",
        }))
        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--config", str(config_path),
            "--executor", "process",
            "--out", str(out),
        ]) == 0
        assert load_result(out).config.executor == "process"

    def test_executor_flag_rejected_for_serial_solver(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.cli import main

        rc = main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "serial", "--iterations", "1",
            "--executor", "process",
            "--out", str(tmp_path / "rec.npz"),
        ])
        assert rc == 2
        assert "--executor" in capsys.readouterr().err
