"""Runtime-suite fixtures.

The precedence tests probe the full ambient resolution chain
(explicit → in-code default → environment → built-in), so the in-code
default slot must start unset here — other suites legitimately leave it
pinned (e.g. the registry tests restore it to ``"numpy"``, which is an
*explicit* setting and would mask the environment by design).
"""

import pytest

from repro.backend import base as backend_base


@pytest.fixture(autouse=True)
def _clear_in_code_backend_default():
    previous = backend_base._DEFAULT_SPEC[0]
    backend_base._DEFAULT_SPEC[0] = None
    try:
        yield
    finally:
        backend_base._DEFAULT_SPEC[0] = previous
