"""ProcessComm — protocol contract, mirroring the VirtualComm suite.

These tests drive worker-side comms *in one process* over real
multiprocessing queues (the transport does not care where the endpoints
live), so protocol violations — unmatched receive, double wait, bad
ranks, foreign-rank sends — are exercised deterministically and fast.
The barrier/shared-memory collectives are covered end-to-end by the
parity suite.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.parallel.comm import CommError, VirtualComm
from repro.runtime.process_comm import (
    CommChannels,
    CounterSnapshot,
    ProcessComm,
    aggregate_counters,
)

#: Keep unmatched-receive tests fast: nothing ever arrives.
SHORT_TIMEOUT = 0.2


def make_channels(n_ranks: int, n_workers: int) -> CommChannels:
    ctx = mp.get_context()
    return CommChannels(
        inboxes=[ctx.Queue() for _ in range(n_ranks)],
        gather=ctx.Queue(),
        bcast=[ctx.Queue() for _ in range(n_workers)],
        barrier=ctx.Barrier(n_workers),
        n_workers=n_workers,
    )


@pytest.fixture()
def pair():
    """Two single-rank worker comms sharing one transport."""
    channels = make_channels(2, 2)
    a = ProcessComm(2, [0], 0, channels, timeout=SHORT_TIMEOUT)
    b = ProcessComm(2, [1], 1, channels, timeout=SHORT_TIMEOUT)
    return a, b


class TestBasics:
    def test_size(self, pair):
        a, _ = pair
        assert a.Get_size() == 2
        assert a.n_ranks == 2
        assert a.hosted_ranks == (0,)

    def test_validation(self):
        channels = make_channels(1, 1)
        with pytest.raises(ValueError):
            ProcessComm(0, [0], 0, channels)
        with pytest.raises(ValueError):
            ProcessComm(2, [], 0, channels)
        with pytest.raises(CommError):
            ProcessComm(2, [5], 0, channels)


class TestPointToPoint:
    def test_send_recv_roundtrip(self, pair, rng):
        a, b = pair
        payload = rng.normal(size=(5, 5))
        a.send(payload, src=0, dst=1, tag=7)
        np.testing.assert_array_equal(
            b.recv(dst=1, src=0, tag=7), payload
        )

    def test_payload_snapshot_isolation(self, pair):
        a, b = pair
        payload = np.zeros(3)
        a.send(payload, 0, 1)
        payload[:] = 99.0
        np.testing.assert_array_equal(b.recv(1, 0), np.zeros(3))

    def test_fifo_order_per_edge(self, pair):
        a, b = pair
        a.send(np.array([1]), 0, 1, tag=0)
        a.send(np.array([2]), 0, 1, tag=0)
        assert b.recv(1, 0, tag=0)[0] == 1
        assert b.recv(1, 0, tag=0)[0] == 2

    def test_tags_are_independent_streams(self, pair):
        a, b = pair
        a.send(np.array([1]), 0, 1, tag=5)
        a.send(np.array([2]), 0, 1, tag=6)
        assert b.recv(1, 0, tag=6)[0] == 2
        assert b.recv(1, 0, tag=5)[0] == 1

    def test_unmatched_recv_raises_after_timeout(self, pair):
        _, b = pair
        with pytest.raises(CommError, match="no matching message"):
            b.recv(1, 0, tag=3)

    def test_self_send_rejected(self, pair):
        a, _ = pair
        with pytest.raises(CommError, match="self-send"):
            a.send(np.zeros(1), 0, 0)

    def test_rank_bounds(self, pair):
        a, _ = pair
        with pytest.raises(CommError):
            a.send(np.zeros(1), 0, 4)
        with pytest.raises(CommError):
            a.send(np.zeros(1), -1, 1)

    def test_foreign_rank_send_rejected(self, pair):
        """A worker cannot impersonate a rank it does not host."""
        a, _ = pair
        with pytest.raises(CommError, match="not hosted"):
            a.send(np.zeros(1), 1, 0)

    def test_foreign_rank_recv_rejected(self, pair):
        a, _ = pair
        with pytest.raises(CommError, match="not hosted"):
            a.recv(1, 0)


class TestNonBlocking:
    def test_isend_completes_immediately(self, pair):
        a, _ = pair
        req = a.isend(np.ones(2), 0, 1)
        ready, _ = req.test()
        assert ready
        assert req.wait() is None

    def test_irecv_wait_returns_payload(self, pair):
        a, b = pair
        a.send(np.arange(3), 0, 1, tag=1)
        req = b.irecv(dst=1, src=0, tag=1)
        np.testing.assert_array_equal(req.wait(), np.arange(3))

    def test_irecv_test_before_send(self, pair):
        a, b = pair
        req = b.irecv(dst=1, src=0, tag=1)
        ready, _ = req.test()
        assert not ready
        a.send(np.arange(3), 0, 1, tag=1)
        # Queue delivery is asynchronous; poll until visible.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            ready, _ = req.test()
            if ready:
                break
            time.sleep(0.01)
        assert ready

    def test_double_wait_raises(self, pair):
        a, b = pair
        a.send(np.ones(1), 0, 1)
        req = b.irecv(1, 0)
        req.wait()
        with pytest.raises(CommError, match="already completed"):
            req.wait()


class TestAccounting:
    def test_bytes_and_messages_counted_like_virtualcomm(self, pair):
        a, b = pair
        reference = VirtualComm(2)
        payload = np.zeros(100, dtype=np.float64)
        a.send(payload, 0, 1)
        reference.send(payload, 0, 1)
        assert a.sent_messages == reference.sent_messages == 1
        assert a.sent_bytes == reference.sent_bytes == 800
        assert a.per_rank_sent_bytes[0] == 800
        b.recv(1, 0)

    def test_pending_messages_visible_after_drain(self, pair):
        a, b = pair
        a.send(np.zeros(1), 0, 1, tag=1)
        a.send(np.zeros(1), 0, 1, tag=2)
        b.recv(1, 0, tag=2)  # drains tag=1 into the mailbox en route
        assert b.pending_messages() == 1
        b.recv(1, 0, tag=1)
        assert b.pending_messages() == 0

    def test_allreduce_contribution_count_checked(self, pair):
        a, _ = pair
        with pytest.raises(CommError, match="contributions"):
            a.allreduce_sum([np.zeros(2), np.zeros(2)])

    def test_tile_allreduce_requires_registration(self, pair):
        a, _ = pair
        with pytest.raises(CommError, match="register_tile_buffers"):
            a.accbuf_allreduce((1, 4, 4))

    def test_tile_registration_must_cover_all_ranks(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="every rank"):
            a.register_tile_buffers(
                {0: np.zeros((1, 2, 2))},
                {0: (slice(0, 2), slice(0, 2))},
            )


class TestAggregation:
    def test_p2p_counters_sum_exactly(self):
        snaps = [
            CounterSnapshot(3, 300, {0: 300}, []),
            CounterSnapshot(2, 200, {1: 200}, []),
        ]
        agg = aggregate_counters(snaps, 2)
        assert agg.sent_messages == 5
        assert agg.sent_bytes == 500
        assert agg.per_rank_sent_bytes.tolist() == [300, 200]
        assert agg.allreduce_calls == 0

    def test_volume_event_replays_engine_arithmetic(self):
        """The replay must reproduce the serial engine's inline ring
        accounting to the integer."""
        p, nbytes = 4, 10_000
        agg = aggregate_counters(
            [CounterSnapshot(events=[("volume_allreduce", nbytes, 1)])], p
        )
        share = int(2 * (p - 1) / p * nbytes)
        assert agg.sent_bytes == share * p
        assert agg.sent_messages == 2 * (p - 1) * p
        assert (agg.per_rank_sent_bytes == share).all()
        assert agg.allreduce_calls == 1

    def test_probe_event_replays_virtualcomm_arithmetic(self):
        p, nbytes, calls = 4, 100 * 8, 3
        reference = VirtualComm(p)
        for _ in range(calls):
            reference.allreduce_sum([np.zeros(100) for _ in range(p)])
        agg = aggregate_counters(
            [CounterSnapshot(events=[("probe_allreduce", nbytes, calls)])],
            p,
        )
        assert agg.sent_bytes == reference.sent_bytes
        assert agg.sent_messages == reference.sent_messages
        assert (
            agg.per_rank_sent_bytes.tolist()
            == reference.per_rank_sent_bytes.tolist()
        )
        assert agg.allreduce_calls == reference.allreduce_calls

    def test_event_counts_accumulate_per_signature(self):
        """Worker-side events stay one entry per signature no matter how
        many times a collective runs (constant snapshot size)."""
        channels = make_channels(1, 1)
        comm = ProcessComm(1, [0], 0, channels, timeout=SHORT_TIMEOUT)
        for _ in range(5):
            comm.allreduce_sum([np.zeros(10)])
        snap = comm.counters_snapshot()
        assert snap.events == [("probe_allreduce", 80, 5)]
