"""Acceptance bar of the runtime subsystem: the ``process`` executor is
fingerprint-identical to ``serial`` on the numpy backend.

"Fingerprint" means bit-for-bit: stitched volumes compare with
``assert_array_equal`` (no tolerance), cost histories compare with
``==``, and the measured message/byte/memory accounting matches the
``VirtualComm`` numbers exactly — for every gd mesh configuration the
serial-equivalence suite exercises, for every planner, for reduced
worker pools, for probe refinement, and for the halo-exchange baseline.
"""

import numpy as np
import pytest

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor


def _pair(ds, serial_kwargs, **process_extra):
    """Run the same configuration under both executors."""
    r_serial = GradientDecompositionReconstructor(
        executor="serial", backend="numpy", **serial_kwargs
    ).reconstruct(ds)
    r_process = GradientDecompositionReconstructor(
        executor="process", backend="numpy", **serial_kwargs,
        **process_extra,
    ).reconstruct(ds)
    return r_serial, r_process


def _assert_fingerprint(a, b):
    np.testing.assert_array_equal(a.volume, b.volume)
    assert a.history == b.history
    assert a.messages == b.messages
    assert a.message_bytes == b.message_bytes
    assert a.peak_memory_per_rank == b.peak_memory_per_rank


class TestMeshConfigurations:
    """Every rank count of the serial-equivalence suite, both modes."""

    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 6, 9])
    def test_synchronous_bit_identical(self, small_dataset, small_lr, n_ranks):
        a, b = _pair(small_dataset, dict(
            n_ranks=n_ranks, iterations=2, lr=small_lr,
            mode="synchronous", halo="exact",
        ))
        _assert_fingerprint(a, b)

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_alg1_bit_identical(self, tiny_dataset, tiny_lr, n_ranks):
        a, b = _pair(tiny_dataset, dict(
            n_ranks=n_ranks, iterations=2, lr=tiny_lr * 0.5, mode="alg1",
        ))
        _assert_fingerprint(a, b)


class TestPlanners:
    @pytest.mark.parametrize(
        "planner", ["appp", "barrier", "allreduce", "neighbor"]
    )
    def test_every_planner_bit_identical(
        self, tiny_dataset, tiny_lr, planner
    ):
        a, b = _pair(tiny_dataset, dict(
            n_ranks=4, iterations=2, lr=tiny_lr,
            mode="synchronous", planner=planner,
        ))
        _assert_fingerprint(a, b)

    def test_fixed_halo_truncation_bit_identical(self, tiny_dataset, tiny_lr):
        """Gradient truncation (vacuum reads + discarded contributions)
        is rank-local and must survive process placement unchanged."""
        a, b = _pair(tiny_dataset, dict(
            n_ranks=4, iterations=2, lr=tiny_lr, halo=3,
        ))
        _assert_fingerprint(a, b)

    def test_sub_iteration_rounds_bit_identical(self, tiny_dataset, tiny_lr):
        a, b = _pair(tiny_dataset, dict(
            n_ranks=4, iterations=2, lr=tiny_lr, sync_period="half",
        ))
        _assert_fingerprint(a, b)


class TestWorkerPools:
    """runtime_workers < n_ranks co-hosts rank blocks in one process."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_reduced_pool_bit_identical(self, tiny_dataset, tiny_lr, workers):
        a, b = _pair(
            tiny_dataset,
            dict(n_ranks=4, iterations=2, lr=tiny_lr),
            runtime_workers=workers,
        )
        _assert_fingerprint(a, b)


class TestProbeRefinement:
    def test_probe_allreduce_bit_identical(self, tiny_dataset, tiny_lr):
        a, b = _pair(tiny_dataset, dict(
            n_ranks=4, iterations=2, lr=tiny_lr, refine_probe=True,
        ), runtime_workers=2)
        _assert_fingerprint(a, b)
        np.testing.assert_array_equal(a.probe, b.probe)


class TestWarmStart:
    def test_initial_volume_bit_identical(self, tiny_dataset, tiny_lr):
        warm = GradientDecompositionReconstructor(
            n_ranks=4, iterations=1, lr=tiny_lr
        ).reconstruct(tiny_dataset).volume
        r_s = GradientDecompositionReconstructor(
            n_ranks=4, iterations=1, lr=tiny_lr, executor="serial"
        ).reconstruct(tiny_dataset, initial_volume=warm)
        r_p = GradientDecompositionReconstructor(
            n_ranks=4, iterations=1, lr=tiny_lr, executor="process"
        ).reconstruct(tiny_dataset, initial_volume=warm)
        _assert_fingerprint(r_s, r_p)


class TestHaloExchangeBaseline:
    def test_hve_bit_identical(self, tiny_dataset, tiny_lr):
        kwargs = dict(n_ranks=4, iterations=2, lr=tiny_lr)
        a = HaloExchangeReconstructor(
            executor="serial", **kwargs
        ).reconstruct(tiny_dataset)
        b = HaloExchangeReconstructor(
            executor="process", **kwargs
        ).reconstruct(tiny_dataset)
        _assert_fingerprint(a, b)


class TestSessionBehaviour:
    def test_observers_see_live_state(self, tiny_dataset, tiny_lr):
        """Observer events and snapshots work across the process
        boundary: volumes are read out of shared memory between steps."""
        events = []
        snapshots = []

        def observer(ev):
            events.append((ev.iteration, ev.cost, ev.messages))
            snapshots.append(ev.snapshot().volume.copy())

        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=tiny_lr, executor="process"
        ).reconstruct(tiny_dataset, observers=[observer])
        assert [e[0] for e in events] == [0, 1]
        assert [e[1] for e in events] == result.history
        assert events[-1][2] == result.messages
        np.testing.assert_array_equal(snapshots[-1], result.volume)

    def test_legacy_callback_rejected_on_process_executor(
        self, tiny_dataset, tiny_lr
    ):
        recon = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr, executor="process"
        )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="serial executor"):
                recon.reconstruct(
                    tiny_dataset, callback=lambda it, cost, eng: None
                )

    def test_worker_failure_surfaces_traceback(self, tiny_dataset):
        """A worker crash must raise in the parent with the worker's
        traceback, not hang."""
        from repro.runtime import ProcessExecutor
        from repro.runtime.executor import EnginePlan

        recon = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=0.1
        )
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        plan = EnginePlan(
            dataset=tiny_dataset, decomp=decomp, schedule=schedule,
            lr=0.1, dtype="complex64",
        )
        # Poison the plan so worker engine construction fails.
        plan.initial_volume = np.zeros((1, 2, 2), dtype=np.complex64)
        executor = ProcessExecutor(timeout=30.0)
        with pytest.raises(RuntimeError, match="initial volume shape"):
            executor.launch(plan)

    def test_closed_session_refuses_access(self, tiny_dataset, tiny_lr):
        from repro.runtime import ProcessExecutor
        from repro.runtime.executor import EnginePlan

        recon = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr
        )
        decomp = recon.decompose(tiny_dataset)
        plan = EnginePlan(
            dataset=tiny_dataset, decomp=decomp,
            schedule=recon.build_iteration_schedule(decomp), lr=tiny_lr,
        )
        session = ProcessExecutor(workers=1).launch(plan)
        session.step()
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.step()
        with pytest.raises(RuntimeError, match="closed"):
            session.volumes()
