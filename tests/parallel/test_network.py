"""Link and network cost model."""

import pytest

from repro.parallel.network import INFINIBAND, NVLINK, LinkSpec, NetworkModel
from repro.parallel.topology import ClusterTopology


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_costs_latency(self):
        link = LinkSpec(2e-6, 1e9)
        assert link.transfer_time(0) == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(-1e-6, 1e9)
        with pytest.raises(ValueError):
            LinkSpec(1e-6, 0.0)
        with pytest.raises(ValueError):
            LinkSpec(1e-6, 1e9).transfer_time(-1)

    def test_summit_line_rates(self):
        assert NVLINK.bandwidth_bytes_per_s == pytest.approx(50e9)
        assert INFINIBAND.bandwidth_bytes_per_s == pytest.approx(12.5e9)


class TestNetworkModel:
    @pytest.fixture()
    def net(self):
        return NetworkModel(ClusterTopology(12))

    def test_intra_node_uses_nvlink(self, net):
        assert net.link(0, 5) is net.intra_node

    def test_inter_node_uses_ib(self, net):
        assert net.link(0, 6) is net.inter_node

    def test_nvlink_faster_than_ib(self, net):
        nbytes = 1e8
        assert net.p2p_time(0, 1, nbytes) < net.p2p_time(0, 6, nbytes)

    def test_self_link_rejected(self, net):
        with pytest.raises(ValueError):
            net.link(3, 3)

    def test_allreduce_single_rank_free(self):
        net = NetworkModel(ClusterTopology(1))
        assert net.allreduce_time(1, 1e9) == 0.0

    def test_allreduce_grows_with_ranks(self, net):
        assert net.allreduce_time(12, 1e8) > net.allreduce_time(2, 1e8)

    def test_allreduce_ring_formula(self, net):
        p, nbytes = 12, 1.2e9
        expected = 2 * (p - 1) * net.inter_node.transfer_time(nbytes / p)
        assert net.allreduce_time(p, nbytes) == pytest.approx(expected)

    def test_allreduce_single_node_uses_nvlink(self):
        net = NetworkModel(ClusterTopology(6))
        expected = 2 * 5 * net.intra_node.transfer_time(6e8 / 6)
        assert net.allreduce_time(6, 6e8) == pytest.approx(expected)

    def test_allreduce_collective_override(self):
        slow = LinkSpec(5e-6, 1e9)
        net = NetworkModel(ClusterTopology(12), collective=slow)
        expected = 2 * 11 * slow.transfer_time(1.2e9 / 12)
        assert net.allreduce_time(12, 1.2e9) == pytest.approx(expected)

    def test_allreduce_validation(self, net):
        with pytest.raises(ValueError):
            net.allreduce_time(0, 1e6)
