"""VirtualComm — the mpi4py-shaped message layer."""

import numpy as np
import pytest

from repro.parallel.comm import CommError, VirtualComm


@pytest.fixture()
def comm():
    return VirtualComm(4)


class TestBasics:
    def test_size(self, comm):
        assert comm.Get_size() == 4
        assert comm.n_ranks == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualComm(0)


class TestPointToPoint:
    def test_send_recv_roundtrip(self, comm, rng):
        payload = rng.normal(size=(5, 5))
        comm.send(payload, src=0, dst=1, tag=7)
        received = comm.recv(dst=1, src=0, tag=7)
        np.testing.assert_array_equal(received, payload)

    def test_payload_snapshot_isolation(self, comm):
        """Mutating the source array after send must not leak."""
        payload = np.zeros(3)
        comm.send(payload, 0, 1)
        payload[:] = 99.0
        received = comm.recv(1, 0)
        np.testing.assert_array_equal(received, np.zeros(3))

    def test_fifo_order_per_edge(self, comm):
        comm.send(np.array([1]), 0, 1, tag=0)
        comm.send(np.array([2]), 0, 1, tag=0)
        assert comm.recv(1, 0, tag=0)[0] == 1
        assert comm.recv(1, 0, tag=0)[0] == 2

    def test_tags_are_independent_streams(self, comm):
        comm.send(np.array([1]), 0, 1, tag=5)
        comm.send(np.array([2]), 0, 1, tag=6)
        assert comm.recv(1, 0, tag=6)[0] == 2
        assert comm.recv(1, 0, tag=5)[0] == 1

    def test_unmatched_recv_raises(self, comm):
        with pytest.raises(CommError, match="no matching message"):
            comm.recv(1, 0, tag=3)

    def test_self_send_rejected(self, comm):
        with pytest.raises(CommError):
            comm.send(np.zeros(1), 2, 2)

    def test_rank_bounds(self, comm):
        with pytest.raises(CommError):
            comm.send(np.zeros(1), 0, 4)
        with pytest.raises(CommError):
            comm.send(np.zeros(1), -1, 1)


class TestNonBlocking:
    def test_isend_completes_immediately(self, comm):
        req = comm.isend(np.ones(2), 0, 1)
        ready, _ = req.test()
        assert ready
        assert req.wait() is None

    def test_irecv_wait_returns_payload(self, comm):
        comm.send(np.arange(3), 0, 2, tag=1)
        req = comm.irecv(dst=2, src=0, tag=1)
        np.testing.assert_array_equal(req.wait(), np.arange(3))

    def test_irecv_test_before_send(self, comm):
        req = comm.irecv(dst=2, src=0, tag=1)
        ready, _ = req.test()
        assert not ready
        comm.send(np.arange(3), 0, 2, tag=1)
        ready, _ = req.test()
        assert ready

    def test_double_wait_raises(self, comm):
        comm.send(np.ones(1), 0, 1)
        req = comm.irecv(1, 0)
        req.wait()
        with pytest.raises(CommError):
            req.wait()


class TestAccounting:
    def test_bytes_and_messages_counted(self, comm):
        payload = np.zeros(100, dtype=np.float64)
        comm.send(payload, 0, 1)
        comm.send(payload, 1, 2)
        assert comm.sent_messages == 2
        assert comm.sent_bytes == 2 * 800
        assert comm.per_rank_sent_bytes[0] == 800
        assert comm.per_rank_sent_bytes[1] == 800

    def test_pending_messages(self, comm):
        comm.send(np.zeros(1), 0, 1)
        assert comm.pending_messages() == 1
        comm.recv(1, 0)
        assert comm.pending_messages() == 0


class TestAllreduce:
    def test_sum_correct(self, comm, rng):
        contributions = [rng.normal(size=(3, 3)) for _ in range(4)]
        total = comm.allreduce_sum(contributions)
        np.testing.assert_allclose(total, np.sum(contributions, axis=0))

    def test_counts_contributions(self, comm):
        with pytest.raises(CommError):
            comm.allreduce_sum([np.zeros(2)] * 3)

    def test_shape_mismatch(self, comm):
        with pytest.raises(CommError):
            comm.allreduce_sum(
                [np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2)]
            )

    def test_traffic_accounted(self, comm):
        comm.allreduce_sum([np.zeros(100) for _ in range(4)])
        assert comm.allreduce_calls == 1
        assert comm.sent_bytes > 0
