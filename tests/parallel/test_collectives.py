"""Ring all-reduce over the p2p layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.collectives import ring_allreduce
from repro.parallel.comm import VirtualComm


class TestRingAllreduce:
    def test_matches_direct_sum(self, rng):
        p = 4
        comm = VirtualComm(p)
        buffers = [rng.normal(size=(3, 5)) for _ in range(p)]
        out = ring_allreduce(comm, buffers)
        expected = np.sum(buffers, axis=0)
        for result in out:
            np.testing.assert_allclose(result, expected, atol=1e-12)

    def test_inputs_not_mutated(self, rng):
        comm = VirtualComm(3)
        buffers = [rng.normal(size=7) for _ in range(3)]
        copies = [b.copy() for b in buffers]
        ring_allreduce(comm, buffers)
        for b, c in zip(buffers, copies):
            np.testing.assert_array_equal(b, c)

    def test_message_count_matches_ring_formula(self, rng):
        """2 phases x (P-1) steps x P ranks messages — the count the
        network model's all-reduce formula is built on."""
        p = 5
        comm = VirtualComm(p)
        ring_allreduce(comm, [rng.normal(size=10) for _ in range(p)])
        assert comm.sent_messages == 2 * (p - 1) * p
        assert comm.pending_messages() == 0

    def test_single_rank_copy(self, rng):
        comm = VirtualComm(1)
        buf = rng.normal(size=4)
        (out,) = ring_allreduce(comm, [buf])
        np.testing.assert_array_equal(out, buf)
        assert out is not buf

    def test_size_smaller_than_ranks(self, rng):
        """Degenerate chunking (empty chunks) still sums correctly."""
        p = 6
        comm = VirtualComm(p)
        buffers = [rng.normal(size=2) for _ in range(p)]
        out = ring_allreduce(comm, buffers)
        for result in out:
            np.testing.assert_allclose(result, np.sum(buffers, axis=0))

    def test_complex_dtype(self, rng):
        p = 3
        comm = VirtualComm(p)
        buffers = [
            rng.normal(size=(2, 4)) + 1j * rng.normal(size=(2, 4))
            for _ in range(p)
        ]
        out = ring_allreduce(comm, buffers)
        for result in out:
            np.testing.assert_allclose(result, np.sum(buffers, axis=0))

    def test_validation(self, rng):
        comm = VirtualComm(3)
        with pytest.raises(ValueError):
            ring_allreduce(comm, [np.zeros(3)] * 2)
        with pytest.raises(ValueError):
            ring_allreduce(comm, [np.zeros(3), np.zeros(4), np.zeros(3)])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 7), st.integers(1, 40), st.integers(0, 2**31 - 1))
    def test_property_any_size(self, p, n, seed):
        rng = np.random.default_rng(seed)
        comm = VirtualComm(p)
        buffers = [rng.normal(size=n) for _ in range(p)]
        out = ring_allreduce(comm, buffers)
        expected = np.sum(buffers, axis=0)
        for result in out:
            np.testing.assert_allclose(result, expected, atol=1e-10)
