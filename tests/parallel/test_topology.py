"""Cluster and mesh topology."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.topology import ClusterTopology, MeshLayout, choose_mesh


class TestClusterTopology:
    def test_summit_node_counts(self):
        """The paper's GPU counts map to its node counts (6 GPUs/node)."""
        for gpus, nodes in [(6, 1), (24, 4), (54, 9), (462, 77), (4158, 693)]:
            assert ClusterTopology(gpus).n_nodes == nodes

    def test_partial_node_rounds_up(self):
        assert ClusterTopology(7).n_nodes == 2

    def test_node_of(self):
        topo = ClusterTopology(12)
        assert topo.node_of(0) == 0
        assert topo.node_of(5) == 0
        assert topo.node_of(6) == 1

    def test_same_node(self):
        topo = ClusterTopology(12)
        assert topo.same_node(0, 5)
        assert not topo.same_node(5, 6)

    def test_ranks_on_node(self):
        topo = ClusterTopology(8)
        assert topo.ranks_on_node(0) == [0, 1, 2, 3, 4, 5]
        assert topo.ranks_on_node(1) == [6, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)
        with pytest.raises(ValueError):
            ClusterTopology(4).node_of(4)
        with pytest.raises(ValueError):
            ClusterTopology(4).ranks_on_node(3)


class TestChooseMesh:
    @pytest.mark.parametrize(
        "n,expected",
        [(6, (2, 3)), (54, (6, 9)), (462, (21, 22)), (4158, (63, 66))],
    )
    def test_paper_gpu_counts(self, n, expected):
        rows, cols = choose_mesh(n, aspect=1.0)
        assert {rows, cols} == set(expected)

    def test_square_count(self):
        assert choose_mesh(36, 1.0) == (6, 6)

    def test_prime_degrades_to_strip(self):
        rows, cols = choose_mesh(13, 1.0)
        assert rows * cols == 13
        assert 1 in (rows, cols)

    def test_aspect_steers_orientation(self):
        tall = choose_mesh(12, aspect=3.0)
        wide = choose_mesh(12, aspect=1.0 / 3.0)
        assert tall[0] >= tall[1]
        assert wide[0] <= wide[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_mesh(0)
        with pytest.raises(ValueError):
            choose_mesh(4, aspect=0.0)

    @given(st.integers(1, 500))
    def test_product_always_exact(self, n):
        rows, cols = choose_mesh(n, 1.0)
        assert rows * cols == n


class TestMeshLayout:
    def test_rank_coords_roundtrip(self):
        mesh = MeshLayout(3, 4)
        for rank in range(mesh.n_ranks):
            r, c = mesh.coords_of(rank)
            assert mesh.rank_of(r, c) == rank

    def test_row_major_order(self):
        mesh = MeshLayout(2, 3)
        assert mesh.rank_of(0, 2) == 2
        assert mesh.rank_of(1, 0) == 3

    def test_column_and_row_ranks(self):
        mesh = MeshLayout(3, 3)
        assert mesh.column_ranks(1) == [1, 4, 7]
        assert mesh.row_ranks(2) == [6, 7, 8]

    def test_neighbors8_center(self):
        mesh = MeshLayout(3, 3)
        assert sorted(mesh.neighbors8(4)) == [0, 1, 2, 3, 5, 6, 7, 8]

    def test_neighbors8_corner(self):
        mesh = MeshLayout(3, 3)
        assert sorted(mesh.neighbors8(0)) == [1, 3, 4]

    def test_neighbors8_edge(self):
        mesh = MeshLayout(3, 3)
        assert sorted(mesh.neighbors8(1)) == [0, 2, 3, 4, 5]

    def test_single_tile_mesh(self):
        mesh = MeshLayout(1, 1)
        assert mesh.neighbors8(0) == []
        assert mesh.column_ranks(0) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshLayout(0, 3)
        with pytest.raises(ValueError):
            MeshLayout(2, 2).rank_of(2, 0)
        with pytest.raises(ValueError):
            MeshLayout(2, 2).coords_of(4)
