"""Discrete-event timing interpreter."""

import pytest

from repro.parallel.event_sim import ASYNC_POST_SECONDS, EventSimulator
from repro.parallel.network import LinkSpec, NetworkModel
from repro.parallel.topology import ClusterTopology
from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    Schedule,
    VoxelPaste,
)
from repro.utils.geometry import Rect


class UnitCosts:
    """Trivial cost provider: 1s per probe, 1 byte/px, tiny pointwise."""

    def __init__(self, probe_s=1.0, bytes_per_px=1.0):
        self.probe_s = probe_s
        self.bytes_per_px = bytes_per_px

    def gradient_seconds(self, rank, n_probes):
        return self.probe_s * n_probes

    def exchange_bytes(self, region_area):
        return self.bytes_per_px * region_area

    def apply_seconds(self, region_area):
        return 0.0

    def update_seconds(self, rank):
        return 0.0

    def allreduce_bytes(self):
        return 1e6


def make_sim(n_ranks=2, latency=0.1, bw=100.0, costs=None):
    net = NetworkModel(
        ClusterTopology(n_ranks, gpus_per_node=max(n_ranks, 6)),
        intra_node=LinkSpec(latency, bw),
        inter_node=LinkSpec(latency, bw),
    )
    return EventSimulator(net, costs or UnitCosts())


class TestComputeOnly:
    def test_parallel_ranks_overlap(self):
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1)))
        sched.add(ComputeGradients(rank=1, probe_indices=(2, 3, 4)))
        report = make_sim().run(sched)
        assert report.makespan_s == pytest.approx(3.0)
        assert report.timelines[0].compute_s == pytest.approx(2.0)
        assert report.timelines[1].compute_s == pytest.approx(3.0)

    def test_sequential_same_rank(self):
        sched = Schedule(1)
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        sched.add(ComputeGradients(rank=0, probe_indices=(1,)))
        report = make_sim(1).run(sched)
        assert report.makespan_s == pytest.approx(2.0)


class TestExchange:
    def test_receiver_waits_for_slow_sender(self):
        """Rank 1 is idle; rank 0 computes 2s then sends — rank 1 waits on
        the sender (not the network)."""
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1)))
        region = Rect(0, 10, 0, 10)
        sched.add(BufferExchange(src=0, dst=1, region=region))
        report = make_sim(latency=0.0, bw=1e12).run(sched)
        assert report.timelines[1].wait_s == pytest.approx(
            2.0 + ASYNC_POST_SECONDS, abs=1e-4
        )

    def test_network_time_attributed_to_comm(self):
        """Both ranks ready: blocking time is pure network -> comm."""
        sched = Schedule(2)
        region = Rect(0, 10, 0, 10)  # 100 bytes at 1 B/px
        sched.add(BufferExchange(src=0, dst=1, region=region))
        report = make_sim(latency=0.5, bw=200.0).run(sched)
        expected_transfer = 0.5 + 100 / 200.0
        assert report.timelines[1].comm_s == pytest.approx(
            expected_transfer + ASYNC_POST_SECONDS, abs=1e-4
        )
        # The only waiting is on the sender's (tiny) post overhead.
        assert report.timelines[1].wait_s == pytest.approx(
            ASYNC_POST_SECONDS, abs=1e-9
        )

    def test_async_sender_not_blocked(self):
        """isend: the source only pays the posting overhead."""
        sched = Schedule(2)
        sched.add(BufferExchange(src=0, dst=1, region=Rect(0, 100, 0, 100)))
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        report = make_sim(latency=10.0, bw=1.0).run(sched)
        # Rank 0 finishes its compute right after the cheap post.
        assert report.timelines[0].clock_s == pytest.approx(
            1.0 + ASYNC_POST_SECONDS, abs=1e-4
        )

    def test_sync_paste_blocks_sender(self):
        """VoxelPaste: the source is blocked for the full transfer."""
        sched = Schedule(2)
        sched.add(VoxelPaste(src=0, dst=1, region=Rect(0, 10, 0, 10)))
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        report = make_sim(latency=0.5, bw=200.0).run(sched)
        assert report.timelines[0].clock_s == pytest.approx(
            (0.5 + 0.5) + 1.0
        )

    def test_chain_serializes(self):
        """A 3-rank forward chain costs ~2 sequential transfers."""
        sched = Schedule(3)
        region = Rect(0, 10, 0, 10)
        sched.add(BufferExchange(src=0, dst=1, region=region))
        sched.add(BufferExchange(src=1, dst=2, region=region))
        report = make_sim(3, latency=1.0, bw=1e12).run(sched)
        assert report.makespan_s == pytest.approx(2.0, abs=0.01)


class TestCollectives:
    def test_barrier_synchronizes(self):
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1, 2)))
        sched.add(Barrier(n_ranks=2))
        report = make_sim().run(sched)
        assert report.timelines[1].wait_s == pytest.approx(3.0, abs=0.01)

    def test_allreduce_charges_everyone(self):
        sched = Schedule(2)
        sched.add(AllReduceGradient(n_ranks=2))
        report = make_sim(latency=0.0, bw=1e6).run(sched)
        expected = 2 * 1 * (1e6 / 2 / 1e6)
        for line in report.timelines:
            assert line.comm_s == pytest.approx(expected)


class TestReport:
    def test_breakdown_keys(self):
        sched = Schedule(1)
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        report = make_sim(1).run(sched)
        assert set(report.breakdown()) == {"compute_s", "wait_s", "comm_s"}

    def test_run_iterations_scales(self):
        sched = Schedule(1)
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        sim = make_sim(1)
        one = sim.run(sched)
        ten = sim.run_iterations(sched, 10)
        assert ten.makespan_s == pytest.approx(10 * one.makespan_s)
        assert ten.messages == 10 * one.messages

    def test_run_iterations_validation(self):
        sched = Schedule(1)
        sim = make_sim(1)
        with pytest.raises(ValueError):
            sim.run_iterations(sched, 0)

    def test_clock_equals_components(self):
        """compute + wait + comm accounts for the full timeline."""
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1)))
        sched.add(BufferExchange(src=0, dst=1, region=Rect(0, 5, 0, 5)))
        sched.add(Barrier(n_ranks=2))
        report = make_sim(latency=0.1, bw=100.0).run(sched)
        for line in report.timelines:
            assert line.total_s == pytest.approx(line.clock_s, rel=1e-6)
