"""Per-rank memory tracking."""

import numpy as np
import pytest

from repro.parallel.memory import MemoryTracker


@pytest.fixture()
def tracker():
    return MemoryTracker(3)


class TestAllocation:
    def test_current_and_peak(self, tracker):
        tracker.allocate(0, "a", 100)
        tracker.allocate(0, "b", 50)
        assert tracker.current_bytes(0) == 150
        assert tracker.peak_bytes(0) == 150
        tracker.free(0, "a")
        assert tracker.current_bytes(0) == 50
        assert tracker.peak_bytes(0) == 150  # peak persists

    def test_reallocation_replaces(self, tracker):
        tracker.allocate(1, "buf", 100)
        tracker.allocate(1, "buf", 40)
        assert tracker.current_bytes(1) == 40
        assert tracker.peak_bytes(1) == 100

    def test_allocate_array(self, tracker):
        arr = np.zeros((10, 10), dtype=np.complex128)
        tracker.allocate_array(2, "vol", arr)
        assert tracker.current_bytes(2) == 1600

    def test_free_unknown_raises(self, tracker):
        with pytest.raises(KeyError):
            tracker.free(0, "ghost")

    def test_negative_allocation_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.allocate(0, "x", -5)

    def test_rank_bounds(self, tracker):
        with pytest.raises(ValueError):
            tracker.allocate(3, "x", 1)

    def test_breakdown(self, tracker):
        tracker.allocate(0, "a", 10)
        tracker.allocate(0, "b", 20)
        assert tracker.breakdown(0) == {"a": 10, "b": 20}


class TestAggregates:
    def test_peak_max_and_mean(self, tracker):
        tracker.allocate(0, "a", 100)
        tracker.allocate(1, "a", 300)
        tracker.allocate(2, "a", 200)
        assert tracker.peak_bytes_max() == 300
        assert tracker.peak_bytes_mean() == pytest.approx(200.0)
        assert tracker.per_rank_peaks() == [100, 300, 200]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MemoryTracker(0)
