"""Event-simulator trace recording."""

import pytest

from repro.parallel.event_sim import EventSimulator
from repro.parallel.network import LinkSpec, NetworkModel
from repro.parallel.topology import ClusterTopology
from repro.schedule.ops import (
    ApplyProbeUpdate,
    BufferExchange,
    ComputeGradients,
    ProbeSync,
    Schedule,
)
from repro.utils.geometry import Rect


class Unit:
    def gradient_seconds(self, rank, n):
        return float(n)

    def exchange_bytes(self, area):
        return float(area)

    def apply_seconds(self, area):
        return 0.1

    def update_seconds(self, rank):
        return 0.2

    def allreduce_bytes(self):
        return 100.0

    def probe_bytes(self):
        return 50.0

    def probe_update_seconds(self, rank):
        return 0.05


def make_sim(n=2):
    return EventSimulator(
        NetworkModel(
            ClusterTopology(n, gpus_per_node=6),
            intra_node=LinkSpec(0.01, 100.0),
            inter_node=LinkSpec(0.01, 100.0),
        ),
        Unit(),
    )


class TestTrace:
    def test_disabled_by_default(self):
        sched = Schedule(1)
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        assert make_sim(1).run(sched).trace is None

    def test_intervals_cover_timeline(self):
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1)))
        sched.add(BufferExchange(src=0, dst=1, region=Rect(0, 5, 0, 5)))
        report = make_sim().run(sched, record_trace=True)
        assert report.trace
        kinds = {e.kind for e in report.trace}
        assert kinds == {"compute", "send", "recv"}
        for e in report.trace:
            assert e.end_s >= e.start_s
            assert e.end_s <= report.makespan_s + 1e-9

    def test_rank_intervals_do_not_overlap(self):
        """A rank is one serial executor: its trace intervals are
        disjoint."""
        sched = Schedule(2)
        sched.add(ComputeGradients(rank=0, probe_indices=(0,)))
        sched.add(BufferExchange(src=0, dst=1, region=Rect(0, 3, 0, 3)))
        sched.add(ComputeGradients(rank=0, probe_indices=(1, 2)))
        report = make_sim().run(sched, record_trace=True)
        for rank in (0, 1):
            spans = sorted(
                (e.start_s, e.end_s)
                for e in report.trace
                if e.rank == rank
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-9

    def test_probe_ops_traced(self):
        sched = Schedule(2)
        sched.add(ProbeSync(n_ranks=2))
        sched.add(ApplyProbeUpdate(rank=0, lr=0.1))
        sched.add(ApplyProbeUpdate(rank=1, lr=0.1))
        report = make_sim().run(sched, record_trace=True)
        kinds = [e.kind for e in report.trace]
        assert kinds.count("probesync") == 2  # one interval per rank
        assert kinds.count("update") == 2

    def test_duration_property(self):
        sched = Schedule(1)
        sched.add(ComputeGradients(rank=0, probe_indices=(0, 1, 2)))
        report = make_sim(1).run(sched, record_trace=True)
        assert report.trace[0].duration_s == pytest.approx(3.0)
