"""Strong-scaling arithmetic."""

import pytest

from repro.metrics.scaling import (
    is_superlinear,
    speedups,
    strong_scaling_efficiency,
)


class TestSpeedups:
    def test_relative_to_first(self):
        assert speedups([100.0, 25.0, 10.0], [1, 4, 10]) == pytest.approx(
            [1.0, 4.0, 10.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            speedups([], [])
        with pytest.raises(ValueError):
            speedups([1.0, -1.0], [1, 2])
        with pytest.raises(ValueError):
            speedups([1.0], [1, 2])


class TestEfficiency:
    def test_linear_scaling_is_100(self):
        eff = strong_scaling_efficiency([100.0, 50.0, 25.0], [1, 2, 4])
        assert eff == pytest.approx([100.0, 100.0, 100.0])

    def test_paper_table3_values(self):
        """Recompute the paper's Table III(a) efficiency row from its
        runtime/GPU rows — validates our formula against theirs."""
        times = [5543.0, 183.0, 37.5, 14.2, 7.0, 2.2]
        gpus = [6, 54, 198, 462, 924, 4158]
        eff = strong_scaling_efficiency(times, gpus)
        paper = [100, 336, 448, 509, 518, 364]
        for ours, theirs in zip(eff, paper):
            assert ours == pytest.approx(theirs, rel=0.01)

    def test_superlinear_detection(self):
        times = [100.0, 20.0]  # 5x speedup on 4x units
        units = [1, 4]
        assert is_superlinear(times, units, 1)
        assert not is_superlinear([100.0, 30.0], units, 1)

    def test_superlinear_index_validation(self):
        with pytest.raises(ValueError):
            is_superlinear([1.0], [1], 3)
