"""Fourier ring correlation."""

import numpy as np
import pytest

from repro.metrics.frc import (
    FrcCurve,
    fourier_ring_correlation,
    resolution_cutoff,
)


@pytest.fixture()
def structured_image(rng):
    """A band-limited random image (smooth structure)."""
    from scipy.ndimage import gaussian_filter

    return gaussian_filter(rng.normal(size=(64, 64)), sigma=2.0)


class TestFrc:
    def test_identical_images_correlate_fully(self, structured_image):
        curve = fourier_ring_correlation(structured_image, structured_image)
        np.testing.assert_allclose(curve.correlation, 1.0, atol=1e-10)

    def test_independent_noise_decorrelates(self, rng):
        a = rng.normal(size=(64, 64))
        b = rng.normal(size=(64, 64))
        curve = fourier_ring_correlation(a, b)
        # High-frequency rings (many samples) are near zero.
        assert np.mean(curve.correlation[10:]) < 0.3

    def test_noise_lowers_high_frequencies_first(self, structured_image, rng):
        noisy = structured_image + 0.5 * rng.normal(size=(64, 64))
        curve = fourier_ring_correlation(structured_image, noisy)
        low = np.mean(curve.correlation[1:6])
        high = np.mean(curve.correlation[-6:])
        assert low > high

    def test_shape_validation(self, structured_image):
        with pytest.raises(ValueError):
            fourier_ring_correlation(structured_image, structured_image[:32])
        with pytest.raises(ValueError):
            fourier_ring_correlation(np.zeros((4, 4, 4)), np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            fourier_ring_correlation(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_frequencies_span_to_nyquist(self, structured_image):
        curve = fourier_ring_correlation(structured_image, structured_image)
        assert curve.frequency[0] < 0.05
        assert curve.frequency[-1] == pytest.approx(0.5, abs=0.02)


class TestCutoff:
    def test_perfect_match_cutoff_at_nyquist(self, structured_image):
        curve = fourier_ring_correlation(structured_image, structured_image)
        assert curve.cutoff() == 0.5
        assert curve.resolution_px() == pytest.approx(1.0)

    def test_cutoff_monotone_in_threshold(self):
        freq = np.linspace(0.01, 0.5, 20)
        corr = np.linspace(1.0, 0.0, 20)
        curve = FrcCurve(frequency=freq, correlation=corr)
        assert curve.cutoff(0.8) <= curve.cutoff(0.2)

    def test_resolution_physical_units(self, structured_image, rng):
        noisy = structured_image + 1.0 * rng.normal(size=(64, 64))
        res = resolution_cutoff(
            structured_image, noisy, pixel_size=10.0
        )  # pm
        assert res > 10.0  # worse than one pixel

    def test_reconstruction_resolution_improves_with_iterations(
        self, small_dataset, small_lr
    ):
        """FRC against ground truth tightens as the solver converges —
        an end-to-end use of the metric."""
        from repro.baseline.serial import SerialReconstructor

        short = SerialReconstructor(iterations=1, lr=small_lr).reconstruct(
            small_dataset
        )
        long = SerialReconstructor(iterations=8, lr=small_lr).reconstruct(
            small_dataset
        )
        gt = small_dataset.ground_truth[0]
        m = small_dataset.spec.detector_px // 2
        crop = (slice(m, -m), slice(m, -m))
        frc_short = fourier_ring_correlation(
            short.volume[0][crop], gt[crop]
        )
        frc_long = fourier_ring_correlation(long.volume[0][crop], gt[crop])
        assert np.mean(frc_long.correlation) > np.mean(frc_short.correlation)
