"""Image-quality metrics."""

import numpy as np
import pytest

from repro.metrics.image_quality import (
    align_phase,
    complex_correlation,
    phase_rmse,
    psnr,
    rmse,
)


@pytest.fixture()
def volume(rng):
    return rng.normal(size=(2, 8, 8)) + 1j * rng.normal(size=(2, 8, 8))


class TestAlignPhase:
    def test_identity_when_aligned(self, volume):
        np.testing.assert_allclose(align_phase(volume, volume), volume)

    def test_removes_global_phase(self, volume):
        rotated = volume * np.exp(1j * 0.7)
        aligned = align_phase(rotated, volume)
        np.testing.assert_allclose(aligned, volume, atol=1e-12)

    def test_zero_inner_product_passthrough(self):
        a = np.array([[1.0 + 0j]])
        b = np.array([[0.0 + 0j]])
        np.testing.assert_array_equal(align_phase(a, b), a)


class TestRmse:
    def test_zero_for_identical(self, volume):
        assert rmse(volume, volume) == pytest.approx(0.0, abs=1e-12)

    def test_phase_invariant_when_aligned(self, volume):
        assert rmse(volume * np.exp(1j * 1.3), volume) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_phase_sensitive_when_not_aligned(self, volume):
        assert rmse(volume * np.exp(1j * 1.3), volume, align=False) > 0.1

    def test_shape_mismatch(self, volume):
        with pytest.raises(ValueError):
            rmse(volume, volume[:1])


class TestPsnr:
    def test_infinite_for_identical(self, volume):
        assert psnr(volume, volume) == float("inf")

    def test_decreases_with_noise(self, volume, rng):
        low = volume + 0.01 * rng.normal(size=volume.shape)
        high = volume + 0.3 * rng.normal(size=volume.shape)
        assert psnr(low, volume) > psnr(high, volume)

    def test_peak_validation(self, volume):
        noisy = volume + 0.1
        with pytest.raises(ValueError):
            psnr(noisy, volume, peak=0.0)


class TestComplexCorrelation:
    def test_one_for_scaled_rotated(self, volume):
        assert complex_correlation(
            3.0 * volume * np.exp(1j * 0.5), volume
        ) == pytest.approx(1.0)

    def test_zero_for_zero(self, volume):
        assert complex_correlation(np.zeros_like(volume), volume) == 0.0

    def test_bounded(self, volume, rng):
        other = rng.normal(size=volume.shape) + 1j * rng.normal(
            size=volume.shape
        )
        c = complex_correlation(other, volume)
        assert 0.0 <= c <= 1.0


class TestPhaseRmse:
    def test_zero_for_identical(self, volume):
        assert phase_rmse(volume, volume) == pytest.approx(0.0, abs=1e-12)

    def test_detects_phase_noise(self, volume, rng):
        noisy = volume * np.exp(1j * 0.2 * rng.normal(size=volume.shape))
        assert phase_rmse(noisy, volume) > 0.05

    def test_mask_restricts(self, volume, rng):
        noisy = volume.copy()
        noisy[0] *= np.exp(1j * 0.5)  # perturb slice 0 only
        mask = np.zeros(volume.shape, dtype=bool)
        mask[1] = True  # compare only slice 1
        masked = phase_rmse(noisy, volume, mask=mask)
        # The only error left on the unperturbed slice is the global-phase
        # alignment compromise (~half the 0.5 rad perturbation).
        assert masked < 0.3
        # A mask selecting everything reproduces the unmasked metric.
        assert phase_rmse(
            noisy, volume, mask=np.ones(volume.shape, dtype=bool)
        ) == pytest.approx(phase_rmse(noisy, volume))

    def test_mask_shape_validation(self, volume):
        with pytest.raises(ValueError):
            phase_rmse(volume, volume, mask=np.ones((2, 2), dtype=bool))
