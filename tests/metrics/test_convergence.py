"""Convergence summaries."""

import pytest

from repro.metrics.convergence import (
    auc_cost,
    iterations_to_fraction,
    relative_decrease,
)


class TestRelativeDecrease:
    def test_halving(self):
        assert relative_decrease([4.0, 3.0, 2.0]) == pytest.approx(0.5)

    def test_flat(self):
        assert relative_decrease([2.0, 2.0]) == pytest.approx(1.0)

    def test_zero_start(self):
        assert relative_decrease([0.0, 0.0]) == 0.0
        assert relative_decrease([0.0, 1.0]) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_decrease([])


class TestIterationsToFraction:
    def test_first_hit(self):
        history = [10.0, 6.0, 4.0, 1.0]
        assert iterations_to_fraction(history, 0.5) == 2

    def test_never_reached(self):
        assert iterations_to_fraction([10.0, 9.0], 0.1) == 2

    def test_immediately_satisfied(self):
        assert iterations_to_fraction([5.0, 1.0], 1.0) == 0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            iterations_to_fraction([1.0], 0.0)
        with pytest.raises(ValueError):
            iterations_to_fraction([1.0], 1.5)


class TestAuc:
    def test_faster_decay_smaller_auc(self):
        fast = [1.0, 0.1, 0.01, 0.001]
        slow = [1.0, 0.8, 0.6, 0.5]
        assert auc_cost(fast) < auc_cost(slow)

    def test_normalized_by_initial(self):
        assert auc_cost([2.0, 2.0, 2.0]) == pytest.approx(
            auc_cost([7.0, 7.0, 7.0])
        )

    def test_zero_start(self):
        assert auc_cost([0.0, 0.0]) == 0.0
