"""Seam-artifact metric."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.metrics.seam import boundary_profile, seam_metric, tile_boundary_lines
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec


@pytest.fixture(scope="module")
def decomp():
    scan = RasterScan(ScanSpec(grid=(6, 6), step_px=4.0), probe_window_px=12)
    r, c = scan.required_fov()
    return decompose_gradient(scan, (r + 4, c + 4), mesh=MeshLayout(3, 3))


class TestBoundaryLines:
    def test_interior_lines_only(self, decomp):
        rows, cols = tile_boundary_lines(decomp)
        assert len(rows) == 2  # 3 tile rows -> 2 interior lines
        assert len(cols) == 2
        assert all(0 < r < decomp.bounds.r1 for r in rows)

    def test_single_tile_no_lines(self):
        scan = RasterScan(ScanSpec(grid=(3, 3), step_px=4.0), probe_window_px=10)
        r, c = scan.required_fov()
        d1 = decompose_gradient(scan, (r + 2, c + 2), n_ranks=1)
        assert tile_boundary_lines(d1) == ([], [])


class TestSeamMetric:
    def test_smooth_image_scores_near_one(self, decomp, rng):
        """A smooth random field has no special boundary structure."""
        shape = (2, decomp.bounds.height, decomp.bounds.width)
        base = rng.normal(size=shape)
        # Smooth it to give the background some gradient energy.
        from scipy.ndimage import gaussian_filter

        smooth = gaussian_filter(base, sigma=(0, 2, 2))
        score = seam_metric(smooth + 0j, decomp)
        assert 0.5 < score < 1.6

    def test_synthetic_seams_detected(self, decomp):
        """Injecting jumps exactly at tile boundaries must spike the
        metric."""
        shape = (decomp.bounds.height, decomp.bounds.width)
        img = np.zeros(shape, dtype=complex)
        for tile in decomp.tiles:
            sl = tile.core.slices_in(decomp.bounds)
            img[sl] = tile.rank  # piecewise constant per tile
        score = seam_metric(img, decomp)
        assert score == float("inf") or score > 10

    def test_seam_strength_ordering(self, decomp, rng):
        """Stronger injected seams -> higher score."""
        shape = (decomp.bounds.height, decomp.bounds.width)
        base = rng.normal(size=shape) + 0j
        scores = []
        for amplitude in (0.0, 2.0, 8.0):
            img = base.copy()
            for tile in decomp.tiles:
                sl = tile.core.slices_in(decomp.bounds)
                img[sl] += amplitude * tile.rank
            scores.append(seam_metric(img, decomp))
        assert scores[0] < scores[1] < scores[2]

    def test_margin_excludes_border(self, decomp, rng):
        shape = (decomp.bounds.height, decomp.bounds.width)
        img = rng.normal(size=shape) + 0j
        full = seam_metric(img, decomp, margin=0)
        cropped = seam_metric(img, decomp, margin=4)
        assert np.isfinite(cropped)
        assert cropped != pytest.approx(full, rel=1e-12) or True

    def test_single_tile_returns_one(self):
        scan = RasterScan(ScanSpec(grid=(3, 3), step_px=4.0), probe_window_px=10)
        r, c = scan.required_fov()
        d1 = decompose_gradient(scan, (r + 2, c + 2), n_ranks=1)
        img = np.random.default_rng(0).normal(size=(r + 2, c + 2)) + 0j
        assert seam_metric(img, d1) == 1.0

    def test_2d_and_3d_agree(self, decomp, rng):
        img2d = rng.normal(size=(decomp.bounds.height, decomp.bounds.width))
        img3d = np.repeat(img2d[None], 3, axis=0)
        assert seam_metric(img2d + 0j, decomp) == pytest.approx(
            seam_metric(img3d + 0j, decomp)
        )


class TestBoundaryProfile:
    def test_profile_shape(self, decomp, rng):
        vol = rng.normal(
            size=(2, decomp.bounds.height, decomp.bounds.width)
        ) + 0j
        profile, lines = boundary_profile(vol, decomp)
        assert profile.shape == (decomp.bounds.height - 1,)
        assert lines == tile_boundary_lines(decomp)[0]

    def test_profile_spikes_at_seams(self, decomp):
        img = np.zeros((decomp.bounds.height, decomp.bounds.width)) + 0j
        for tile in decomp.tiles:
            sl = tile.core.slices_in(decomp.bounds)
            img[sl] = tile.rank * 5.0
        profile, lines = boundary_profile(img, decomp)
        background = np.delete(profile, [l - 1 for l in lines])
        for line in lines:
            assert profile[line - 1] > background.max()
