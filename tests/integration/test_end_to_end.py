"""End-to-end integration: simulate -> reconstruct -> evaluate, across
algorithms, with quality gates against ground truth."""

import numpy as np
import pytest

from repro import (
    GradientDecompositionReconstructor,
    HaloExchangeReconstructor,
    SerialReconstructor,
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)
from repro.baseline.serial import SerialReconstructor as _Serial
from repro.metrics.image_quality import complex_correlation
from repro.parallel.topology import MeshLayout


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(8, 8), detector_px=24, n_slices=2, overlap_ratio=0.72
    )
    dataset = simulate_dataset(spec, seed=77)
    lr = suggest_lr(dataset, alpha=0.4)
    return dataset, lr


class TestQualityGates:
    def test_gd_recovers_structure(self, workload):
        """The distributed reconstruction correlates with ground truth far
        better than the vacuum initialization does."""
        dataset, lr = workload
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=10, lr=lr, mode="alg1",
            compensate_local=True,
        ).reconstruct(dataset)

        # Compare within the well-scanned interior.
        m = dataset.spec.detector_px // 2
        gt = dataset.ground_truth[:, m:-m, m:-m]
        rec = result.volume[:, m:-m, m:-m]
        init = dataset.initial_object()[:, m:-m, m:-m]
        # Correlate the *structure* (deviation from vacuum), which is the
        # part the reconstruction has to earn.
        corr_rec = complex_correlation(rec - 1.0, gt - 1.0)
        corr_init = complex_correlation(init - 1.0, gt - 1.0)
        assert corr_rec > 0.5
        assert corr_rec > corr_init + 0.4

    def test_data_fit_improves_10x(self, workload):
        dataset, lr = workload
        result = GradientDecompositionReconstructor(
            n_ranks=9, iterations=12, lr=lr, mode="alg1",
            compensate_local=True,
        ).reconstruct(dataset)
        serial = _Serial(iterations=1, lr=lr)
        final = serial.evaluate_cost(dataset, result.volume)
        initial = serial.evaluate_cost(dataset, dataset.initial_object())
        assert final < 0.1 * initial


class TestCrossAlgorithm:
    def test_all_three_converge_on_same_data(self, workload):
        dataset, lr = workload
        histories = {}
        histories["serial"] = SerialReconstructor(
            iterations=4, lr=lr * 0.5, scheme="sgd"
        ).reconstruct(dataset).history
        histories["gd"] = GradientDecompositionReconstructor(
            n_ranks=4, iterations=4, lr=lr * 0.5
        ).reconstruct(dataset).history
        histories["hve"] = HaloExchangeReconstructor(
            n_ranks=4, iterations=4, lr=lr * 0.5, extra_rows=1
        ).reconstruct(dataset).history
        for name, h in histories.items():
            assert h[-1] < h[0], f"{name} did not converge"

    def test_gd_uses_less_traffic_than_hve_per_iteration(self, workload):
        """GD moves gradient overlaps; HVE pastes whole halo regions plus
        carries redundant probes."""
        dataset, lr = workload
        gd = GradientDecompositionReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=lr
        ).reconstruct(dataset)
        hve = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=lr, extra_rows=2
        ).reconstruct(dataset)
        # Not a strict inequality in all geometries; compare compute
        # redundancy, the paper's primary argument.
        gd_probes = sum(
            len(t.all_probes) for t in gd.decomposition.tiles
        )
        hve_probes = sum(
            len(t.all_probes) for t in hve.decomposition.tiles
        )
        assert gd_probes < hve_probes

    def test_memory_ordering(self, workload):
        dataset, lr = workload
        gd = GradientDecompositionReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=lr, halo=8
        ).reconstruct(dataset)
        hve = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=lr, extra_rows=2,
            halo=12, enforce_tile_constraint=False,
        ).reconstruct(dataset)
        # Per-rank measurements dominate; HVE duplicates them.
        assert hve.peak_memory_mean > gd.peak_memory_mean


class TestDeterminism:
    def test_full_pipeline_deterministic(self, workload):
        dataset, lr = workload
        a = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=lr
        ).reconstruct(dataset)
        b = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=lr
        ).reconstruct(dataset)
        np.testing.assert_array_equal(a.volume, b.volume)
        assert a.history == b.history
        assert a.messages == b.messages


class TestNoisyData:
    def test_reconstruction_robust_to_shot_noise(self):
        """The ML formulation's dose robustness (paper Sec. II-B): the
        solver still converges on Poisson-noisy data."""
        spec = scaled_pbtio3_spec(
            scan_grid=(5, 5), detector_px=20, n_slices=2
        )
        noisy = simulate_dataset(spec, seed=5, poisson_dose=5e4)
        lr = suggest_lr(noisy, alpha=0.3)
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=6, lr=lr
        ).reconstruct(noisy)
        assert result.history[-1] < 0.7 * result.history[0]
        assert np.isfinite(result.volume).all()
