"""Mixed-state reconstruction end to end.

The acceptance gates of the multi-mode refactor:

* ``probe_modes=1`` (or ``None``) is **bit-identical** to the scalar
  path at every layer — solver results, fingerprints, schedules.
* A pinned M=2 reconstruction is deterministic, and on a synthetic
  partially-coherent dataset (simulated with an incoherent 2-mode
  illumination) it reaches lower cost than the single-mode model.
* Parity survives the mode axis: batched vs per-position and serial vs
  process executor stay fingerprint-identical at M=2 (cross-product in
  the slow tier).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.physics.dataset import scaled_pbtio3_spec, simulate_dataset
from repro.schedule.ops import OrthogonalizeProbe
from tests.helpers import assert_results_identical, result_fingerprint

LR = 0.02
ITERS = 3


@pytest.fixture(scope="module")
def coherent_dataset():
    spec = scaled_pbtio3_spec(
        scan_grid=(4, 4), detector_px=16, n_slices=2, overlap_ratio=0.7
    )
    return simulate_dataset(spec, seed=17)


@pytest.fixture(scope="module")
def partially_coherent_dataset():
    """Same acquisition, illuminated by the deterministic 2-mode stack:
    recorded intensity is the incoherent sum over modes."""
    spec = scaled_pbtio3_spec(
        scan_grid=(4, 4), detector_px=16, n_slices=2, overlap_ratio=0.7
    )
    return simulate_dataset(spec, seed=17, probe_modes=2)


def gd(**kw):
    kw.setdefault("n_ranks", 4)
    kw.setdefault("iterations", ITERS)
    kw.setdefault("lr", LR)
    kw.setdefault("mode", "synchronous")
    return GradientDecompositionReconstructor(**kw)


class TestSingleModeIsScalar:
    def test_gd_probe_modes_one_bit_identical(self, coherent_dataset):
        reference = gd(refine_probe=True).reconstruct(coherent_dataset)
        single = gd(refine_probe=True, probe_modes=1).reconstruct(
            coherent_dataset
        )
        assert_results_identical(reference, single)
        # The probe stays scalar — no (1, w, w) representation leaks out.
        assert single.probe.ndim == 2

    def test_serial_probe_modes_one_bit_identical(self, coherent_dataset):
        kw = dict(iterations=ITERS, lr=LR, refine_probe=True)
        reference = SerialReconstructor(**kw).reconstruct(coherent_dataset)
        single = SerialReconstructor(
            probe_modes=1, **kw
        ).reconstruct(coherent_dataset)
        assert_results_identical(reference, single)

    def test_hve_probe_modes_one_bit_identical(self, coherent_dataset):
        kw = dict(n_ranks=4, iterations=ITERS, lr=LR)
        reference = HaloExchangeReconstructor(**kw).reconstruct(
            coherent_dataset
        )
        single = HaloExchangeReconstructor(
            probe_modes=1, **kw
        ).reconstruct(coherent_dataset)
        assert_results_identical(reference, single)

    def test_no_orthogonalize_op_scheduled_at_single_mode(
        self, coherent_dataset
    ):
        for recon in (
            gd(refine_probe=True),
            gd(refine_probe=True, probe_modes=1),
        ):
            schedule = recon.build_iteration_schedule(
                recon.decompose(coherent_dataset)
            )
            assert "OrthogonalizeProbe" not in schedule.counts()

    def test_orthogonalize_scheduled_per_rank_at_multi_mode(
        self, coherent_dataset
    ):
        recon = gd(refine_probe=True, probe_modes=2)
        schedule = recon.build_iteration_schedule(
            recon.decompose(coherent_dataset)
        )
        ortho = [
            op for op in schedule if isinstance(op, OrthogonalizeProbe)
        ]
        assert len(ortho) == 4  # one per rank, after the probe update
        assert sorted(op.rank for op in ortho) == [0, 1, 2, 3]


class TestMixedStateReconstruction:
    def test_deterministic(self, partially_coherent_dataset):
        kw = dict(refine_probe=True, probe_modes=2)
        a = gd(**kw).reconstruct(partially_coherent_dataset)
        b = gd(**kw).reconstruct(partially_coherent_dataset)
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_two_modes_beat_one_on_partially_coherent_data(
        self, partially_coherent_dataset
    ):
        single = gd(refine_probe=True).reconstruct(
            partially_coherent_dataset
        )
        mixed = gd(refine_probe=True, probe_modes=2).reconstruct(
            partially_coherent_dataset
        )
        assert mixed.history[-1] < single.history[-1]

    def test_probe_stack_shape_and_energy_order(
        self, partially_coherent_dataset
    ):
        result = gd(refine_probe=True, probe_modes=2).reconstruct(
            partially_coherent_dataset
        )
        w = partially_coherent_dataset.probe.window
        assert result.probe.shape == (2, w, w)
        powers = np.sum(np.abs(result.probe) ** 2, axis=(-2, -1))
        assert powers[0] >= powers[1]

    def test_serial_mixed_state_descends(self, partially_coherent_dataset):
        result = SerialReconstructor(
            iterations=ITERS, lr=LR, refine_probe=True, probe_modes=2
        ).reconstruct(partially_coherent_dataset)
        assert result.history[-1] < result.history[0]
        w = partially_coherent_dataset.probe.window
        assert result.probe.shape == (2, w, w)

    def test_hve_mixed_state_descends(self, partially_coherent_dataset):
        result = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR, probe_modes=2
        ).reconstruct(partially_coherent_dataset)
        assert result.history[-1] < result.history[0]

    def test_gd_matches_serial_exactly(self, partially_coherent_dataset):
        # One rank, synchronous: the distributed path must equal the
        # serial reference bit for bit — mode axis included.
        kw = dict(refine_probe=True, probe_modes=2)
        distributed = gd(n_ranks=1, **kw).reconstruct(
            partially_coherent_dataset
        )
        serial = SerialReconstructor(
            iterations=ITERS, lr=LR, scheme="batch", **kw
        ).reconstruct(partially_coherent_dataset)
        np.testing.assert_array_equal(
            distributed.volume, serial.volume
        )
        np.testing.assert_array_equal(distributed.probe, serial.probe)

    def test_validation(self):
        with pytest.raises(ValueError, match="probe_modes"):
            gd(probe_modes=0)
        with pytest.raises(ValueError, match="probe_modes"):
            SerialReconstructor(probe_modes=-1)
        with pytest.raises(ValueError, match="probe_modes"):
            HaloExchangeReconstructor(probe_modes=0)


class TestMixedStateParity:
    def test_batched_matches_per_position(
        self, partially_coherent_dataset
    ):
        kw = dict(refine_probe=True, probe_modes=2)
        reference = gd(**kw).reconstruct(partially_coherent_dataset)
        batched = gd(batch_size=3, **kw).reconstruct(
            partially_coherent_dataset
        )
        assert_results_identical(reference, batched)

    def test_process_executor_matches_serial(
        self, partially_coherent_dataset
    ):
        kw = dict(refine_probe=True, probe_modes=2)
        reference = gd(**kw).reconstruct(partially_coherent_dataset)
        processed = gd(
            executor="process", runtime_workers=2, **kw
        ).reconstruct(partially_coherent_dataset)
        assert_results_identical(reference, processed)

    @pytest.mark.slow
    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize("solver", ["gd", "hve", "serial"])
    def test_solver_executor_cross_product(
        self, partially_coherent_dataset, solver, executor
    ):
        def run(executor_name):
            if solver == "gd":
                return gd(
                    refine_probe=True,
                    probe_modes=2,
                    executor=executor_name,
                    runtime_workers=2 if executor_name == "process" else None,
                ).reconstruct(partially_coherent_dataset)
            if solver == "hve":
                return HaloExchangeReconstructor(
                    n_ranks=4,
                    iterations=ITERS,
                    lr=LR,
                    probe_modes=2,
                    executor=executor_name,
                    runtime_workers=2 if executor_name == "process" else None,
                ).reconstruct(partially_coherent_dataset)
            if executor_name == "process":
                pytest.skip("serial solver has no executor axis")
            return SerialReconstructor(
                iterations=ITERS,
                lr=LR,
                refine_probe=True,
                probe_modes=2,
            ).reconstruct(partially_coherent_dataset)

        reference = run("serial")
        candidate = run(executor)
        assert_results_identical(reference, candidate)


class TestWarmStart:
    def test_scalar_probe_expands_deterministically(
        self, partially_coherent_dataset
    ):
        # Warm-starting an M=2 run from a scalar probe must equal the
        # cold start (which expands the dataset probe the same way).
        kw = dict(refine_probe=True, probe_modes=2)
        cold = gd(**kw).reconstruct(partially_coherent_dataset)
        warm = gd(**kw).reconstruct(
            partially_coherent_dataset,
            initial_probe=partially_coherent_dataset.probe.array,
        )
        assert_results_identical(cold, warm)

    def test_stack_round_trips_through_resume_seed(
        self, partially_coherent_dataset
    ):
        # Feeding a run's final (M, w, w) stack back as initial_probe
        # continues from it exactly: iterations compose.
        kw = dict(refine_probe=True, probe_modes=2)
        full = gd(iterations=4, **kw).reconstruct(
            partially_coherent_dataset
        )
        first = gd(iterations=2, **kw).reconstruct(
            partially_coherent_dataset
        )
        second = gd(iterations=2, **kw).reconstruct(
            partially_coherent_dataset,
            initial_probe=first.probe,
            initial_volume=first.volume,
        )
        np.testing.assert_array_equal(second.volume, full.volume)
        np.testing.assert_array_equal(second.probe, full.probe)
