"""Golden-case definitions shared by the regression test and the
regeneration script.

Each case is a fully pinned :class:`~repro.api.ReconstructionConfig` —
backend, precision, executor and batch size are spelled out explicitly
so ambient environment knobs (``REPRO_BACKEND=threaded`` CI runs,
``REPRO_DTYPE``, ``REPRO_EXECUTOR``, ``REPRO_BATCH_SIZE``) can never
redefine what a golden means — including *which engine path* (batched
vs per-position) a golden exercises.  The
fingerprints are SHA-256 digests of the exact result bytes on the
``numpy``/``complex128`` reference stack, whose FFTs are bit-stable:
any change to a committed digest is a *numerics change* and must be a
deliberate, regenerated, explained-in-the-PR event — never a silent
side effect of a refactor.

Regenerate with::

    PYTHONPATH=src python tests/golden/regen.py
"""

from __future__ import annotations

import os
from typing import Dict

from repro.api import ReconstructionConfig
from repro.backend import use_backend
from repro.backend.base import ENV_DTYPE
from repro.physics.dataset import scaled_pbtio3_spec, simulate_dataset

#: Acquisition every golden reconstructs (simulated fresh each run —
#: the dataset itself is seeded, so only code changes can move it).
DATASET_SEED = 17
LR = 0.02
ITERATIONS = 3

_PINNED = {"backend": "numpy", "dtype": "complex128"}


def golden_dataset():
    """The seeded 4x4-probe acquisition all goldens share.

    The *simulation* must be pinned to the reference stack too —
    ambient ``REPRO_BACKEND``/``REPRO_DTYPE`` would otherwise move the
    measured amplitudes (threaded pocketfft differs from ``np.fft`` at
    machine eps, which float16 rounding can surface) and every golden
    with them.
    """
    spec = scaled_pbtio3_spec(
        scan_grid=(4, 4), detector_px=16, n_slices=2, overlap_ratio=0.7
    )
    ambient_dtype = os.environ.pop(ENV_DTYPE, None)
    try:
        with use_backend("numpy"):
            return simulate_dataset(spec, seed=DATASET_SEED)
    finally:
        if ambient_dtype is not None:
            os.environ[ENV_DTYPE] = ambient_dtype


def golden_configs() -> Dict[str, ReconstructionConfig]:
    """Case name → pinned config, one per solver family plus the
    batched/streamed variants whose drift the parity suite alone would
    miss (it only compares them against the *current* reference)."""
    return {
        "gd_alg1": ReconstructionConfig(
            "gd",
            {"n_ranks": 4, "iterations": ITERATIONS, "lr": LR,
             "mode": "alg1"},
            executor="serial",
            batch_size=1,
            **_PINNED,
        ),
        "gd_synchronous_batched": ReconstructionConfig(
            "gd",
            {"n_ranks": 4, "iterations": ITERATIONS, "lr": LR,
             "mode": "synchronous"},
            executor="serial",
            batch_size=3,
            **_PINNED,
        ),
        "gd_probe_refine": ReconstructionConfig(
            "gd",
            {"n_ranks": 4, "iterations": ITERATIONS, "lr": LR,
             "mode": "synchronous", "refine_probe": True},
            executor="serial",
            batch_size=1,
            **_PINNED,
        ),
        "hve": ReconstructionConfig(
            "hve",
            {"n_ranks": 4, "iterations": ITERATIONS, "lr": LR},
            executor="serial",
            batch_size=1,
            **_PINNED,
        ),
        "serial_batch": ReconstructionConfig(
            "serial",
            {"iterations": ITERATIONS, "lr": LR, "scheme": "batch"},
            batch_size=1,
            **_PINNED,
        ),
        "serial_sgd": ReconstructionConfig(
            "serial",
            {"iterations": ITERATIONS, "lr": LR, "scheme": "sgd"},
            batch_size=1,
            **_PINNED,
        ),
        "gd_mixed_state": ReconstructionConfig(
            "gd",
            {"n_ranks": 4, "iterations": ITERATIONS, "lr": LR,
             "mode": "synchronous", "refine_probe": True},
            executor="serial",
            batch_size=1,
            probe_modes=2,
            **_PINNED,
        ),
    }


def compute_fingerprints() -> Dict[str, Dict[str, object]]:
    """Run every golden case and fingerprint the results."""
    import repro
    from tests.helpers import result_fingerprint

    dataset = golden_dataset()
    return {
        name: result_fingerprint(repro.reconstruct(dataset, config))
        for name, config in sorted(golden_configs().items())
    }
