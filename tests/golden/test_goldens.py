"""Golden-fingerprint regression tests.

Each seeded reference reconstruction must reproduce its committed
SHA-256 fingerprint exactly — the tripwire that turns silent numerical
drift from future refactors into a loud, attributable failure.  See
``cases.py`` for what is pinned and ``regen.py`` for the (deliberate)
regeneration workflow.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from tests.golden import cases
from tests.helpers import result_fingerprint

GOLDEN_PATH = Path(__file__).resolve().parent / "goldens.json"


@pytest.fixture(scope="module")
def goldens():
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["schema"] == "repro-goldens/1"
    return payload


@pytest.fixture(scope="module")
def golden_dataset():
    return cases.golden_dataset()


def test_every_config_has_a_committed_golden(goldens):
    assert sorted(goldens["cases"]) == sorted(cases.golden_configs())


@pytest.mark.parametrize("name", sorted(cases.golden_configs()))
def test_reconstruction_matches_golden(goldens, golden_dataset, name):
    config = cases.golden_configs()[name]
    fingerprint = result_fingerprint(
        repro.reconstruct(golden_dataset, config)
    )
    expected = goldens["cases"][name]
    assert fingerprint == expected, (
        f"golden {name!r} drifted.  If this numerics change is "
        f"intended, regenerate with "
        f"`PYTHONPATH=src python tests/golden/regen.py` and explain "
        f"the drift in the PR; if not, you just caught a regression."
    )
