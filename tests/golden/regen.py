#!/usr/bin/env python
"""Regenerate the committed golden fingerprints.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/regen.py

Rewrites ``tests/golden/goldens.json`` from the current code.  Do this
only when a numerics change is *intended*; commit the new file together
with the change and say why in the PR — the whole point of the goldens
is that silent drift fails loudly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parents[1]
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from tests.golden import cases  # noqa: E402

GOLDEN_PATH = _HERE / "goldens.json"


def main() -> int:
    fingerprints = cases.compute_fingerprints()
    payload = {
        "schema": "repro-goldens/1",
        "dataset_seed": cases.DATASET_SEED,
        "note": (
            "SHA-256 fingerprints of seeded reference reconstructions "
            "on the numpy/complex128 stack; regenerate only for "
            "deliberate numerics changes (see module docstring)."
        ),
        "cases": fingerprints,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(fingerprints)} cases)")
    for name, fp in fingerprints.items():
        print(f"  {name}: volume {fp['volume_sha256'][:16]}…")
    return 0


if __name__ == "__main__":
    sys.exit(main())
