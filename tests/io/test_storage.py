"""Dataset/result persistence."""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.io import load_dataset, load_result, save_dataset, save_result
from repro.physics.dataset import suggest_lr


class TestDatasetRoundtrip:
    def test_amplitudes_and_spec_survive(self, tiny_dataset, tmp_path):
        path = save_dataset(tmp_path / "ds.npz", tiny_dataset)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(
            loaded.amplitudes, tiny_dataset.amplitudes
        )
        assert loaded.spec == tiny_dataset.spec
        np.testing.assert_array_equal(
            loaded.probe.array, tiny_dataset.probe.array
        )

    def test_scan_geometry_rebuilt(self, tiny_dataset, tmp_path):
        path = save_dataset(tmp_path / "ds.npz", tiny_dataset)
        loaded = load_dataset(path)
        assert loaded.scan.n_positions == tiny_dataset.scan.n_positions
        for a, b in zip(loaded.scan.windows, tiny_dataset.scan.windows):
            assert a == b

    def test_ground_truth_optional(self, tiny_dataset, tmp_path):
        path = save_dataset(
            tmp_path / "nogt.npz", tiny_dataset, include_ground_truth=False
        )
        loaded = load_dataset(path)
        assert loaded.ground_truth is None

    def test_loaded_dataset_reconstructs_identically(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        """The archive round trip is semantically lossless: a solver run
        on the loaded dataset equals a run on the original."""
        path = save_dataset(tmp_path / "ds.npz", tiny_dataset)
        loaded = load_dataset(path)
        recon = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=tiny_lr
        )
        a = recon.reconstruct(tiny_dataset)
        b = recon.reconstruct(loaded)
        np.testing.assert_array_equal(a.volume, b.volume)


class TestResultRoundtrip:
    def test_fields_survive(self, tiny_dataset, tiny_lr, tmp_path):
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=3, lr=tiny_lr
        ).reconstruct(tiny_dataset)
        path = save_result(tmp_path / "rec.npz", result)
        loaded = load_result(path)
        np.testing.assert_array_equal(loaded.volume, result.volume)
        assert loaded.history == pytest.approx(result.history)
        assert loaded.messages == result.messages
        assert loaded.n_ranks == 4
        assert loaded.probe is None
        assert loaded.final_cost == pytest.approx(result.final_cost)

    def test_probe_persisted_when_refined(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        result = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr, refine_probe=True
        ).reconstruct(tiny_dataset)
        loaded = load_result(save_result(tmp_path / "rp.npz", result))
        np.testing.assert_array_equal(loaded.probe, result.probe)

    def test_checkpoint_restart_through_disk(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        straight = SerialReconstructor(iterations=4, lr=tiny_lr).reconstruct(
            tiny_dataset
        )
        half = SerialReconstructor(iterations=2, lr=tiny_lr).reconstruct(
            tiny_dataset
        )
        loaded = load_result(save_result(tmp_path / "half.npz", half))
        resumed = SerialReconstructor(iterations=2, lr=tiny_lr).reconstruct(
            tiny_dataset, initial_volume=loaded.volume
        )
        np.testing.assert_allclose(
            resumed.volume, straight.volume, atol=1e-12
        )


class TestProbeShapeDiscrimination:
    """Mixed-state archives: shape is the scalar-vs-stack discriminator
    (legacy 2-D probes mean M=1; ``(M, w, w)`` stacks round-trip as
    stacks) — the contract ``as_mode_stack`` normalizes against."""

    def test_scalar_probe_stays_2d(self, tiny_dataset, tiny_lr, tmp_path):
        result = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr, refine_probe=True
        ).reconstruct(tiny_dataset)
        loaded = load_result(save_result(tmp_path / "scal.npz", result))
        w = tiny_dataset.probe.window
        assert loaded.probe.shape == (w, w)
        from repro.physics.probe import as_mode_stack

        assert as_mode_stack(loaded.probe).shape == (1, w, w)

    def test_mode_stack_round_trips_3d(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        result = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr,
            refine_probe=True, probe_modes=2,
        ).reconstruct(tiny_dataset)
        w = tiny_dataset.probe.window
        assert result.probe.shape == (2, w, w)
        loaded = load_result(save_result(tmp_path / "stk.npz", result))
        assert loaded.probe.shape == (2, w, w)
        np.testing.assert_array_equal(loaded.probe, result.probe)

    def test_mixed_state_restart_through_disk(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        kw = dict(n_ranks=2, lr=tiny_lr, mode="synchronous",
                  refine_probe=True, probe_modes=2)
        straight = GradientDecompositionReconstructor(
            iterations=4, **kw
        ).reconstruct(tiny_dataset)
        half = GradientDecompositionReconstructor(
            iterations=2, **kw
        ).reconstruct(tiny_dataset)
        loaded = load_result(save_result(tmp_path / "half2.npz", half))
        resumed = GradientDecompositionReconstructor(
            iterations=2, **kw
        ).reconstruct(
            tiny_dataset,
            initial_probe=loaded.probe,
            initial_volume=loaded.volume,
        )
        np.testing.assert_array_equal(resumed.volume, straight.volume)
        np.testing.assert_array_equal(resumed.probe, straight.probe)


class TestValidation:
    def test_kind_mismatch_rejected(self, tiny_dataset, tiny_lr, tmp_path):
        ds_path = save_dataset(tmp_path / "ds.npz", tiny_dataset)
        with pytest.raises(ValueError, match="archive"):
            load_result(ds_path)
        result = GradientDecompositionReconstructor(
            n_ranks=2, iterations=1, lr=tiny_lr
        ).reconstruct(tiny_dataset)
        rec_path = save_result(tmp_path / "rec.npz", result)
        with pytest.raises(ValueError, match="archive"):
            load_dataset(rec_path)

    def test_random_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro archive"):
            load_dataset(path)
