"""Seeded property-based tests: BatchPlanner and Decomposition
invariants over randomized geometries.

``derandomize=True`` makes hypothesis derive its examples from each
test's source — runs are reproducible without a seed database, which is
what a golden-fingerprint CI needs (no flaky shrink sessions).
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.decomposition import decompose_gradient  # noqa: E402
from repro.data import BatchPlanner  # noqa: E402
from repro.physics.scan import RasterScan, ScanSpec  # noqa: E402

COMMON = settings(max_examples=40, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# BatchPlanner invariants
# ----------------------------------------------------------------------
@COMMON
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=10_000),
        max_size=200,
        unique=True,
    ),
    batch_size=st.integers(min_value=1, max_value=64),
)
def test_planner_partitions_exactly_once(indices, batch_size):
    batches = BatchPlanner(batch_size).plan(indices)
    # Every position exactly once, order preserved (required for
    # bit-exact parity with per-position accumulation order).
    flattened = [i for batch in batches for i in batch]
    assert flattened == list(indices)
    # Batch bounds respected; no empty batches; only the final batch
    # may be ragged.
    assert all(batches), "no batch may be empty"
    assert all(len(b) <= batch_size for b in batches)
    assert all(len(b) == batch_size for b in batches[:-1])
    assert len(batches) == BatchPlanner(batch_size).n_batches(len(indices))


# ----------------------------------------------------------------------
# Decomposition invariants over randomized geometries
# ----------------------------------------------------------------------
def _random_geometry(draw):
    grid_r = draw(st.integers(min_value=1, max_value=6))
    grid_c = draw(st.integers(min_value=1, max_value=6))
    window = draw(st.sampled_from([8, 12, 16]))
    step = draw(st.integers(min_value=2, max_value=window))
    margin = draw(st.integers(min_value=0, max_value=3))
    scan = RasterScan(
        ScanSpec(grid=(grid_r, grid_c), step_px=float(step),
                 margin_px=margin),
        probe_window_px=window,
    )
    rows, cols = scan.required_fov()
    pad_r = draw(st.integers(min_value=0, max_value=8))
    pad_c = draw(st.integers(min_value=0, max_value=8))
    shape = (rows + pad_r, cols + pad_c)
    max_ranks = min(grid_r * grid_c, 9)
    n_ranks = draw(st.integers(min_value=1, max_value=max_ranks))
    return scan, shape, n_ranks


@COMMON
@given(data=st.data())
def test_decomposition_invariants(data):
    scan, shape, n_ranks = _random_geometry(data.draw)
    try:
        decomp = decompose_gradient(scan, shape, n_ranks=n_ranks)
    except ValueError as exc:
        # Degenerate splits (an axis too thin for the mesh) must fail
        # loudly, never produce a broken decomposition.
        assert "tiles" in str(exc) or "split" in str(exc)
        return

    # Probe ownership: every scan position assigned to exactly one tile.
    seen = np.zeros(scan.n_positions, dtype=int)
    for tile in decomp.tiles:
        for p in tile.probes:
            seen[p] += 1
    assert (seen == 1).all()

    # Tile coverage: core tiles partition the image exactly.
    bounds = decomp.bounds
    cover = np.zeros((bounds.height, bounds.width), dtype=int)
    for tile in decomp.tiles:
        sl = tile.core.slices_in(bounds)
        cover[sl[0], sl[1]] += 1
    assert (cover == 1).all()

    # Extended tiles contain their cores and (exact halo mode) cover
    # every owned probe window.
    for tile in decomp.tiles:
        assert tile.ext.contains(tile.core)
        assert bounds.contains(tile.ext)
        for p in tile.probes:
            window = scan.window_of(p).intersect(bounds)
            assert window is None or tile.ext.contains(window)

    # Batching a decomposition preserves the ownership partition for
    # every batch size (the planner is pure bookkeeping).
    batch_size = data.draw(st.integers(min_value=1, max_value=8))
    plans = BatchPlanner(batch_size).plan_tiles(decomp)
    for tile in decomp.tiles:
        assert tuple(
            i for batch in plans[tile.rank] for i in batch
        ) == tile.probes
