"""Config + CLI threading of the data fields (data_source /
batch_size / prefetch): JSON round trips, registry injection, the
``store`` subcommand, and end-to-end replay parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ReconstructionConfig, reconstruct
from repro.api.registry import SolverCapabilityError, solver_from_config
from repro.cli import main
from repro.data import ENV_BATCH_SIZE, ChunkedNpzStore
from repro.io import load_result


class TestConfigFields:
    def test_json_round_trip(self):
        config = ReconstructionConfig(
            "gd",
            {"n_ranks": 4, "iterations": 2, "lr": 0.02},
            data_source="meas.npz",
            batch_size=8,
            prefetch=True,
        )
        clone = ReconstructionConfig.from_json(config.to_json())
        assert clone == config
        assert clone.data_source == "meas.npz"
        assert clone.batch_size == 8
        assert clone.prefetch is True

    def test_pre_data_payloads_load_as_ambient(self):
        payload = {"solver": "gd", "solver_params": {"iterations": 2}}
        config = ReconstructionConfig.from_dict(payload)
        assert config.data_source is None
        assert config.batch_size is None
        assert config.prefetch is None

    @pytest.mark.parametrize(
        "field, value",
        [
            ("data_source", ""),
            ("batch_size", 0),
            ("batch_size", True),
            ("prefetch", "yes"),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ReconstructionConfig("gd", **{field: value})

    def test_with_data_derivation(self):
        base = ReconstructionConfig("gd", batch_size=4)
        derived = base.with_data(data_source="m.npz", prefetch=True)
        assert derived.batch_size == 4  # None keeps current
        assert derived.data_source == "m.npz"
        assert derived.prefetch is True
        assert base.data_source is None  # frozen original untouched

    def test_injection_into_solver(self):
        config = ReconstructionConfig(
            "serial", {"iterations": 2, "lr": 0.02}, batch_size=6
        )
        solver = solver_from_config(config)
        assert solver.inner.batch_size == 6

    def test_injection_rejected_without_opt_in(self):
        from repro.api.registry import register_solver, unregister_solver

        @register_solver("data-less")
        class DataLess:
            accepted_params = frozenset({"iterations"})

            def __init__(self, iterations=1):
                self.iterations = iterations

            def reconstruct(self, dataset, *, observers=(),
                            initial_probe=None, initial_volume=None):
                raise NotImplementedError

        try:
            config = ReconstructionConfig("data-less", batch_size=4)
            with pytest.raises(SolverCapabilityError, match="batch_size"):
                solver_from_config(config)
        finally:
            unregister_solver("data-less")

    def test_solver_params_spelling_must_agree(self):
        config = ReconstructionConfig(
            "gd", {"batch_size": 2}, batch_size=4
        )
        with pytest.raises(ValueError, match="batch_size"):
            solver_from_config(config)


@pytest.fixture()
def dataset_path(tmp_path):
    path = tmp_path / "ds.npz"
    assert main([
        "simulate", "--grid", "4x4", "--detector", "16",
        "--slices", "2", "--seed", "3", "--out", str(path),
    ]) == 0
    return path


class TestStoreSubcommand:
    def test_writes_readable_store(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "meas.npz"
        assert main([
            "store", "--dataset", str(dataset_path),
            "--chunk-size", "5", "--out", str(out),
        ]) == 0
        assert "16 probes in 4 chunks" in capsys.readouterr().out
        from repro.io import load_dataset

        dataset = load_dataset(dataset_path)
        with ChunkedNpzStore(out) as store:
            assert store.n_probes == 16
            np.testing.assert_array_equal(
                store.read(7), dataset.amplitudes[7]
            )

    def test_bad_chunk_size_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        assert main([
            "store", "--dataset", str(dataset_path),
            "--chunk-size", "0", "--out", str(tmp_path / "m.npz"),
        ]) == 2
        assert "chunk_size" in capsys.readouterr().err


class TestReconstructFlags:
    def _store(self, dataset_path, tmp_path):
        out = tmp_path / "meas.npz"
        assert main([
            "store", "--dataset", str(dataset_path),
            "--chunk-size", "4", "--out", str(out),
        ]) == 0
        return out

    def test_streamed_run_matches_memory_and_embeds_config(
        self, dataset_path, tmp_path, capsys
    ):
        store = self._store(dataset_path, tmp_path)
        mem_out = tmp_path / "mem.npz"
        str_out = tmp_path / "streamed.npz"
        base = [
            "reconstruct", "--dataset", str(dataset_path),
            "--ranks", "4", "--iterations", "2", "--mode", "synchronous",
        ]
        assert main(base + ["--out", str(mem_out)]) == 0
        assert main(base + [
            "--data-store", str(store), "--batch-size", "4",
            "--prefetch", "--out", str(str_out),
        ]) == 0
        assert "batch=4" in capsys.readouterr().out

        memory = load_result(mem_out)
        streamed = load_result(str_out)
        np.testing.assert_array_equal(memory.volume, streamed.volume)
        assert memory.history == streamed.history
        assert streamed.config.data_source == str(store)
        assert streamed.config.batch_size == 4
        assert streamed.config.prefetch is True
        # The in-memory run records the resolved per-position default.
        assert memory.config.data_source is None
        assert memory.config.batch_size == 1

    def test_env_batch_size_recorded(
        self, dataset_path, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(ENV_BATCH_SIZE, "3")
        out = tmp_path / "env.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--ranks", "4", "--iterations", "1", "--out", str(out),
        ]) == 0
        assert load_result(out).config.batch_size == 3

    def test_flags_override_config_for_replay(
        self, dataset_path, tmp_path, capsys
    ):
        store = self._store(dataset_path, tmp_path)
        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "solver": "gd",
            "solver_params": {
                "n_ranks": 4, "iterations": 2, "lr": 0.02,
                "mode": "synchronous",
            },
        }))
        out = tmp_path / "replayed.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--config", str(config_path),
            "--data-store", str(store), "--batch-size", "2",
            "--out", str(out),
        ]) == 0
        replayed = load_result(out)
        assert replayed.config.data_source == str(store)
        assert replayed.config.batch_size == 2

    def test_no_prefetch_overrides_archived_config(
        self, dataset_path, tmp_path, capsys
    ):
        # Every data field must honour the CLI replay-override
        # contract, including switching prefetch *off*.
        store = self._store(dataset_path, tmp_path)
        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "solver": "gd",
            "solver_params": {"n_ranks": 4, "iterations": 1, "lr": 0.02},
            "data_source": str(store),
            "prefetch": True,
        }))
        out = tmp_path / "quiet.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--config", str(config_path), "--no-prefetch",
            "--out", str(out),
        ]) == 0
        assert load_result(out).config.prefetch is False

    def test_invalid_batch_size_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--batch-size", "0", "--out", str(tmp_path / "x.npz"),
        ]) == 2
        assert "batch_size" in capsys.readouterr().err

    def test_missing_store_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--data-store", str(tmp_path / "nope.npz"),
            "--iterations", "1",
            "--out", str(tmp_path / "x.npz"),
        ]) == 2

    def test_replay_of_streamed_archive(self, dataset_path, tmp_path):
        store = self._store(dataset_path, tmp_path)
        out = tmp_path / "first.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--ranks", "4", "--iterations", "2", "--mode", "synchronous",
            "--data-store", str(store), "--batch-size", "4",
            "--out", str(out),
        ]) == 0
        archive = load_result(out)
        from repro.io import load_dataset

        replay = reconstruct(load_dataset(dataset_path), archive.config)
        np.testing.assert_array_equal(replay.volume, archive.volume)
