"""Fault injection for the streaming layer: stalls, truncated scans and
malformed schedules must fail (or settle) pointedly — never hang, never
leak the feeder thread.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import ReconstructionConfig, reconstruct
from repro.data import StreamError, StreamTimeout


def _feeder_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("stream-feeder")
    ]


def _gd(lr, iterations=3, **stream):
    return ReconstructionConfig(
        solver="gd",
        solver_params={
            "n_ranks": 4, "iterations": iterations, "lr": lr,
            "mode": "synchronous",
        },
        **stream,
    )


class TestStall:
    def test_stalled_source_raises_stream_timeout(self, tiny_dataset, tiny_lr):
        # First wave lands quickly; the rest of the scan stalls far past
        # the policy timeout.  The run must surface StreamTimeout at the
        # wait (not hang for the stalled delivery) and join the feeder.
        n = tiny_dataset.n_probes
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [
                    {"frames": list(range(4)), "delay_s": 0.01},
                    {"frames": list(range(4, n)), "delay_s": 60.0},
                ],
            },
            stream_policy={"wait_timeout_s": 0.25},
        )
        with pytest.raises(StreamTimeout):
            reconstruct(tiny_dataset, config)
        for thread in _feeder_threads():
            thread.join(timeout=5.0)
        assert _feeder_threads() == []

    def test_stall_before_first_frame_raises(self, tiny_dataset, tiny_lr):
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [{"count": tiny_dataset.n_probes, "delay_s": 60.0}],
            },
            stream_policy={"wait_timeout_s": 0.25},
        )
        with pytest.raises(StreamTimeout):
            reconstruct(tiny_dataset, config)
        for thread in _feeder_threads():
            thread.join(timeout=5.0)
        assert _feeder_threads() == []


class TestTruncatedScan:
    def test_end_of_scan_short_of_advertised_settles(
        self, tiny_dataset, tiny_lr
    ):
        # The scan ends after 5 of the advertised 9 frames: the run must
        # settle gracefully — every remaining iteration sweeps the
        # frames that DID arrive, exactly like a static run restricted
        # to those positions.
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [{"count": 5, "after_sweep": 0,
                           "end_of_scan": True}],
            },
        )
        streamed = reconstruct(tiny_dataset, config)
        params = {
            "n_ranks": 4, "iterations": 3, "lr": tiny_lr,
            "mode": "synchronous", "positions": list(range(5)),
        }
        static = reconstruct(
            tiny_dataset,
            ReconstructionConfig(solver="gd", solver_params=params),
        )
        assert np.array_equal(streamed.volume, static.volume)
        assert streamed.history == static.history


class TestMalformedSchedules:
    def test_no_frames_before_first_sweep_is_pointed(
        self, tiny_dataset, tiny_lr
    ):
        # A sweep-keyed schedule whose first wave only lands after sweep
        # 1 can never start; the driver says so instead of sweeping an
        # empty scan.
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [{"count": tiny_dataset.n_probes,
                           "after_sweep": 1}],
            },
        )
        with pytest.raises(StreamError, match="min_start_frames"):
            reconstruct(tiny_dataset, config)

    def test_mixed_sweep_and_timed_gating_rejected(
        self, tiny_dataset, tiny_lr
    ):
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [
                    {"frames": [0], "after_sweep": 0},
                    {"frames": [1], "delay_s": 0.5},
                ],
            },
        )
        with pytest.raises(StreamError, match="mix"):
            reconstruct(tiny_dataset, config)

    def test_geometry_mismatch_rejected(self, tiny_dataset, tiny_lr):
        config = _gd(
            tiny_lr,
            scan_source={"kind": "replay", "waves": 2},
        )
        # Lie about the dataset by streaming a different acquisition's
        # frame count through the spec: simulate with advertised != n.
        bad = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [{"count": 4, "end_of_scan": True,
                           "after_sweep": 0}],
                "advertised": 4,
            },
        )
        with pytest.raises(StreamError, match="advertises"):
            reconstruct(tiny_dataset, bad)
        # The well-formed replay spec still runs.
        assert reconstruct(tiny_dataset, config).n_iterations == 3


class TestTimedCompletion:
    def test_timed_schedule_completes_and_joins_feeder(
        self, tiny_dataset, tiny_lr
    ):
        # A healthy timed source (short delays, full delivery) runs to
        # the full iteration budget and leaves no feeder thread behind.
        n = tiny_dataset.n_probes
        config = _gd(
            tiny_lr,
            scan_source={
                "kind": "simulated",
                "waves": [
                    {"frames": list(range(4)), "delay_s": 0.01},
                    {"frames": list(range(4, n)), "delay_s": 0.02},
                ],
            },
            stream_policy={"wait_timeout_s": 10.0},
        )
        result = reconstruct(tiny_dataset, config)
        assert result.n_iterations == 3
        assert _feeder_threads() == []

    def test_traced_stream_records_epoch_counters(
        self, tiny_dataset, tiny_lr
    ):
        config = _gd(
            tiny_lr,
            scan_source={"kind": "replay", "waves": 3},
        ).with_telemetry(True)
        result = reconstruct(tiny_dataset, config)
        counters = result.telemetry["counters"]
        assert counters["stream.epochs"] == 3
        assert counters["stream.frames_arrived"] == tiny_dataset.n_probes
