"""Unit tests for the diffraction stores (see tests/README.md)."""

from __future__ import annotations

import pickle
import zipfile

import numpy as np
import pytest

from repro.data import (
    ChunkedNpzStore,
    Hdf5Store,
    InMemoryStore,
    StoreFormatError,
    StoreUnavailableError,
    open_store,
    write_store,
)


@pytest.fixture(scope="module")
def amplitudes(tiny_dataset):
    return np.asarray(tiny_dataset.amplitudes)


@pytest.fixture()
def store_path(tmp_path, amplitudes):
    path = tmp_path / "meas.npz"
    ChunkedNpzStore.write(path, amplitudes, chunk_size=4)
    return path


class TestInMemoryStore:
    def test_reads_are_views(self, amplitudes):
        store = InMemoryStore(amplitudes)
        assert store.n_probes == amplitudes.shape[0]
        assert store.detector_px == amplitudes.shape[1]
        assert store.dtype == amplitudes.dtype
        frame = store.read(3)
        assert frame.base is not None  # a view, not a copy
        np.testing.assert_array_equal(frame, amplitudes[3])

    def test_read_batch_gathers(self, amplitudes):
        store = InMemoryStore(amplitudes)
        batch = store.read_batch([4, 0, 2])
        np.testing.assert_array_equal(batch, amplitudes[[4, 0, 2]])

    def test_shard_nbytes_matches_pinned_stack(self, amplitudes):
        store = InMemoryStore(amplitudes)
        n = amplitudes.shape[0]
        assert store.shard_nbytes(range(n)) == amplitudes.nbytes

    def test_rejects_non_stack(self):
        with pytest.raises(ValueError, match=r"\(N, det, det\)"):
            InMemoryStore(np.zeros((4, 8, 9), dtype=np.float16))
        with pytest.raises(ValueError, match=r"\(N, det, det\)"):
            InMemoryStore(np.zeros((8, 8), dtype=np.float16))


class TestChunkedNpzStore:
    def test_roundtrip_every_frame(self, store_path, amplitudes):
        with ChunkedNpzStore(store_path) as store:
            assert store.n_probes == amplitudes.shape[0]
            assert store.dtype == amplitudes.dtype
            assert store.chunk_size == 4
            for i in range(store.n_probes):
                np.testing.assert_array_equal(
                    store.read(i), amplitudes[i]
                )

    def test_ragged_final_chunk(self, tmp_path, amplitudes):
        # 9 probes in chunks of 4 -> chunks of 4, 4, 1.
        assert amplitudes.shape[0] == 9
        path = tmp_path / "ragged.npz"
        ChunkedNpzStore.write(path, amplitudes, chunk_size=4)
        with ChunkedNpzStore(path) as store:
            assert store.n_chunks == 3
            np.testing.assert_array_equal(store.read(8), amplitudes[8])

    def test_read_batch_matches_stack(self, store_path, amplitudes):
        with ChunkedNpzStore(store_path) as store:
            batch = store.read_batch([7, 1, 5])
            np.testing.assert_array_equal(batch, amplitudes[[7, 1, 5]])

    def test_out_of_range(self, store_path):
        with ChunkedNpzStore(store_path) as store:
            with pytest.raises(IndexError):
                store.read(store.n_probes)
            with pytest.raises(IndexError):
                store.read(-1)

    def test_cache_stays_bounded(self, tmp_path, amplitudes):
        path = tmp_path / "tiny_chunks.npz"
        ChunkedNpzStore.write(path, amplitudes, chunk_size=1)
        with ChunkedNpzStore(path, cache_chunks=2) as store:
            for i in range(store.n_probes):
                store.read(i)
            assert store.stats()["resident_chunks"] <= 2

    def test_shard_nbytes_is_cache_bounded(self, store_path, amplitudes):
        with ChunkedNpzStore(store_path, cache_chunks=2) as store:
            full = amplitudes.nbytes
            resident = store.shard_nbytes(range(store.n_probes))
            assert resident == 2 * store.chunk_nbytes
            assert resident < full
            # A shard smaller than the cache is reported at its size.
            assert store.shard_nbytes([0]) == store.frame_nbytes

    def test_prefetch_serves_identical_frames(self, store_path, amplitudes):
        with ChunkedNpzStore(store_path, prefetch=True) as store:
            for i in range(store.n_probes):
                np.testing.assert_array_equal(
                    store.read(i), amplitudes[i]
                )
            stats = store.stats()
            assert stats["prefetch_scheduled"] > 0
            assert stats["prefetch_hits"] > 0

    def test_worker_copy_opens_fresh_handle(self, store_path, amplitudes):
        # Fork inherits open descriptors; a worker's copy must not
        # share the parent's seek position.
        parent = ChunkedNpzStore(store_path)
        parent.read(0)
        child = parent.worker_copy()
        try:
            assert child is not parent
            assert child._zip is None  # no inherited handle
            np.testing.assert_array_equal(child.read(6), amplitudes[6])
            np.testing.assert_array_equal(parent.read(6), amplitudes[6])
        finally:
            child.close()
            parent.close()

    def test_pickles_by_path(self, store_path, amplitudes):
        store = ChunkedNpzStore(store_path)
        store.read(0)  # force the zip handle open
        clone = pickle.loads(pickle.dumps(store))
        try:
            np.testing.assert_array_equal(clone.read(5), amplitudes[5])
        finally:
            clone.close()
            store.close()

    def test_close_is_idempotent(self, store_path):
        store = ChunkedNpzStore(store_path, prefetch=True)
        store.read(0)
        store.close()
        store.close()

    def test_rejects_non_store_files(self, tmp_path, amplitudes):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, amplitudes=amplitudes)
        with pytest.raises(StoreFormatError):
            ChunkedNpzStore(bogus)
        not_zip = tmp_path / "not_zip.npz"
        not_zip.write_bytes(b"definitely not a zip")
        with pytest.raises(StoreFormatError):
            ChunkedNpzStore(not_zip)

    def test_rejects_future_version(self, tmp_path, store_path):
        # Rewrite the header with a version from the future.
        import json

        future = tmp_path / "future.npz"
        with zipfile.ZipFile(store_path) as src, zipfile.ZipFile(
            future, "w"
        ) as dst:
            for name in src.namelist():
                payload = src.read(name)
                if name == "store_meta.json":
                    meta = json.loads(payload)
                    meta["version"] = 99
                    payload = json.dumps(meta).encode()
                dst.writestr(name, payload)
        with pytest.raises(StoreFormatError, match="v99"):
            ChunkedNpzStore(future)

    def test_write_validates(self, tmp_path, amplitudes):
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkedNpzStore.write(tmp_path / "x.npz", amplitudes, 0)
        with pytest.raises(ValueError, match=r"\(N, det, det\)"):
            ChunkedNpzStore.write(
                tmp_path / "x.npz", amplitudes[:, :, :4], 4
            )


class TestOpenStore:
    def test_memory_spellings(self, tiny_dataset):
        for spec in (None, "memory"):
            store, owned = open_store(spec, dataset=tiny_dataset)
            assert isinstance(store, InMemoryStore)
            assert owned

    def test_memory_needs_dataset(self):
        with pytest.raises(ValueError, match="needs a dataset"):
            open_store("memory")

    def test_path_dispatch(self, store_path, tiny_dataset):
        store, owned = open_store(str(store_path), dataset=tiny_dataset)
        try:
            assert isinstance(store, ChunkedNpzStore)
            assert owned
        finally:
            store.close()

    def test_instance_passthrough_keeps_ownership(self, tiny_dataset):
        mine = InMemoryStore(tiny_dataset.amplitudes)
        store, owned = open_store(mine)
        assert store is mine
        assert not owned

    def test_instance_is_geometry_checked_too(self, tiny_dataset):
        wrong = InMemoryStore(np.zeros((3, 8, 8), dtype=np.float16))
        with pytest.raises(ValueError, match="expects"):
            open_store(wrong, dataset=tiny_dataset)
        # A caller-owned instance must NOT be closed by the failed
        # resolution — it still belongs to whoever built it.
        assert wrong.read(0).shape == (8, 8)

    def test_memory_worker_copy_is_identity(self, tiny_dataset):
        store = InMemoryStore(tiny_dataset.amplitudes)
        assert store.worker_copy() is store

    def test_geometry_mismatch_rejected(self, tmp_path, tiny_dataset):
        wrong = tmp_path / "wrong.npz"
        ChunkedNpzStore.write(
            wrong,
            np.zeros((3, 8, 8), dtype=np.float16),
            chunk_size=2,
        )
        with pytest.raises(ValueError, match="expects"):
            open_store(str(wrong), dataset=tiny_dataset)

    def test_write_store_infers_format(self, tmp_path, tiny_dataset):
        path = write_store(tmp_path / "w.npz", tiny_dataset, chunk_size=4)
        with ChunkedNpzStore(path) as store:
            assert store.n_probes == tiny_dataset.n_probes
        with pytest.raises(ValueError, match="unknown store format"):
            write_store(tmp_path / "w2.npz", tiny_dataset, fmt="exotic")

    def test_write_store_rejects_format_extension_mismatch(
        self, tmp_path, tiny_dataset
    ):
        # A mismatched file could be written but never read back —
        # open_store dispatches by extension.
        with pytest.raises(ValueError, match="contradicts"):
            write_store(tmp_path / "w.npz", tiny_dataset, fmt="hdf5")
        with pytest.raises(ValueError, match="contradicts"):
            write_store(tmp_path / "w.h5", tiny_dataset, fmt="npz")


class TestHdf5Store:
    def test_unavailable_raises_pointed_error(self):
        if Hdf5Store.available():
            pytest.skip("h5py installed; unavailability path not reachable")
        with pytest.raises(StoreUnavailableError, match="h5py"):
            Hdf5Store("whatever.h5")

    def test_roundtrip(self, tmp_path, tiny_dataset):
        if not Hdf5Store.available():
            pytest.skip("h5py not installed")
        amplitudes = np.asarray(tiny_dataset.amplitudes)
        path = write_store(
            tmp_path / "meas.h5", tiny_dataset, chunk_size=4
        )
        with Hdf5Store(path) as store:
            assert store.n_probes == amplitudes.shape[0]
            for i in (0, 3, 8):
                np.testing.assert_array_equal(
                    store.read(i), amplitudes[i]
                )
            np.testing.assert_array_equal(
                store.read_batch([5, 0, 2]), amplitudes[[5, 0, 2]]
            )


class TestCloseRace:
    """Regression: close() racing an in-flight chunk read used to let
    the lazy ``_zipfile()`` reopen the archive *after* close — leaking
    the file descriptor and leaving readers on a dead handle."""

    def test_read_after_close_is_pointed(self, store_path):
        store = ChunkedNpzStore(store_path, cache_chunks=1)
        store.read(0)
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.read(5)

    def test_concurrent_reads_and_close_leak_no_fds(
        self, store_path, amplitudes
    ):
        import threading

        from tests.service.test_leaks import open_fds_for

        n = amplitudes.shape[0]
        for _ in range(5):
            # cache_chunks=1 forces nearly every read through the zip
            # handle, maximizing the close/read overlap window.
            store = ChunkedNpzStore(store_path, cache_chunks=1)
            errors = []

            def reader():
                try:
                    for i in range(200):
                        frame = store.read(i % n)
                        assert frame.shape == amplitudes[0].shape
                except ValueError as exc:
                    # The only acceptable failure mode: a read landing
                    # after close fails pointedly.
                    assert "closed" in str(exc)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            thread = threading.Thread(target=reader)
            thread.start()
            store.close()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert errors == []
            assert open_fds_for(store_path) == []

    def test_prefetching_store_closes_without_leaking(
        self, store_path, amplitudes
    ):
        from tests.service.test_leaks import open_fds_for

        for _ in range(5):
            store = ChunkedNpzStore(store_path, cache_chunks=1,
                                    prefetch=True)
            # Schedule background loads, then close immediately: the
            # pool must cancel what has not started and wait out what
            # has (cancel_futures in ChunkPrefetcher.close).
            store.read(0)
            store.read(4)
            store.close()
            assert open_fds_for(store_path) == []
