"""Seeded property-based tests: StreamingStore journal/coverage
invariants and the growing-set BatchPlanner contract.

Like ``test_property_invariants.py``, examples are derandomized so runs
are reproducible without a shrink database.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data import (  # noqa: E402
    BatchPlanner,
    StreamingStore,
    StreamTimeout,
)

COMMON = settings(max_examples=40, deadline=None, derandomize=True)

DET = 4
N = 25


def _frame(index):
    return np.full((DET, DET), float(index))


@st.composite
def arrival_orders(draw):
    """A scrambled subset of the scan, as an arrival sequence."""
    size = draw(st.integers(min_value=1, max_value=N))
    return draw(
        st.permutations(list(range(N)))
    )[:size]


# ----------------------------------------------------------------------
# Journal / coverage invariants
# ----------------------------------------------------------------------
@COMMON
@given(order=arrival_orders())
def test_journal_preserves_arrival_order_no_drop_no_dup(order):
    store = StreamingStore(N, DET, np.float64)
    for step, index in enumerate(order):
        store.append(index, _frame(index))
        journal = store.journal()
        # No drop, no duplication, no reorder: the journal IS the
        # arrival sequence so far.
        assert list(journal) == list(order[: step + 1])
        assert len(set(journal)) == len(journal)
    # Every journaled frame reads back as what was appended.
    for index in order:
        assert store.read(index)[0, 0] == float(index)


@COMMON
@given(order=arrival_orders())
def test_coverage_is_monotone_and_sorted(order):
    store = StreamingStore(N, DET, np.float64)
    previous = frozenset()
    for index in order:
        store.append(index, _frame(index))
        covered = store.coverage()
        assert list(covered) == sorted(covered)
        current = frozenset(covered)
        # Monotone: arrival only ever grows coverage, by exactly the
        # arrived index.
        assert previous < current
        assert current - previous == {index}
        previous = current
    assert store.poll().arrived == len(order)


@COMMON
@given(order=arrival_orders(), n=st.integers(min_value=0, max_value=N))
def test_wait_for_contract(order, n):
    store = StreamingStore(N, DET, np.float64)
    for index in order:
        store.append(index, _frame(index))
    if n <= len(order):
        # Already satisfied: returns immediately, no timeout involved.
        status = store.wait_for(n, timeout=0.0)
        assert status.arrived >= n
    else:
        # Unsatisfiable without new arrivals: a tiny timeout raises.
        with pytest.raises(StreamTimeout):
            store.wait_for(n, timeout=0.001)
        # ... but end-of-scan settles the wait even short of n frames.
        store.mark_end_of_scan()
        status = store.wait_for(n, timeout=0.0)
        assert status.end_of_scan and status.complete
        assert status.arrived == len(order)


# ----------------------------------------------------------------------
# BatchPlanner over a growing position set
# ----------------------------------------------------------------------
@COMMON
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=500), max_size=80, unique=True
    ),
    covered=st.sets(st.integers(min_value=0, max_value=500), max_size=80),
    batch_size=st.integers(min_value=1, max_value=16),
)
def test_plan_covered_partitions_exactly_the_covered_positions(
    indices, covered, batch_size
):
    planner = BatchPlanner(batch_size)
    batches = planner.plan_covered(indices, covered)
    flattened = [i for batch in batches for i in batch]
    # Exactly the covered subset, in the sweep's order — growing
    # coverage only ever appends work, never reshuffles it.
    assert flattened == [i for i in indices if i in covered]
    assert all(batches)
    assert all(len(b) <= batch_size for b in batches)
    assert all(len(b) == batch_size for b in batches[:-1])
