"""Streaming parity: the acceptance gates of the live-acquisition layer.

Two invariants, both bit-exact (``tests.helpers.result_fingerprint``):

* **Full pre-arrival** — a streamed run whose every frame arrives
  before iteration 0 is *identical* to the static ``InMemoryStore``
  path: the epoch driver collapses to one unrestricted epoch reading
  from a :class:`~repro.data.StreamingStore`.
* **Wave parity** — a K-wave streamed run equals K static runs with
  ``positions`` pinned to the same coverage snapshots, each warm-started
  from its predecessor's volume.  That is the *definition* of the epoch
  driver, replayed here through the public API only.

Tier-1 covers gd/hve on the serial executor plus the serial reference;
the process-executor cross-products are ``slow`` (CI also re-runs this
file under ``REPRO_EXECUTOR=process``, which retargets the ambient
``executor=None`` configs used below).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ReconstructionConfig, reconstruct
from repro.data import ReplayScanSource

from tests.helpers import assert_results_identical, result_fingerprint

ITERS = 3

SOLVERS = {
    "gd": lambda lr: {"n_ranks": 4, "iterations": ITERS, "lr": lr,
                      "mode": "synchronous"},
    "hve": lambda lr: {"n_ranks": 4, "iterations": ITERS, "lr": lr},
    "serial": lambda lr: {"iterations": ITERS, "lr": lr},
}


def _config(solver, lr, executor=None):
    return ReconstructionConfig(
        solver=solver,
        solver_params=SOLVERS[solver](lr),
        executor=executor,
    )


def _coverage_points(dataset, n_waves):
    """The coverage snapshots a ``replay``/``n_waves`` schedule visits,
    derived from the wave layout itself (not from driver internals)."""
    source = ReplayScanSource(dataset.amplitudes, n_waves)
    points, acc = [], []
    for wave in source.waves:
        acc.extend(wave.frames)
        points.append(tuple(sorted(acc)))
    return points


def _static_replay(dataset, config, points, total):
    """K static runs restarted at each coverage snapshot — the
    ground-truth decomposition of a wave-streamed run."""
    volume, history, messages = None, [], 0
    for k, covered in enumerate(points):
        params = dict(config.solver_params)
        params["iterations"] = (
            1 if k < len(points) - 1 else total - (len(points) - 1)
        )
        if len(covered) < dataset.n_probes:
            params["positions"] = list(covered)
        leg = reconstruct(
            dataset,
            ReconstructionConfig(
                solver=config.solver,
                solver_params=params,
                executor=config.executor,
            ),
            initial_volume=volume,
        )
        volume = leg.volume
        history.extend(leg.history)
        messages += leg.messages
    return volume, history, messages


class TestFullPreArrival:
    """One wave delivering everything at sweep 0 == the static path."""

    @pytest.mark.parametrize("solver", ["gd", "hve", "serial"])
    def test_identical_to_static(self, tiny_dataset, tiny_lr, solver):
        config = _config(solver, tiny_lr)
        static = reconstruct(tiny_dataset, config)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(scan_source={"kind": "replay", "waves": 1}),
        )
        assert_results_identical(static, streamed)
        assert result_fingerprint(static) == result_fingerprint(streamed)

    def test_out_of_order_arrival_is_still_identical(
        self, tiny_dataset, tiny_lr
    ):
        # Arrival *order* must not matter once coverage is full: deliver
        # every frame at sweep 0 but scrambled.
        n = tiny_dataset.n_probes
        scrambled = list(reversed(range(n)))
        config = _config("gd", tiny_lr)
        static = reconstruct(tiny_dataset, config)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(scan_source={
                "kind": "simulated",
                "waves": [{"frames": scrambled, "after_sweep": 0,
                           "end_of_scan": True}],
            }),
        )
        assert_results_identical(static, streamed)

    @pytest.mark.slow
    @pytest.mark.parametrize("solver", ["gd", "hve"])
    def test_identical_on_process_executor(
        self, tiny_dataset, tiny_lr, solver
    ):
        config = _config(solver, tiny_lr, executor="process")
        static = reconstruct(tiny_dataset, config)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(scan_source={"kind": "replay", "waves": 1}),
        )
        assert_results_identical(static, streamed)


class TestWaveParity:
    """K waves == K static runs restarted at the coverage snapshots."""

    @pytest.mark.parametrize("solver", ["gd", "hve", "serial"])
    def test_matches_static_replays(self, tiny_dataset, tiny_lr, solver):
        config = _config(solver, tiny_lr)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(scan_source={"kind": "replay", "waves": 3}),
        )
        points = _coverage_points(tiny_dataset, 3)
        volume, history, messages = _static_replay(
            tiny_dataset, config, points, ITERS
        )
        assert np.array_equal(streamed.volume, volume)
        assert streamed.history == history
        assert streamed.messages == messages

    @pytest.mark.slow
    @pytest.mark.parametrize("solver", ["gd", "hve"])
    def test_matches_static_replays_process(
        self, tiny_dataset, tiny_lr, solver
    ):
        config = _config(solver, tiny_lr, executor="process")
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(scan_source={"kind": "replay", "waves": 3}),
        )
        points = _coverage_points(tiny_dataset, 3)
        volume, history, _ = _static_replay(
            tiny_dataset, config, points, ITERS
        )
        assert np.array_equal(streamed.volume, volume)
        assert streamed.history == history


class TestStreamPolicyKnobs:
    def test_restart_on_growth(self, tiny_dataset, tiny_lr):
        # on_growth="restart" discards the warm start whenever coverage
        # grows, so the final epoch (full coverage) starts from vacuum —
        # its outcome equals a plain static run with that epoch's budget.
        config = _config("gd", tiny_lr)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(
                scan_source={"kind": "replay", "waves": 2},
                stream_policy={"on_growth": "restart"},
            ),
        )
        static = reconstruct(
            tiny_dataset, config.with_solver_params(iterations=ITERS - 1)
        )
        assert np.array_equal(streamed.volume, static.volume)
        assert streamed.history[1:] == static.history
        assert len(streamed.history) == ITERS

    def test_reweight_scales_lr_by_coverage(self, tiny_dataset, tiny_lr):
        # With reweight on, a partial epoch steps with
        # lr * advertised/covered; the full-coverage epochs of a 2-wave
        # run keep the base lr, so only the first iteration differs from
        # the unweighted stream.
        config = _config("gd", tiny_lr)
        spec = {"kind": "replay", "waves": 2}
        plain = reconstruct(tiny_dataset, config.with_stream(scan_source=spec))
        weighted = reconstruct(
            tiny_dataset,
            config.with_stream(
                scan_source=spec, stream_policy={"reweight": True}
            ),
        )
        # The sweep cost of an iteration is evaluated before its update,
        # so the scaled step shows up from the *next* iteration on.
        assert plain.history[1:] != weighted.history[1:]
        assert not np.array_equal(plain.volume, weighted.volume)

    def test_reweight_requires_explicit_lr(self, tiny_dataset):
        config = ReconstructionConfig(
            solver="gd",
            solver_params={"n_ranks": 4, "iterations": 2},
            scan_source={"kind": "replay", "waves": 2},
            stream_policy={"reweight": True},
        )
        with pytest.raises(ValueError, match="reweight"):
            reconstruct(tiny_dataset, config)

    def test_sweeps_per_epoch_batches_the_waves(self, tiny_dataset, tiny_lr):
        # sweeps_per_epoch=ITERS makes the first (partial) epoch consume
        # the whole budget: the run never sees the later waves.
        config = _config("gd", tiny_lr)
        streamed = reconstruct(
            tiny_dataset,
            config.with_stream(
                scan_source={"kind": "replay", "waves": 3},
                stream_policy={"sweeps_per_epoch": ITERS},
            ),
        )
        points = _coverage_points(tiny_dataset, 3)
        params = dict(config.solver_params)
        params["positions"] = list(points[0])
        static = reconstruct(
            tiny_dataset,
            ReconstructionConfig(solver="gd", solver_params=params),
        )
        assert np.array_equal(streamed.volume, static.volume)


class TestConfigSurface:
    def test_scan_source_is_fingerprint_neutral(self, tiny_lr):
        config = _config("gd", tiny_lr)
        streamed = config.with_stream(
            scan_source={"kind": "replay", "waves": 4},
            stream_policy={"sweeps_per_epoch": 2},
        )
        assert config.fingerprint() == streamed.fingerprint()

    def test_scan_source_round_trips_json(self, tiny_lr):
        config = _config("gd", tiny_lr).with_stream(
            scan_source={"kind": "replay", "waves": 4},
            stream_policy={"wait_timeout_s": 5.0},
        )
        again = ReconstructionConfig.from_json(config.to_json())
        assert dict(again.scan_source) == {"kind": "replay", "waves": 4}
        assert dict(again.stream_policy) == {"wait_timeout_s": 5.0}

    def test_scan_source_excludes_data_source(self, tiny_lr):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ReconstructionConfig(
                solver="gd",
                solver_params={"n_ranks": 4},
                data_source="store.npz",
                scan_source={"kind": "replay"},
            )

    def test_stream_offset_needs_scan_source(self, tiny_dataset, tiny_lr):
        config = ReconstructionConfig(
            solver="gd",
            solver_params={"n_ranks": 4, "iterations": 2, "lr": tiny_lr},
            run_params={"stream_offset": 2},
        )
        with pytest.raises(ValueError, match="stream_offset"):
            reconstruct(tiny_dataset, config)
