"""Streaming/batched parity suite.

The acceptance contract of the data pipeline: **no configuration of it
changes numerics**.  Batched execution vs per-position, on-disk store vs
in-memory, serial executor vs process executor — every combination must
be fingerprint-identical (volumes, cost history, message/byte counts) to
the per-position in-memory reference that predates the subsystem.

Fast tier covers each axis once; the ``slow`` marker holds the full
cross-product sweep (run in CI with ``-m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.data import ENV_BATCH_SIZE, write_store
from tests.helpers import assert_results_identical

LR = 0.02
ITERS = 3


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, tiny_dataset):
    """A chunked on-disk copy of tiny_dataset's measurements, with a
    chunk size that forces multi-chunk reads and a ragged tail."""
    path = tmp_path_factory.mktemp("parity") / "meas.npz"
    write_store(path, tiny_dataset, chunk_size=4)
    return str(path)


def gd(mode="synchronous", **kw):
    kw.setdefault("n_ranks", 4)
    kw.setdefault("iterations", ITERS)
    kw.setdefault("lr", LR)
    return GradientDecompositionReconstructor(mode=mode, **kw)


@pytest.fixture(scope="module")
def gd_sync_reference(tiny_dataset):
    """Per-position, in-memory, serial — the pre-subsystem behaviour."""
    return gd().reconstruct(tiny_dataset)


class TestBatchedVsPerPosition:
    @pytest.mark.parametrize("batch_size", [2, 3, 64])
    def test_gd_synchronous(
        self, tiny_dataset, gd_sync_reference, batch_size
    ):
        # 2/3 exercise ragged final batches (ranks own 2-3 probes of
        # the 3x3 scan); 64 exceeds every rank's probe count.
        batched = gd(batch_size=batch_size).reconstruct(tiny_dataset)
        assert_results_identical(gd_sync_reference, batched)

    def test_gd_alg1_batching_is_inert(self, tiny_dataset):
        # Alg. 1's local updates are order-dependent; batch_size must
        # leave them untouched rather than change the algorithm.
        reference = gd(mode="alg1").reconstruct(tiny_dataset)
        batched = gd(mode="alg1", batch_size=8).reconstruct(tiny_dataset)
        assert_results_identical(reference, batched)

    def test_gd_refine_probe_batched(self, tiny_dataset):
        reference = gd(refine_probe=True).reconstruct(tiny_dataset)
        batched = gd(refine_probe=True, batch_size=3).reconstruct(
            tiny_dataset
        )
        assert_results_identical(reference, batched)
        np.testing.assert_array_equal(reference.probe, batched.probe)

    @pytest.mark.parametrize("batch_size", [2, 5, 64])
    def test_serial_batch_scheme(self, tiny_dataset, batch_size):
        reference = SerialReconstructor(
            iterations=ITERS, lr=LR
        ).reconstruct(tiny_dataset)
        batched = SerialReconstructor(
            iterations=ITERS, lr=LR, batch_size=batch_size
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, batched)

    def test_serial_sgd_batching_is_inert(self, tiny_dataset):
        reference = SerialReconstructor(
            iterations=ITERS, lr=LR, scheme="sgd"
        ).reconstruct(tiny_dataset)
        batched = SerialReconstructor(
            iterations=ITERS, lr=LR, scheme="sgd", batch_size=4
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, batched)

    def test_hve_batching_is_inert(self, tiny_dataset):
        reference = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR
        ).reconstruct(tiny_dataset)
        batched = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR, batch_size=4
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, batched)

    def test_env_batch_size_is_parity_safe(
        self, tiny_dataset, gd_sync_reference, monkeypatch
    ):
        # An ambient REPRO_BATCH_SIZE is allowed to change *speed* for
        # every run on the machine precisely because it can never
        # change results.
        monkeypatch.setenv(ENV_BATCH_SIZE, "3")
        ambient = gd().reconstruct(tiny_dataset)
        assert_results_identical(gd_sync_reference, ambient)

    def test_explicit_batch_size_beats_env(
        self, tiny_dataset, monkeypatch
    ):
        # The backend/executor precedence contract: explicit values are
        # never overridden by the environment.
        from repro.core.engine import NumericEngine

        monkeypatch.setenv(ENV_BATCH_SIZE, "7")
        decomp = gd().decompose(tiny_dataset)
        assert NumericEngine(
            tiny_dataset, decomp, lr=LR, batch_size=2
        ).batch_size == 2
        assert NumericEngine(
            tiny_dataset, decomp, lr=LR
        ).batch_size == 7


class TestOnDiskVsInMemory:
    def test_gd_synchronous(
        self, tiny_dataset, gd_sync_reference, store_path
    ):
        streamed = gd(
            data_source=store_path, batch_size=3, prefetch=True
        ).reconstruct(tiny_dataset)
        assert_results_identical(gd_sync_reference, streamed)

    def test_gd_alg1(self, tiny_dataset, store_path):
        reference = gd(mode="alg1").reconstruct(tiny_dataset)
        streamed = gd(mode="alg1", data_source=store_path).reconstruct(
            tiny_dataset
        )
        assert_results_identical(reference, streamed)

    def test_hve(self, tiny_dataset, store_path):
        reference = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR
        ).reconstruct(tiny_dataset)
        streamed = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR,
            data_source=store_path, prefetch=True,
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, streamed)

    def test_serial(self, tiny_dataset, store_path):
        reference = SerialReconstructor(
            iterations=ITERS, lr=LR
        ).reconstruct(tiny_dataset)
        streamed = SerialReconstructor(
            iterations=ITERS, lr=LR,
            data_source=store_path, batch_size=4,
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, streamed)

    def test_streaming_shrinks_measured_memory(
        self, tiny_dataset, store_path
    ):
        # Same numerics (asserted elsewhere) but the measurement shard
        # no longer sits in the peak: the serial solver pins all 9
        # frames in-memory, while the chunked store is accounted at its
        # bounded cache (2 chunks x 4 frames < 9 frames).
        pinned = SerialReconstructor(
            iterations=1, lr=LR
        ).reconstruct(tiny_dataset)
        streamed = SerialReconstructor(
            iterations=1, lr=LR, data_source=store_path
        ).reconstruct(tiny_dataset)
        assert streamed.peak_memory_mean < pinned.peak_memory_mean


class TestProcessExecutorParity:
    def test_gd_batched_ondisk_under_process(
        self, tiny_dataset, gd_sync_reference, store_path
    ):
        streamed = gd(
            data_source=store_path,
            batch_size=3,
            executor="process",
            runtime_workers=2,
        ).reconstruct(tiny_dataset)
        assert_results_identical(gd_sync_reference, streamed)

    def test_store_instance_under_process_forks_safely(
        self, tiny_dataset, gd_sync_reference, store_path
    ):
        # A caller-supplied *instance* with an open handle: forked
        # workers must re-open their own (worker_copy), never share
        # the parent's file descriptor.
        from repro.data import ChunkedNpzStore

        store = ChunkedNpzStore(store_path)
        store.read(0)  # open the parent-side handle
        try:
            streamed = gd(
                data_source=store,
                batch_size=2,
                executor="process",
                runtime_workers=2,
            ).reconstruct(tiny_dataset)
        finally:
            store.close()
        assert_results_identical(gd_sync_reference, streamed)

    @pytest.mark.slow
    @pytest.mark.parametrize("batch_size", [1, 2, 64])
    @pytest.mark.parametrize("data_source", ["memory", "store"])
    def test_gd_sweep_under_process(
        self,
        tiny_dataset,
        gd_sync_reference,
        store_path,
        batch_size,
        data_source,
    ):
        streamed = gd(
            data_source=(
                store_path if data_source == "store" else None
            ),
            batch_size=batch_size,
            executor="process",
            runtime_workers=2,
        ).reconstruct(tiny_dataset)
        assert_results_identical(gd_sync_reference, streamed)

    @pytest.mark.slow
    def test_hve_ondisk_under_process(self, tiny_dataset, store_path):
        reference = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR
        ).reconstruct(tiny_dataset)
        streamed = HaloExchangeReconstructor(
            n_ranks=4, iterations=ITERS, lr=LR,
            data_source=store_path,
            executor="process", runtime_workers=2,
        ).reconstruct(tiny_dataset)
        assert_results_identical(reference, streamed)
