"""BatchPlanner unit tests + REPRO_BATCH_SIZE resolution precedence."""

from __future__ import annotations

import pytest

from repro.core.decomposition import decompose_gradient
from repro.data import (
    ENV_BATCH_SIZE,
    BatchPlanner,
    default_batch_size,
    resolve_batch_size,
)


class TestBatchPlanner:
    def test_plan_preserves_order_and_bounds(self):
        planner = BatchPlanner(4)
        batches = planner.plan(list(range(10)))
        assert batches == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
        assert planner.n_batches(10) == 3

    def test_batch_one_is_per_position(self):
        planner = BatchPlanner(1)
        assert planner.plan([7, 3, 5]) == [(7,), (3,), (5,)]

    def test_oversized_batch_is_single(self):
        planner = BatchPlanner(100)
        assert planner.plan([1, 2, 3]) == [(1, 2, 3)]

    def test_empty_input_plans_nothing(self):
        planner = BatchPlanner(4)
        assert planner.plan([]) == []
        assert planner.n_batches(0) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchPlanner(0)
        with pytest.raises(ValueError, match="batch_size"):
            BatchPlanner(-3)

    def test_plan_tiles_covers_every_owned_probe(self, tiny_dataset):
        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, n_ranks=4
        )
        plans = BatchPlanner(2).plan_tiles(decomp)
        assert set(plans) == {t.rank for t in decomp.tiles}
        for tile in decomp.tiles:
            flattened = tuple(
                i for batch in plans[tile.rank] for i in batch
            )
            assert flattened == tile.probes


class TestBatchSizeResolution:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_BATCH_SIZE, raising=False)
        assert default_batch_size() == 1
        assert resolve_batch_size(None) == 1

    def test_env_fills_ambient(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCH_SIZE, "8")
        assert resolve_batch_size(None) == 8

    def test_explicit_beats_env(self, monkeypatch):
        # The backend/executor precedence contract, data edition.
        monkeypatch.setenv(ENV_BATCH_SIZE, "8")
        assert resolve_batch_size(3) == 3

    @pytest.mark.parametrize("raw", ["zero", "", "0", "-2", "1.5"])
    def test_env_garbage_is_loud(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_BATCH_SIZE, raw)
        with pytest.raises(ValueError, match=ENV_BATCH_SIZE):
            resolve_batch_size(None)

    def test_explicit_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            resolve_batch_size(0)
