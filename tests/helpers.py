"""Test-side reference implementations.

``ReferenceBufferExecutor`` re-implements the BufferExchange/AllReduce
semantics in ~30 independent lines so the engine and the planners can be
checked against a second, simpler interpretation of the same schedule.

``result_fingerprint`` / ``assert_results_identical`` are the shared
vocabulary of the streaming parity suite (``tests/data``) and the golden
regression suite (``tests/golden``): a reconstruction is reduced to
SHA-256 digests of its exact bytes plus its traffic counters, so "these
two runs are identical" and "this run still matches the committed
golden" are literally the same comparison.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from repro.core.decomposition import Decomposition
from repro.core.reconstructor import ReconstructionResult
from repro.schedule.ops import (
    AllReduceGradient,
    Barrier,
    BufferExchange,
    Schedule,
)


def array_sha256(array: np.ndarray) -> str:
    """SHA-256 of an array's exact bytes, prefixed with dtype/shape so
    a reshaped or recast array never collides with the original."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(f"{array.dtype.str}:{array.shape}:".encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def result_fingerprint(result: ReconstructionResult) -> Dict[str, object]:
    """Bit-exact identity of a reconstruction: volume/history digests
    plus the communication counters (peak memory deliberately excluded —
    it measures *where bytes live*, which streaming exists to change)."""
    fp = {
        "volume_sha256": array_sha256(result.volume),
        "history_sha256": array_sha256(
            np.asarray(result.history, dtype=np.float64)
        ),
        "messages": int(result.messages),
        "message_bytes": int(result.message_bytes),
        "n_iterations": int(result.n_iterations),
    }
    if result.probe is not None:
        fp["probe_sha256"] = array_sha256(result.probe)
    return fp


def assert_results_identical(
    reference: ReconstructionResult, candidate: ReconstructionResult
) -> None:
    """Assert two reconstructions are fingerprint-identical, with an
    array-level diff on failure (far more debuggable than hash text)."""
    np.testing.assert_array_equal(reference.volume, candidate.volume)
    assert reference.history == candidate.history
    fp_ref = result_fingerprint(reference)
    fp_new = result_fingerprint(candidate)
    assert fp_ref == fp_new


class ReferenceBufferExecutor:
    """Minimal add/replace interpreter over per-rank buffers.

    Implements the same snapshot semantics as the engine for
    direct-neighbour exchanges (tag ``TAG_NEIGHBOR``): pairwise symmetric
    adds must read pre-exchange values.
    """

    def __init__(self, decomp: Decomposition, buffers: List[np.ndarray]) -> None:
        if len(buffers) != decomp.n_ranks:
            raise ValueError("one buffer per rank required")
        self.decomp = decomp
        self.buffers = buffers

    def run(self, schedule: Schedule) -> None:
        from repro.core.passes import TAG_NEIGHBOR

        snapshots: Dict[int, np.ndarray] = {}
        for op in schedule:
            if isinstance(op, BufferExchange):
                src_t = self.decomp.tile(op.src)
                dst_t = self.decomp.tile(op.dst)
                s = op.region.slices_in(src_t.ext)
                d = op.region.slices_in(dst_t.ext)
                if op.tag == TAG_NEIGHBOR:
                    if op.src not in snapshots:
                        snapshots[op.src] = self.buffers[op.src].copy()
                    if op.dst not in snapshots:
                        snapshots[op.dst] = self.buffers[op.dst].copy()
                    source = snapshots[op.src]
                else:
                    source = self.buffers[op.src]
                payload = source[(Ellipsis, *s)].copy()
                if op.mode == "add":
                    self.buffers[op.dst][(Ellipsis, *d)] += payload
                else:
                    self.buffers[op.dst][(Ellipsis, *d)] = payload
            elif isinstance(op, AllReduceGradient):
                total = self.global_sum()
                for rank, tile in enumerate(self.decomp.tiles):
                    sl = tile.ext.slices_in(self.decomp.bounds)
                    self.buffers[rank][...] = total[(Ellipsis, *sl)]
            elif isinstance(op, Barrier):
                continue
            else:
                raise TypeError(f"unsupported op {type(op).__name__}")

    def global_sum(self) -> np.ndarray:
        """Sum of all buffers scattered into the full image frame."""
        bounds = self.decomp.bounds
        lead = self.buffers[0].shape[:-2]
        total = np.zeros(
            (*lead, bounds.height, bounds.width), dtype=self.buffers[0].dtype
        )
        for rank, tile in enumerate(self.decomp.tiles):
            sl = tile.ext.slices_in(bounds)
            total[(Ellipsis, *sl)] += self.buffers[rank]
        return total


def random_buffers(
    decomp: Decomposition, rng: np.random.Generator, lead: tuple = ()
) -> List[np.ndarray]:
    """One random buffer per rank, shaped to its extended tile."""
    return [
        rng.normal(size=(*lead, t.ext.height, t.ext.width))
        for t in decomp.tiles
    ]
