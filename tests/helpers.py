"""Test-side reference implementations.

``ReferenceBufferExecutor`` re-implements the BufferExchange/AllReduce
semantics in ~30 independent lines so the engine and the planners can be
checked against a second, simpler interpretation of the same schedule.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.decomposition import Decomposition
from repro.schedule.ops import (
    AllReduceGradient,
    Barrier,
    BufferExchange,
    Schedule,
)


class ReferenceBufferExecutor:
    """Minimal add/replace interpreter over per-rank buffers.

    Implements the same snapshot semantics as the engine for
    direct-neighbour exchanges (tag ``TAG_NEIGHBOR``): pairwise symmetric
    adds must read pre-exchange values.
    """

    def __init__(self, decomp: Decomposition, buffers: List[np.ndarray]) -> None:
        if len(buffers) != decomp.n_ranks:
            raise ValueError("one buffer per rank required")
        self.decomp = decomp
        self.buffers = buffers

    def run(self, schedule: Schedule) -> None:
        from repro.core.passes import TAG_NEIGHBOR

        snapshots: Dict[int, np.ndarray] = {}
        for op in schedule:
            if isinstance(op, BufferExchange):
                src_t = self.decomp.tile(op.src)
                dst_t = self.decomp.tile(op.dst)
                s = op.region.slices_in(src_t.ext)
                d = op.region.slices_in(dst_t.ext)
                if op.tag == TAG_NEIGHBOR:
                    if op.src not in snapshots:
                        snapshots[op.src] = self.buffers[op.src].copy()
                    if op.dst not in snapshots:
                        snapshots[op.dst] = self.buffers[op.dst].copy()
                    source = snapshots[op.src]
                else:
                    source = self.buffers[op.src]
                payload = source[(Ellipsis, *s)].copy()
                if op.mode == "add":
                    self.buffers[op.dst][(Ellipsis, *d)] += payload
                else:
                    self.buffers[op.dst][(Ellipsis, *d)] = payload
            elif isinstance(op, AllReduceGradient):
                total = self.global_sum()
                for rank, tile in enumerate(self.decomp.tiles):
                    sl = tile.ext.slices_in(self.decomp.bounds)
                    self.buffers[rank][...] = total[(Ellipsis, *sl)]
            elif isinstance(op, Barrier):
                continue
            else:
                raise TypeError(f"unsupported op {type(op).__name__}")

    def global_sum(self) -> np.ndarray:
        """Sum of all buffers scattered into the full image frame."""
        bounds = self.decomp.bounds
        lead = self.buffers[0].shape[:-2]
        total = np.zeros(
            (*lead, bounds.height, bounds.width), dtype=self.buffers[0].dtype
        )
        for rank, tile in enumerate(self.decomp.tiles):
            sl = tile.ext.slices_in(bounds)
            total[(Ellipsis, *sl)] += self.buffers[rank]
        return total


def random_buffers(
    decomp: Decomposition, rng: np.random.Generator, lead: tuple = ()
) -> List[np.ndarray]:
    """One random buffer per rank, shaped to its extended tile."""
    return [
        rng.normal(size=(*lead, t.ext.height, t.ext.width))
        for t in decomp.tiles
    ]
