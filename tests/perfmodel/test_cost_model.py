"""Calibrated cost model."""

import pytest

from repro.core.decomposition import decompose_gradient
from repro.parallel.topology import MeshLayout
from repro.perfmodel.cost_model import SummitCostModel, multislice_flops
from repro.perfmodel.machine import SUMMIT
from repro.physics.dataset import large_pbtio3_spec
from repro.physics.scan import RasterScan


@pytest.fixture(scope="module")
def setup():
    spec = large_pbtio3_spec()
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
    decomp_small = decompose_gradient(
        scan, spec.object_shape, mesh=MeshLayout(2, 3), halo=60
    )
    decomp_large = decompose_gradient(
        scan, spec.object_shape, mesh=MeshLayout(63, 66), halo=60
    )
    return spec, decomp_small, decomp_large


class TestFlops:
    def test_scales_with_slices(self):
        assert multislice_flops(1024, 100) > 40 * multislice_flops(1024, 2)

    def test_nlogn_in_window(self):
        small = multislice_flops(256, 10)
        large = multislice_flops(1024, 10)
        assert large / small > 16  # super-linear in area


class TestProbeSeconds:
    def test_paper_calibration_at_6_gpus(self, setup):
        """Table III(a): 5543 min / 100 iterations / 2772 probes ~= 1.2 s
        per probe at the 6-GPU working set."""
        spec, decomp6, _ = setup
        costs = SummitCostModel(spec, decomp6, SUMMIT)
        t = costs.probe_seconds(0) / SUMMIT.speed_factor(0)
        assert 0.8 < t < 1.6

    def test_paper_calibration_at_4158_gpus(self, setup):
        """2.2 min / 100 iterations / 4 probes ~= 0.33 s per probe."""
        spec, _, decomp4158 = setup
        costs = SummitCostModel(spec, decomp4158, SUMMIT)
        t = costs.probe_seconds(0) / SUMMIT.speed_factor(0)
        assert 0.15 < t < 0.45

    def test_superlinear_ratio(self, setup):
        spec, decomp6, decomp4158 = setup
        c6 = SummitCostModel(spec, decomp6, SUMMIT)
        c4158 = SummitCostModel(spec, decomp4158, SUMMIT)
        ratio = (c6.probe_seconds(0) / SUMMIT.speed_factor(0)) / (
            c4158.probe_seconds(0) / SUMMIT.speed_factor(0)
        )
        assert ratio > 2.5

    def test_gradient_seconds_linear_in_probes(self, setup):
        spec, decomp6, _ = setup
        costs = SummitCostModel(spec, decomp6, SUMMIT)
        assert costs.gradient_seconds(0, 10) == pytest.approx(
            10 * costs.gradient_seconds(0, 1)
        )


class TestMessageSizes:
    def test_exchange_bytes_complex64(self, setup):
        spec, decomp6, _ = setup
        costs = SummitCostModel(spec, decomp6, SUMMIT)
        assert costs.exchange_bytes(1000) == pytest.approx(
            1000 * spec.n_slices * 8.0
        )

    def test_allreduce_is_full_volume(self, setup):
        spec, decomp6, _ = setup
        costs = SummitCostModel(spec, decomp6, SUMMIT)
        assert costs.allreduce_bytes() == pytest.approx(
            3072 * 3072 * 100 * 8.0
        )

    def test_round_factors(self, setup):
        spec, decomp6, _ = setup
        base = SummitCostModel(spec, decomp6, SUMMIT)
        relayed = SummitCostModel(
            spec, decomp6, SUMMIT, comm_round_factor=2.0,
            compute_round_factor=1.5,
        )
        assert relayed.exchange_bytes(100) == pytest.approx(
            2 * base.exchange_bytes(100)
        )
        assert relayed.gradient_seconds(0, 4) == pytest.approx(
            1.5 * base.gradient_seconds(0, 4)
        )

    def test_round_factor_validation(self, setup):
        spec, decomp6, _ = setup
        with pytest.raises(ValueError):
            SummitCostModel(spec, decomp6, SUMMIT, comm_round_factor=0.5)

    def test_update_and_apply_positive(self, setup):
        spec, decomp6, _ = setup
        costs = SummitCostModel(spec, decomp6, SUMMIT)
        assert costs.update_seconds(0) > 0
        assert costs.apply_seconds(100) > 0
