"""Machine model and calibration constants."""

import pytest

from repro.perfmodel.machine import SUMMIT, MachineSpec


class TestMachineSpec:
    def test_summit_shape(self):
        assert SUMMIT.gpus_per_node == 6
        assert SUMMIT.gpu_memory_bytes == pytest.approx(16e9)

    def test_links(self):
        assert SUMMIT.intra_link().bandwidth_bytes_per_s > (
            SUMMIT.inter_link().bandwidth_bytes_per_s
        )
        assert SUMMIT.collective_link().bandwidth_bytes_per_s < (
            SUMMIT.inter_link().bandwidth_bytes_per_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(effective_flops=0)
        with pytest.raises(ValueError):
            MachineSpec(gpu_memory_bytes=-1)
        with pytest.raises(ValueError):
            MachineSpec(speed_jitter=1.0)


class TestPressureFactor:
    def test_floor_is_one(self):
        assert SUMMIT.pressure_factor(0.0) >= 1.0
        assert SUMMIT.pressure_factor(0.0) < 1.1

    def test_monotone_in_working_set(self):
        sizes = [0.1e9, 1e9, 5e9, 9e9, 15e9]
        factors = [SUMMIT.pressure_factor(s) for s in sizes]
        assert factors == sorted(factors)

    def test_saturates(self):
        assert SUMMIT.pressure_factor(100e9) <= 1.0 + SUMMIT.pressure_amplitude

    def test_calibrated_superlinearity(self):
        """The 6-GPU large-dataset working set (~9 GB) must run several
        times slower per probe than the 4158-GPU one (~0.2 GB) — the
        driver of the paper's 364% efficiency."""
        ratio = SUMMIT.pressure_factor(9e9) / SUMMIT.pressure_factor(0.2e9)
        assert 3.0 < ratio < 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SUMMIT.pressure_factor(-1.0)


class TestSpeedFactor:
    def test_bounded_by_jitter(self):
        for rank in range(200):
            f = SUMMIT.speed_factor(rank)
            assert 1 - SUMMIT.speed_jitter <= f <= 1 + SUMMIT.speed_jitter

    def test_deterministic(self):
        assert SUMMIT.speed_factor(17) == SUMMIT.speed_factor(17)

    def test_heterogeneous(self):
        factors = {round(SUMMIT.speed_factor(r), 6) for r in range(50)}
        assert len(factors) > 25

    def test_mean_near_one(self):
        import numpy as np

        mean = np.mean([SUMMIT.speed_factor(r) for r in range(1000)])
        assert mean == pytest.approx(1.0, abs=0.02)
