"""Full-scale predictor: the shapes of Tables II/III and Fig. 7.

These tests encode the reproduction contract — who wins, by roughly what
factor, where crossovers fall — at the paper's actual scales.
"""

import pytest

from repro.perfmodel.predictor import NA, PerformancePredictor
from repro.physics.dataset import large_pbtio3_spec, small_pbtio3_spec


@pytest.fixture(scope="module")
def small():
    return PerformancePredictor(small_pbtio3_spec())


@pytest.fixture(scope="module")
def large():
    return PerformancePredictor(large_pbtio3_spec())


@pytest.fixture(scope="module")
def table3_gd(large):
    return large.sweep([6, 54, 198, 462, 924, 4158], "gd")


@pytest.fixture(scope="module")
def table3_hve(large):
    return large.sweep([6, 54, 198, 462, 924], "hve")


@pytest.fixture(scope="module")
def table2_gd(small):
    return small.sweep([6, 24, 54, 126, 198, 462], "gd")


@pytest.fixture(scope="module")
def table2_hve(small):
    return small.sweep([6, 24, 54, 126], "hve")


class TestTable3GD:
    def test_all_feasible_to_4158(self, table3_gd):
        assert all(r.feasible for r in table3_gd)

    def test_memory_band_matches_paper(self, table3_gd):
        paper = {6: 9.14, 54: 1.54, 198: 0.66, 462: 0.42, 924: 0.32, 4158: 0.18}
        for row in table3_gd:
            assert float(row.memory_gb) == pytest.approx(
                paper[row.gpus], rel=0.45
            )

    def test_runtime_band_matches_paper(self, table3_gd):
        paper = {6: 5543.0, 54: 183.0, 198: 37.5, 462: 14.2, 924: 7.0, 4158: 2.2}
        for row in table3_gd:
            assert float(row.runtime_min) == pytest.approx(
                paper[row.gpus], rel=0.6
            )

    def test_runtime_monotone_decreasing(self, table3_gd):
        times = [float(r.runtime_min) for r in table3_gd]
        assert times == sorted(times, reverse=True)

    def test_superlinear_midrange(self, table3_gd):
        """Paper: 336-518% efficiency between 54 and 924 GPUs."""
        for row in table3_gd:
            if row.gpus in (54, 198, 462, 924):
                assert float(row.efficiency_pct) > 150.0

    def test_headline_memory_reduction(self, table3_gd):
        """Paper abstract: 51x memory reduction (6 -> 4158 GPUs)."""
        first = float(table3_gd[0].memory_gb)
        last = float(table3_gd[-1].memory_gb)
        assert 25 < first / last < 100

    def test_near_real_time_at_full_scale(self, table3_gd):
        """Paper: 2.2 minutes at 4158 GPUs."""
        assert float(table3_gd[-1].runtime_min) < 6.0


class TestTable3HVE:
    def test_na_beyond_462(self, table3_hve):
        by_gpus = {r.gpus: r for r in table3_hve}
        assert by_gpus[462].feasible
        assert not by_gpus[924].feasible

    def test_slower_than_gd_everywhere(self, table3_gd, table3_hve):
        gd = {r.gpus: float(r.runtime_min) for r in table3_gd}
        for row in table3_hve:
            if row.feasible and row.gpus in gd:
                assert float(row.runtime_min) > gd[row.gpus]

    def test_more_memory_than_gd(self, table3_gd, table3_hve):
        gd = {r.gpus: float(r.memory_gb) for r in table3_gd}
        for row in table3_hve:
            if row.feasible and row.gpus in gd:
                assert float(row.memory_gb) > 0.8 * gd[row.gpus]

    def test_scaling_stalls_at_462(self, table3_hve):
        """The paper's blow-up: 462 GPUs is NOT faster than 198."""
        by_gpus = {r.gpus: r for r in table3_hve}
        assert float(by_gpus[462].runtime_min) > 0.8 * float(
            by_gpus[198].runtime_min
        )

    def test_headline_scalability_factor(self, table3_gd, table3_hve):
        """Paper abstract: 9x more scalable (4158 vs 462)."""
        gd_max = max(r.gpus for r in table3_gd if r.feasible)
        hve_max = max(r.gpus for r in table3_hve if r.feasible)
        assert gd_max / hve_max == pytest.approx(9.0, rel=0.01)


class TestTable2:
    def test_gd_scales_to_462(self, table2_gd):
        assert all(r.feasible for r in table2_gd)

    def test_gd_memory_band(self, table2_gd):
        paper = {6: 2.53, 24: 1.20, 54: 0.58, 126: 0.39, 198: 0.31, 462: 0.23}
        for row in table2_gd:
            assert float(row.memory_gb) == pytest.approx(
                paper[row.gpus], rel=0.45
            )

    def test_gd_runtime_at_6(self, table2_gd):
        assert float(table2_gd[0].runtime_min) == pytest.approx(360, rel=0.3)

    def test_hve_na_at_126(self, table2_hve):
        """Paper Table II(b): works to 54 GPUs, NA at 126."""
        by_gpus = {r.gpus: r for r in table2_hve}
        assert by_gpus[54].feasible
        assert not by_gpus[126].feasible

    def test_hve_slower_than_gd(self, table2_gd, table2_hve):
        gd = {r.gpus: float(r.runtime_min) for r in table2_gd}
        for row in table2_hve:
            if row.feasible:
                assert float(row.runtime_min) > gd[row.gpus]


class TestBreakdowns:
    def test_gd_breakdown_populated(self, large):
        row = large.gd_row(54)
        assert float(row.compute_min) > 0
        assert float(row.wait_min) >= 0
        assert float(row.comm_min) >= 0

    def test_wait_decreases_with_scale(self, large):
        """Fig. 7b: waiting shrinks as GPUs increase."""
        w24 = float(large.gd_row(24).wait_min)
        w462 = float(large.gd_row(462).wait_min)
        assert w462 < w24

    def test_allreduce_comm_dominates_at_462(self, large):
        """Fig. 7b w/o APPP: communication rivals or exceeds compute."""
        report = large.gd_report(462, planner="allreduce")
        assert report.mean("comm_s") > report.mean("compute_s")

    def test_appp_comm_negligible_at_462(self, large):
        report = large.gd_report(462, planner="appp")
        assert report.mean("comm_s") < 0.15 * report.mean("compute_s")

    def test_appp_vs_allreduce_comm_ratio(self, large):
        """Paper: 16x less comm with APPP; we require >= 10x."""
        appp = large.gd_report(462, planner="appp").mean("comm_s")
        allr = large.gd_report(462, planner="allreduce").mean("comm_s")
        assert allr / max(appp, 1e-12) > 10.0


class TestInterfaces:
    def test_sweep_unknown_algorithm(self, small):
        with pytest.raises(ValueError):
            small.sweep([6], "warp")

    def test_hve_feasibility_fields(self, small):
        feas = small.hve_feasibility(54)
        assert set(feas) >= {"feasible", "min_tile_dim", "hops"}
        assert feas["hops"] >= 1

    def test_efficiency_anchored_at_first_row(self, table3_gd):
        assert float(table3_gd[0].efficiency_pct) == pytest.approx(100.0)
