"""Analytic memory model + cross-validation against the numeric engine."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.core.engine import NumericEngine
from repro.parallel.topology import MeshLayout
from repro.perfmodel.machine import SUMMIT
from repro.perfmodel.memory_model import MemoryBreakdown, MemoryModel
from repro.physics.dataset import large_pbtio3_spec, small_pbtio3_spec
from repro.physics.scan import RasterScan


class TestBreakdown:
    def test_total_sums_components(self):
        b = MemoryBreakdown(1, 2, 3, 4, 5, 6)
        assert b.total == 21
        assert sum(b.as_dict().values()) == 21


@pytest.fixture(scope="module")
def large_decomp_4158():
    spec = large_pbtio3_spec()
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
    return spec, decompose_gradient(
        scan, spec.object_shape, mesh=MeshLayout(63, 66), halo=60
    )


class TestFullScale:
    def test_table3_memory_shape(self, large_decomp_4158):
        """At 4158 GPUs the paper reports 0.18 GB/GPU; we must land in
        the same band."""
        spec, decomp = large_decomp_4158
        model = MemoryModel(spec, SUMMIT)
        mean_gb = model.mean_bytes(decomp) / 1e9
        assert 0.1 < mean_gb < 0.3

    def test_measurements_dominate_at_small_scale(self):
        spec = large_pbtio3_spec()
        scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
        decomp = decompose_gradient(
            scan, spec.object_shape, mesh=MeshLayout(2, 3), halo=60
        )
        model = MemoryModel(spec, SUMMIT)
        b = model.rank_breakdown(decomp, 0)
        assert b.measurements > b.volume

    def test_memory_monotone_decreasing_in_ranks(self):
        spec = small_pbtio3_spec()
        scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
        model = MemoryModel(spec, SUMMIT)
        means = []
        for mesh in (MeshLayout(2, 3), MeshLayout(6, 9), MeshLayout(21, 22)):
            decomp = decompose_gradient(
                scan, spec.object_shape, mesh=mesh, halo=60
            )
            means.append(model.mean_bytes(decomp))
        assert means[0] > means[1] > means[2]

    def test_max_at_least_mean(self, large_decomp_4158):
        spec, decomp = large_decomp_4158
        model = MemoryModel(spec, SUMMIT)
        assert model.max_bytes(decomp) >= model.mean_bytes(decomp)

    def test_working_set_excludes_fixed(self, large_decomp_4158):
        spec, decomp = large_decomp_4158
        model = MemoryModel(spec, SUMMIT)
        b = model.rank_breakdown(decomp, 0)
        assert model.working_set_bytes(decomp, 0) == pytest.approx(
            b.total - b.fixed
        )

    def test_no_gradient_buffer_option(self, large_decomp_4158):
        spec, decomp = large_decomp_4158
        with_buf = MemoryModel(spec, SUMMIT).mean_bytes(decomp)
        without = MemoryModel(
            spec, SUMMIT, needs_gradient_buffer=False
        ).mean_bytes(decomp)
        assert without < with_buf


class TestCrossValidation:
    """The analytic model must match the numeric engine's *measured*
    allocations when parameterized with the engine's dtypes — this is what
    lets us trust the full-scale numbers."""

    def test_matches_engine_allocations(self, tiny_dataset, tiny_lr):
        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, mesh=MeshLayout(2, 2)
        )
        engine = NumericEngine(tiny_dataset, decomp, lr=tiny_lr)
        model = MemoryModel(
            tiny_dataset.spec,
            SUMMIT,
            measurement_itemsize=np.dtype(
                tiny_dataset.spec.measurement_dtype
            ).itemsize,
            volume_itemsize=16,  # engine runs complex128
            include_fixed=False,
        )
        for rank in range(decomp.n_ranks):
            measured = engine.memory.breakdown(rank)
            predicted = model.rank_breakdown(decomp, rank)
            assert predicted.volume == measured["volume"]
            assert predicted.gradient_buffer == measured["accbuf"]
            assert predicted.measurements == measured["measurements"]
            # probe dtype: engine stores complex128 probe
            assert predicted.probe == measured["probe"]

    def test_engine_total_within_model_envelope(self, tiny_dataset, tiny_lr):
        """Engine peak (no workspace modeling) <= model total."""
        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, mesh=MeshLayout(2, 2)
        )
        engine = NumericEngine(tiny_dataset, decomp, lr=tiny_lr)
        model = MemoryModel(
            tiny_dataset.spec,
            SUMMIT,
            measurement_itemsize=2,
            volume_itemsize=16,
            include_fixed=False,
        )
        for rank in range(decomp.n_ranks):
            assert engine.memory.peak_bytes(rank) <= model.rank_breakdown(
                decomp, rank
            ).total
