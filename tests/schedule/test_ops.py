"""Schedule IR."""

import pytest

from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    LocalSolve,
    ResetBuffer,
    Schedule,
    VoxelPaste,
)
from repro.utils.geometry import Rect


class TestOps:
    def test_compute_ranks(self):
        op = ComputeGradients(rank=3, probe_indices=(1, 2))
        assert op.ranks() == (3,)

    def test_exchange_ranks_and_mode(self):
        op = BufferExchange(src=0, dst=1, region=Rect(0, 2, 0, 2))
        assert op.ranks() == (0, 1)
        assert op.mode == "add"
        assert op.message_voxels == 4

    def test_exchange_mode_validation(self):
        with pytest.raises(ValueError):
            BufferExchange(src=0, dst=1, region=Rect(0, 1, 0, 1), mode="xor")

    def test_collective_ranks(self):
        assert AllReduceGradient(n_ranks=3).ranks() == (0, 1, 2)
        assert Barrier(n_ranks=2).ranks() == (0, 1)


class TestSchedule:
    def test_uids_sequential(self):
        s = Schedule(2)
        a = s.add(ComputeGradients(rank=0, probe_indices=(0,)))
        b = s.add(ComputeGradients(rank=1, probe_indices=(1,)))
        assert (a, b) == (0, 1)
        assert len(s) == 2

    def test_deps_recorded_and_validated(self):
        s = Schedule(2)
        a = s.add(ComputeGradients(rank=0, probe_indices=(0,)))
        b = s.add(
            BufferExchange(src=0, dst=1, region=Rect(0, 1, 0, 1)), deps=[a]
        )
        assert s[b].deps == [a]
        s.validate()

    def test_future_dep_rejected(self):
        s = Schedule(2)
        with pytest.raises(ValueError):
            s.add(ComputeGradients(rank=0, probe_indices=(0,)), deps=[5])

    def test_rank_out_of_range_rejected(self):
        s = Schedule(2)
        with pytest.raises(ValueError):
            s.add(ComputeGradients(rank=2, probe_indices=(0,)))

    def test_rank_program_filters_in_order(self):
        s = Schedule(3)
        s.add(ComputeGradients(rank=0, probe_indices=(0,)))
        s.add(BufferExchange(src=0, dst=1, region=Rect(0, 1, 0, 1)))
        s.add(ComputeGradients(rank=2, probe_indices=(1,)))
        s.add(ApplyBufferUpdate(rank=0, lr=0.1))
        program = s.rank_program(0)
        assert [type(op).__name__ for op in program] == [
            "ComputeGradients",
            "BufferExchange",
            "ApplyBufferUpdate",
        ]

    def test_counts(self):
        s = Schedule(2)
        s.add(ComputeGradients(rank=0, probe_indices=(0,)))
        s.add(ComputeGradients(rank=1, probe_indices=(1,)))
        s.add(ResetBuffer(rank=0))
        assert s.counts() == {"ComputeGradients": 2, "ResetBuffer": 1}

    def test_message_stats(self):
        s = Schedule(2)
        s.add(BufferExchange(src=0, dst=1, region=Rect(0, 2, 0, 3)))
        s.add(VoxelPaste(src=1, dst=0, region=Rect(0, 1, 0, 4)))
        n, total = s.message_stats(bytes_per_pixel=8.0)
        assert n == 2
        assert total == pytest.approx((6 + 4) * 8.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Schedule(0)

    def test_local_solve_all_probes(self):
        op = LocalSolve(rank=1, probe_indices=(5, 6, 7), lr=0.2)
        assert op.ranks() == (1,)
        assert len(op.probe_indices) == 3
