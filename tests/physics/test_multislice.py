"""The multislice forward operator and its adjoint gradient.

The finite-difference gradient checks here are the numerical foundation of
the whole reproduction: every distributed algorithm consumes these
gradients.
"""

import numpy as np
import pytest

from repro.physics.multislice import MultisliceModel, probe_gradient
from repro.physics.probe import ProbeSpec, make_probe


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(42)
    n, slices = 12, 3
    model = MultisliceModel(
        window=n,
        n_slices=slices,
        pixel_size_pm=10.0,
        wavelength_pm=2.508,
        slice_thickness_pm=125.0,
    )
    probe = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    probe /= np.sqrt(np.sum(np.abs(probe) ** 2))
    obj = np.exp(1j * 0.3 * rng.normal(size=(slices, n, n)))
    target_obj = obj * np.exp(1j * 0.15 * rng.normal(size=(slices, n, n)))
    measured = model.forward_amplitude(probe, target_obj)
    return model, probe, obj, measured, rng


class TestForward:
    def test_output_shape(self, setup):
        model, probe, obj, *_ = setup
        assert model.forward(probe, obj).shape == (12, 12)

    def test_vacuum_object_passes_probe(self, setup):
        """O == 1 everywhere: the far field is just FFT of the propagated
        probe, so its total intensity equals the probe's."""
        model, probe, *_ = setup
        vacuum = np.ones((model.n_slices, 12, 12), dtype=complex)
        far = model.forward(probe, vacuum)
        # Band-limited propagation can only remove energy; a white-noise
        # probe keeps roughly the in-band fraction (~pi/9 of the square).
        assert np.sum(np.abs(far) ** 2) <= 1.0 + 1e-9
        assert np.sum(np.abs(far) ** 2) > 0.2

    def test_cost_zero_at_ground_truth(self, setup):
        model, probe, obj, measured, rng = setup
        target = obj * np.exp(
            1j * 0.15 * np.random.default_rng(42).normal(size=obj.shape)
        )
        # measured was generated from a specific target; evaluating cost at
        # any object that reproduces |Psi| gives ~0; here check self-cost.
        amp = model.forward_amplitude(probe, obj)
        assert model.cost_only(probe, obj, amp) == pytest.approx(0.0, abs=1e-18)

    def test_cost_positive_off_truth(self, setup):
        model, probe, obj, measured, _ = setup
        assert model.cost_only(probe, obj, measured) > 0

    def test_shape_validation(self, setup):
        model, probe, obj, measured, _ = setup
        with pytest.raises(ValueError):
            model.forward(probe, obj[:, :6, :6])
        with pytest.raises(ValueError):
            model.cost_and_gradient(probe, obj, measured[:6, :6])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MultisliceModel(0, 3, 10.0, 2.5, 125.0)
        with pytest.raises(ValueError):
            MultisliceModel(8, 0, 10.0, 2.5, 125.0)


class TestGradient:
    def test_gradient_shape_and_cost(self, setup):
        model, probe, obj, measured, _ = setup
        res = model.cost_and_gradient(probe, obj, measured)
        assert res.object_grad.shape == obj.shape
        assert res.cost == pytest.approx(
            model.cost_only(probe, obj, measured), rel=1e-12
        )

    def test_finite_difference_object_gradient(self, setup):
        """The definitive correctness check (Wirtinger calculus):
        directional derivative along d is 2*Re(grad * conj(d))."""
        model, probe, obj, measured, _ = setup
        res = model.cost_and_gradient(probe, obj, measured)
        g = res.object_grad
        rng = np.random.default_rng(7)
        eps = 1e-6
        for _ in range(10):
            s = rng.integers(model.n_slices)
            r = rng.integers(model.window)
            c = rng.integers(model.window)
            for direction in (1.0, 1j):
                plus = obj.copy()
                plus[s, r, c] += eps * direction
                minus = obj.copy()
                minus[s, r, c] -= eps * direction
                fd = (
                    model.cost_only(probe, plus, measured)
                    - model.cost_only(probe, minus, measured)
                ) / (2 * eps)
                analytic = 2 * np.real(g[s, r, c] * np.conj(direction))
                assert analytic == pytest.approx(fd, rel=1e-4, abs=1e-10)

    def test_gradient_zero_at_optimum(self, setup):
        """At a perfect data fit the residual vanishes, so must the
        gradient."""
        model, probe, obj, *_ = setup
        amp = model.forward_amplitude(probe, obj)
        res = model.cost_and_gradient(probe, obj, amp)
        assert np.abs(res.object_grad).max() == pytest.approx(0.0, abs=1e-10)

    def test_descent_direction(self, setup):
        """A small step against the gradient decreases the cost."""
        model, probe, obj, measured, _ = setup
        res = model.cost_and_gradient(probe, obj, measured)
        step = 0.05 / max(np.abs(res.object_grad).max(), 1e-12)
        better = obj - step * res.object_grad
        assert model.cost_only(probe, better, measured) < res.cost

    def test_keep_exit_wave(self, setup):
        model, probe, obj, measured, _ = setup
        res = model.cost_and_gradient(
            probe, obj, measured, keep_exit_wave=True
        )
        assert res.exit_amplitude is not None
        np.testing.assert_allclose(
            res.exit_amplitude, model.forward_amplitude(probe, obj)
        )

    def test_finite_difference_probe_gradient(self, setup):
        model, probe, obj, measured, _ = setup
        g = probe_gradient(model, probe, obj, measured)
        rng = np.random.default_rng(11)
        eps = 1e-6
        for _ in range(6):
            r = rng.integers(model.window)
            c = rng.integers(model.window)
            for direction in (1.0, 1j):
                plus = probe.copy()
                plus[r, c] += eps * direction
                minus = probe.copy()
                minus[r, c] -= eps * direction
                fd = (
                    model.cost_only(plus, obj, measured)
                    - model.cost_only(minus, obj, measured)
                ) / (2 * eps)
                analytic = 2 * np.real(g[r, c] * np.conj(direction))
                assert analytic == pytest.approx(fd, rel=1e-4, abs=1e-10)


class TestSingleSlice:
    """n_slices=1 degenerates to classic 2-D ptychography (no propagation)."""

    def test_single_slice_forward(self):
        rng = np.random.default_rng(3)
        model = MultisliceModel(8, 1, 10.0, 2.508, 125.0)
        probe = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        obj = np.exp(1j * rng.normal(size=(1, 8, 8)))
        far = model.forward(probe, obj)
        from repro.utils.fftutils import fft2c

        np.testing.assert_allclose(far, fft2c(probe * obj[0]), atol=1e-12)

    def test_single_slice_gradient_closed_form(self):
        """With one slice, grad = conj(psi) * IFFT(residual * phase)."""
        rng = np.random.default_rng(4)
        model = MultisliceModel(8, 1, 10.0, 2.508, 125.0)
        probe = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        obj = np.exp(1j * 0.2 * rng.normal(size=(1, 8, 8)))
        measured = np.abs(
            model.forward(probe, obj * np.exp(1j * 0.1))
        ) + 0.1 * rng.random((8, 8))
        res = model.cost_and_gradient(probe, obj, measured)

        from repro.utils.fftutils import fft2c, ifft2c

        far = fft2c(probe * obj[0])
        amp = np.abs(far)
        chi = ifft2c((amp - measured) * far / (amp + 1e-12))
        np.testing.assert_allclose(
            res.object_grad[0], np.conj(probe) * chi, atol=1e-10
        )


class TestFlops:
    def test_flops_positive_and_monotone(self):
        small = MultisliceModel(8, 2, 10.0, 2.5, 125.0).flops_per_probe()
        large = MultisliceModel(16, 2, 10.0, 2.5, 125.0).flops_per_probe()
        deeper = MultisliceModel(8, 4, 10.0, 2.5, 125.0).flops_per_probe()
        assert 0 < small < large
        assert small < deeper

    def test_flops_match_cost_model_formula(self):
        from repro.perfmodel.cost_model import multislice_flops

        model = MultisliceModel(16, 5, 10.0, 2.5, 125.0)
        assert model.flops_per_probe() == pytest.approx(
            multislice_flops(16, 5)
        )
