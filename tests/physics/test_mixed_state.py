"""Mixed-state probe primitives and the multislice mode dispatch.

Two contracts guarded here:

1. **M=1 bit-identity** — a ``(1, w, w)`` stack (or a legacy 2-D probe)
   must take the scalar code path *verbatim*: same cost bits, same
   gradient bytes, orthogonalization an explicit identity.  Every layer
   above (engine, solvers, goldens) leans on this.
2. **Mode-stack algebra** — ``orthogonalize_modes`` returns an
   energy-ordered, pairwise-orthogonal, intensity-preserving stack, and
   ``make_mode_stack`` is a deterministic, power-normalized expansion.
   The hypothesis properties are derandomized (reproducible CI runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics.multislice import MultisliceModel
from repro.physics.probe import (
    ProbeSpec,
    as_mode_stack,
    make_mode_stack,
    make_probe,
    mode_powers,
    orthogonalize_modes,
)

WINDOW = 16


@pytest.fixture(scope="module")
def base_probe():
    return make_probe(ProbeSpec(window=WINDOW, pixel_size_pm=10.0)).array


@pytest.fixture(scope="module")
def model():
    return MultisliceModel(
        window=WINDOW,
        n_slices=2,
        pixel_size_pm=10.0,
        wavelength_pm=2.5,
        slice_thickness_pm=1000.0,
    )


@pytest.fixture(scope="module")
def object_patch(model):
    rng = np.random.default_rng(7)
    shape = (2, WINDOW, WINDOW)
    phase = rng.uniform(-0.2, 0.2, size=shape)
    return np.exp(1j * phase).astype(np.complex128)


@pytest.fixture(scope="module")
def measured(model, base_probe, object_patch):
    """A measurement the scalar model does *not* fit exactly (so
    gradients are non-trivial): forward amplitude of a perturbed patch."""
    rng = np.random.default_rng(8)
    perturbed = object_patch * np.exp(
        1j * rng.uniform(-0.1, 0.1, size=object_patch.shape)
    )
    return model.forward_amplitude(base_probe, perturbed)


# ----------------------------------------------------------------------
# Stack plumbing
# ----------------------------------------------------------------------
class TestStackShapes:
    def test_as_mode_stack_reshapes_2d(self, base_probe):
        stack = as_mode_stack(base_probe)
        assert stack.shape == (1, WINDOW, WINDOW)
        # A view, not a copy — legacy probes carry zero overhead.
        assert stack.base is base_probe or np.shares_memory(
            stack, base_probe
        )

    def test_as_mode_stack_passes_3d_through(self, base_probe):
        stack = make_mode_stack(base_probe, 3)
        assert as_mode_stack(stack) is stack

    def test_as_mode_stack_rejects_other_ranks(self):
        with pytest.raises(ValueError, match="probe must be"):
            as_mode_stack(np.zeros(4, dtype=complex))
        with pytest.raises(ValueError, match="probe must be"):
            as_mode_stack(np.zeros((2, 2, 4, 4), dtype=complex))

    def test_mode_powers_matches_direct_sum(self, base_probe):
        stack = make_mode_stack(base_probe, 3)
        powers = mode_powers(stack)
        expected = np.array(
            [np.sum(np.abs(m) ** 2) for m in stack]
        )
        np.testing.assert_allclose(powers, expected, rtol=1e-12)


class TestMakeModeStack:
    def test_deterministic(self, base_probe):
        a = make_mode_stack(base_probe, 4)
        b = make_mode_stack(base_probe, 4)
        assert np.array_equal(a, b)

    def test_mode0_is_base_direction(self, base_probe):
        stack = make_mode_stack(base_probe, 3)
        # Mode 0 is the base probe scaled to its weight share.
        scale = np.sqrt(
            mode_powers(stack)[0] / np.sum(np.abs(base_probe) ** 2)
        )
        np.testing.assert_allclose(
            stack[0], base_probe * scale, atol=1e-12
        )

    def test_total_intensity_preserved(self, base_probe):
        base_power = float(np.sum(np.abs(base_probe) ** 2))
        for m in (1, 2, 5):
            stack = make_mode_stack(base_probe, m)
            np.testing.assert_allclose(
                float(mode_powers(stack).sum()), base_power, rtol=1e-12
            )

    def test_modes_orthogonal_by_construction(self, base_probe):
        stack = make_mode_stack(base_probe, 4)
        flat = stack.reshape(4, -1)
        gram = flat @ flat.conj().T
        off = gram - np.diag(np.diag(gram))
        assert np.max(np.abs(off)) < 1e-10

    def test_powers_decay_geometrically(self, base_probe):
        stack = make_mode_stack(base_probe, 4, power_ratio=0.25)
        powers = mode_powers(stack)
        np.testing.assert_allclose(
            powers[1:] / powers[:-1], 0.25, rtol=1e-10
        )

    def test_validation(self, base_probe):
        with pytest.raises(ValueError, match="n_modes"):
            make_mode_stack(base_probe, 0)
        with pytest.raises(ValueError, match="power_ratio"):
            make_mode_stack(base_probe, 2, power_ratio=1.0)
        with pytest.raises(ValueError, match="square 2-D"):
            make_mode_stack(np.zeros((2, 4, 4), dtype=complex), 2)


# ----------------------------------------------------------------------
# M=1 bit-identity through the model
# ----------------------------------------------------------------------
class TestSingleModeBitIdentity:
    def test_orthogonalize_single_mode_is_identity(self, base_probe):
        stack = base_probe.reshape(1, WINDOW, WINDOW)
        assert orthogonalize_modes(stack) is stack
        assert orthogonalize_modes(base_probe) is base_probe

    def test_cost_and_gradient_dispatch(
        self, model, base_probe, object_patch, measured
    ):
        scalar = model.cost_and_gradient(
            base_probe, object_patch, measured, compute_probe_grad=True
        )
        stacked = model.cost_and_gradient(
            base_probe.reshape(1, WINDOW, WINDOW),
            object_patch,
            measured,
            compute_probe_grad=True,
        )
        assert stacked.cost == scalar.cost
        assert np.array_equal(stacked.object_grad, scalar.object_grad)
        assert stacked.probe_grad.shape == (1, WINDOW, WINDOW)
        assert np.array_equal(stacked.probe_grad[0], scalar.probe_grad)

    def test_batch_dispatch(self, model, base_probe, object_patch, measured):
        patches = np.stack([object_patch, object_patch])
        measured_b = np.stack([measured, measured])
        scalar = model.cost_and_gradient_batch(
            base_probe, patches, measured_b, compute_probe_grad=True
        )
        stacked = model.cost_and_gradient_batch(
            base_probe.reshape(1, WINDOW, WINDOW),
            patches,
            measured_b,
            compute_probe_grad=True,
        )
        assert np.array_equal(stacked.costs, scalar.costs)
        assert np.array_equal(stacked.object_grads, scalar.object_grads)
        assert stacked.probe_grads.shape == (1, 2, WINDOW, WINDOW)
        assert np.array_equal(stacked.probe_grads[0], scalar.probe_grads)

    def test_forward_amplitude_dispatch(
        self, model, base_probe, object_patch
    ):
        scalar = model.forward_amplitude(base_probe, object_patch)
        stacked = model.forward_amplitude(
            base_probe.reshape(1, WINDOW, WINDOW), object_patch
        )
        assert np.array_equal(stacked, scalar)


# ----------------------------------------------------------------------
# Multi-mode model semantics
# ----------------------------------------------------------------------
class TestMultiModeModel:
    def test_amplitude_is_incoherent_sum(
        self, model, base_probe, object_patch
    ):
        stack = make_mode_stack(base_probe, 3)
        amp = model.forward_amplitude(stack, object_patch)
        per_mode = np.stack(
            [model.forward(m, object_patch) for m in stack]
        )
        expected = np.sqrt(np.sum(np.abs(per_mode) ** 2, axis=0))
        np.testing.assert_allclose(amp, expected, rtol=1e-12)

    def test_gradient_matches_finite_difference(
        self, model, base_probe, object_patch, measured
    ):
        stack = make_mode_stack(base_probe, 2)
        result = model.cost_and_gradient(
            stack, object_patch, measured, compute_probe_grad=True
        )
        rng = np.random.default_rng(11)
        eps = 1e-7

        # Object direction: f(x + eps*d) - f(x) ≈ 2*eps*Re<grad, d>.
        d_obj = rng.standard_normal(
            object_patch.shape
        ) + 1j * rng.standard_normal(object_patch.shape)
        f0 = result.cost
        f1 = model.cost_and_gradient(
            stack, object_patch + eps * d_obj, measured
        ).cost
        analytic = 2.0 * np.real(
            np.vdot(result.object_grad, d_obj)
        )
        assert (f1 - f0) / eps == pytest.approx(analytic, rel=1e-4)

        # Probe direction, per-mode stack.
        d_probe = rng.standard_normal(
            stack.shape
        ) + 1j * rng.standard_normal(stack.shape)
        f1p = model.cost_and_gradient(
            stack + eps * d_probe, object_patch, measured
        ).cost
        analytic_p = 2.0 * np.real(np.vdot(result.probe_grad, d_probe))
        assert (f1p - f0) / eps == pytest.approx(analytic_p, rel=1e-4)

    def test_batch_matches_per_position(
        self, model, base_probe, object_patch, measured
    ):
        stack = make_mode_stack(base_probe, 2)
        rng = np.random.default_rng(13)
        patches = np.stack(
            [
                object_patch,
                object_patch
                * np.exp(1j * rng.uniform(-0.1, 0.1, object_patch.shape)),
            ]
        )
        measured_b = np.stack([measured, measured * 1.01])
        batch = model.cost_and_gradient_batch(
            stack, patches, measured_b, compute_probe_grad=True
        )
        assert batch.probe_grads.shape == (2, 2, WINDOW, WINDOW)
        for b in range(2):
            single = model.cost_and_gradient(
                stack, patches[b], measured_b[b], compute_probe_grad=True
            )
            assert float(batch.costs[b]) == pytest.approx(
                single.cost, rel=1e-12
            )
            np.testing.assert_allclose(
                batch.object_grads[b], single.object_grad, rtol=1e-10
            )
            np.testing.assert_allclose(
                batch.probe_grads[:, b], single.probe_grad, rtol=1e-10
            )


# ----------------------------------------------------------------------
# Orthogonalization properties (derandomized hypothesis)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

COMMON = settings(max_examples=25, deadline=None, derandomize=True)


def _random_stack(seed: int, n_modes: int, window: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (n_modes, window, window)
    ) + 1j * rng.standard_normal((n_modes, window, window))


@COMMON
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_modes=st.integers(min_value=2, max_value=5),
    window=st.sampled_from([4, 8]),
)
def test_orthogonalized_modes_energy_descending(seed, n_modes, window):
    out = orthogonalize_modes(_random_stack(seed, n_modes, window))
    powers = mode_powers(out)
    assert np.all(powers[:-1] >= powers[1:] - 1e-12)


@COMMON
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_modes=st.integers(min_value=2, max_value=5),
    window=st.sampled_from([4, 8]),
)
def test_orthogonalized_modes_pairwise_orthogonal(seed, n_modes, window):
    stack = _random_stack(seed, n_modes, window)
    out = orthogonalize_modes(stack)
    flat = out.reshape(n_modes, -1)
    gram = flat @ flat.conj().T
    scale = max(float(np.abs(np.diag(gram)).max()), 1.0)
    off = gram - np.diag(np.diag(gram))
    assert np.max(np.abs(off)) < 1e-9 * scale
    # Total intensity preserved (Frobenius norm is U-invariant).
    np.testing.assert_allclose(
        mode_powers(out).sum(), mode_powers(stack).sum(), rtol=1e-10
    )


@COMMON
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    window=st.sampled_from([4, 8]),
)
def test_orthogonalize_single_mode_noop(seed, window):
    stack = _random_stack(seed, 1, window)
    assert orthogonalize_modes(stack) is stack
