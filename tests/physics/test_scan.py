"""Raster scan patterns."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.physics.scan import RasterScan, ScanSpec, probe_window
from repro.utils.geometry import Rect


class TestScanSpec:
    def test_n_positions(self):
        assert ScanSpec(grid=(3, 4), step_px=2.0).n_positions == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid": (0, 3), "step_px": 1.0},
            {"grid": (3, 3), "step_px": 0.0},
            {"grid": (3, 3), "step_px": 1.0, "margin_px": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScanSpec(**kwargs)

    def test_from_overlap_step(self):
        spec = ScanSpec.from_overlap((3, 3), probe_radius_px=10.0, overlap_ratio=0.8)
        assert spec.step_px == pytest.approx(4.0)  # (1-0.8)*2*10

    def test_from_overlap_zero(self):
        spec = ScanSpec.from_overlap((2, 2), 10.0, 0.0)
        assert spec.step_px == pytest.approx(20.0)

    def test_from_overlap_validation(self):
        with pytest.raises(ValueError):
            ScanSpec.from_overlap((2, 2), 10.0, 1.0)

    def test_from_overlap_floors_at_one_pixel(self):
        spec = ScanSpec.from_overlap((2, 2), 0.5, 0.99)
        assert spec.step_px == 1.0


class TestProbeWindow:
    def test_centered_window(self):
        w = probe_window(10.0, 10.0, 8)
        assert w == Rect(6, 14, 6, 14)
        assert w.shape == (8, 8)

    def test_rounding(self):
        assert probe_window(10.4, 10.6, 8) == Rect(6, 14, 7, 15)


class TestRasterScan:
    @pytest.fixture(scope="class")
    def scan(self):
        return RasterScan(ScanSpec(grid=(3, 4), step_px=5.0), probe_window_px=8)

    def test_raster_time_order(self, scan):
        """Position i+1 is right of / below position i (paper Fig. 1(b))."""
        centers = scan.centers
        for i in range(len(centers) - 1):
            r0, c0 = centers[i]
            r1, c1 = centers[i + 1]
            assert (r1 == r0 and c1 > c0) or (r1 > r0)

    def test_grid_index_roundtrip(self, scan):
        assert scan.grid_index(0) == (0, 0)
        assert scan.grid_index(4) == (1, 0)
        assert scan.grid_index(11) == (2, 3)

    def test_windows_equal_sizes(self, scan):
        assert all(w.shape == (8, 8) for w in scan.windows)

    def test_windows_non_negative_origin(self, scan):
        for w in scan:
            assert w.r0 >= 0 and w.c0 >= 0

    def test_required_fov_contains_all_windows(self, scan):
        fr, fc = scan.required_fov()
        bounds = Rect(0, fr, 0, fc)
        assert all(bounds.contains(w) for w in scan.windows)

    def test_len_and_iter(self, scan):
        assert len(scan) == 12
        assert len(list(scan)) == 12

    def test_overlap_ratio(self):
        scan = RasterScan(ScanSpec(grid=(2, 2), step_px=2.0), probe_window_px=8)
        assert scan.overlap_ratio() == pytest.approx(0.75)

    def test_overlapping_windows_for_small_steps(self):
        scan = RasterScan(ScanSpec(grid=(2, 2), step_px=2.0), probe_window_px=8)
        assert scan.window_of(0).overlaps(scan.window_of(1))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.floats(1.0, 10.0),
        st.integers(4, 16),
    )
    def test_neighbour_step_property(self, n_r, n_c, step, window):
        """Consecutive same-row centers are exactly step apart."""
        scan = RasterScan(
            ScanSpec(grid=(n_r, n_c), step_px=step), probe_window_px=window
        )
        centers = scan.centers
        for i in range(scan.n_positions - 1):
            r, c = scan.grid_index(i)
            if c + 1 < n_c:
                assert centers[i + 1][1] - centers[i][1] == pytest.approx(step)
                assert centers[i + 1][0] == pytest.approx(centers[i][0])
