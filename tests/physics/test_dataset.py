"""Dataset simulation and the Table I specs."""

import numpy as np
import pytest

from repro.physics.dataset import (
    DatasetSpec,
    large_pbtio3_spec,
    scaled_pbtio3_spec,
    simulate_dataset,
    small_pbtio3_spec,
    suggest_lr,
)


class TestFullSizeSpecs:
    def test_small_matches_table1(self):
        s = small_pbtio3_spec()
        assert s.scan_grid == (63, 66)
        assert s.n_probes == 4158
        assert s.object_shape == (1536, 1536)
        assert s.n_slices == 100
        assert s.detector_px == 1024

    def test_large_matches_table1(self):
        s = large_pbtio3_spec()
        assert s.scan_grid == (126, 132)
        assert s.n_probes == 16632
        assert s.object_shape == (3072, 3072)

    def test_voxel_size_matches_paper(self):
        s = large_pbtio3_spec()
        assert s.pixel_size_pm == 10.0
        assert s.slice_thickness_pm == 125.0

    def test_measurement_bytes(self):
        s = small_pbtio3_spec()
        expected = 4158 * 1024 * 1024 * 2  # float16
        assert s.measurement_bytes_total == expected

    def test_volume_bytes(self):
        s = small_pbtio3_spec()
        assert s.volume_bytes_total == 1536 * 1536 * 100 * 8

    def test_scan_fits_object(self):
        for spec in (small_pbtio3_spec(), large_pbtio3_spec()):
            scan_spec = spec.scan_spec()
            assert scan_spec.step_px > 0
            # Last window must fit: margin + step*(n-1) + window <= dim.
            n_r, n_c = spec.scan_grid
            assert (
                scan_spec.step_px * (n_r - 1) + spec.detector_px
                <= spec.object_shape[0] + 1
            )

    def test_high_overlap_regime(self):
        """The paper's acquisitions are >70% overlap (Sec. II-A)."""
        for spec in (small_pbtio3_spec(), large_pbtio3_spec()):
            probe_r = spec.probe_spec.nominal_radius_px
            step = spec.scan_spec().step_px
            circle_overlap = 1.0 - step / (2 * probe_r)
            assert circle_overlap > 0.7


class TestScaledSpec:
    def test_geometry_fits(self):
        spec = scaled_pbtio3_spec(scan_grid=(4, 5), detector_px=16, n_slices=2)
        ds = simulate_dataset(spec, seed=0)
        assert ds.amplitudes.shape == (20, 16, 16)

    def test_circle_overlap_sets_step(self):
        spec = scaled_pbtio3_spec(
            scan_grid=(4, 4), detector_px=24, circle_overlap=0.8
        )
        assert spec.scan_spec().step_px == pytest.approx(2.4, abs=0.01)

    def test_circle_overlap_validation(self):
        with pytest.raises(ValueError):
            scaled_pbtio3_spec(circle_overlap=1.0)

    def test_probe_scaled_to_window(self):
        spec = scaled_pbtio3_spec(detector_px=32)
        r = spec.probe_spec.nominal_radius_px
        assert 4 < r < 16  # around window/4 plus the Airy term

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(
                name="x",
                scan_grid=(0, 3),
                object_shape=(64, 64),
                n_slices=2,
                detector_px=16,
            )
        with pytest.raises(ValueError):
            DatasetSpec(
                name="x",
                scan_grid=(3, 3),
                object_shape=(64, 64),
                n_slices=2,
                detector_px=0,
            )


class TestSimulation:
    def test_amplitudes_non_negative(self, tiny_dataset):
        assert float(tiny_dataset.amplitudes.min()) >= 0.0

    def test_cost_at_ground_truth_near_zero(self, tiny_dataset):
        """The acquisition is consistent: the true object explains the
        measurements (up to float16 storage rounding)."""
        model = tiny_dataset.multislice_model()
        total = 0.0
        for i, w in enumerate(tiny_dataset.scan.windows):
            sl = w.global_slices()
            patch = tiny_dataset.ground_truth[:, sl[0], sl[1]]
            total += model.cost_only(
                tiny_dataset.probe.array, patch, tiny_dataset.amplitude(i)
            )
        assert total < 1e-4

    def test_reproducible(self):
        spec = scaled_pbtio3_spec(scan_grid=(3, 3), detector_px=16, n_slices=2)
        a = simulate_dataset(spec, seed=7)
        b = simulate_dataset(spec, seed=7)
        np.testing.assert_array_equal(a.amplitudes, b.amplitudes)

    def test_seed_changes_data(self):
        spec = scaled_pbtio3_spec(scan_grid=(3, 3), detector_px=16, n_slices=2)
        a = simulate_dataset(spec, seed=1)
        b = simulate_dataset(spec, seed=2)
        assert not np.allclose(a.amplitudes, b.amplitudes)

    def test_poisson_noise_perturbs(self):
        spec = scaled_pbtio3_spec(scan_grid=(3, 3), detector_px=16, n_slices=2)
        clean = simulate_dataset(spec, seed=3)
        noisy = simulate_dataset(spec, seed=3, poisson_dose=1e4)
        assert not np.allclose(clean.amplitudes, noisy.amplitudes)

    def test_poisson_noise_scales_with_dose(self):
        spec = scaled_pbtio3_spec(scan_grid=(3, 3), detector_px=16, n_slices=2)
        clean = simulate_dataset(spec, seed=3)
        low = simulate_dataset(spec, seed=3, poisson_dose=1e3)
        high = simulate_dataset(spec, seed=3, poisson_dose=1e7)
        err_low = np.abs(
            low.amplitudes.astype(np.float64)
            - clean.amplitudes.astype(np.float64)
        ).mean()
        err_high = np.abs(
            high.amplitudes.astype(np.float64)
            - clean.amplitudes.astype(np.float64)
        ).mean()
        assert err_low > err_high

    def test_object_too_small_raises(self):
        spec = DatasetSpec(
            name="toosmall",
            scan_grid=(10, 10),
            object_shape=(20, 20),
            n_slices=2,
            detector_px=16,
        )
        with pytest.raises(ValueError, match="field of view"):
            simulate_dataset(spec)

    def test_initial_object_is_vacuum(self, tiny_dataset):
        init = tiny_dataset.initial_object()
        assert init.shape == (
            tiny_dataset.n_slices,
            *tiny_dataset.object_shape,
        )
        np.testing.assert_array_equal(init, np.ones_like(init))


class TestSuggestLr:
    def test_positive(self, tiny_dataset):
        assert suggest_lr(tiny_dataset) > 0

    def test_scales_with_alpha(self, tiny_dataset):
        assert suggest_lr(tiny_dataset, 1.0) == pytest.approx(
            2 * suggest_lr(tiny_dataset, 0.5)
        )

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            suggest_lr(tiny_dataset, 0.0)
