"""Probe formation."""

import numpy as np
import pytest

from repro.physics.probe import Probe, ProbeSpec, make_probe


@pytest.fixture(scope="module")
def probe32():
    return make_probe(
        ProbeSpec(window=32, defocus_pm=2000.0, pixel_size_pm=10.0)
    )


class TestProbeSpec:
    def test_defaults_match_paper(self):
        spec = ProbeSpec()
        assert spec.energy_ev == 200_000.0
        assert spec.aperture_rad == pytest.approx(30e-3)
        assert spec.defocus_pm == pytest.approx(25_000.0)

    def test_wavelength_property(self):
        assert ProbeSpec().wavelength_pm == pytest.approx(2.508, rel=1e-3)

    def test_nominal_radius_grows_with_defocus(self):
        r1 = ProbeSpec(defocus_pm=1000.0).nominal_radius_pm
        r2 = ProbeSpec(defocus_pm=5000.0).nominal_radius_pm
        assert r2 > r1

    def test_paper_probe_radius(self):
        """30 mrad x 25 nm defocus -> ~750 pm defocus disc + Airy term."""
        r = ProbeSpec().nominal_radius_pm
        assert 750.0 < r < 860.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"energy_ev": 0.0},
            {"aperture_rad": -0.01},
            {"window": 0},
            {"pixel_size_pm": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProbeSpec(**kwargs)


class TestMakeProbe:
    def test_unit_intensity(self, probe32):
        assert np.sum(np.abs(probe32.array) ** 2) == pytest.approx(1.0)

    def test_dtype_and_shape(self, probe32):
        assert probe32.array.shape == (32, 32)
        assert probe32.array.dtype == np.complex128

    def test_centered(self, probe32):
        """Intensity centroid sits at the array center."""
        n = probe32.window
        yy, xx = np.mgrid[0:n, 0:n]
        w = probe32.intensity
        cy = (yy * w).sum() / w.sum()
        cx = (xx * w).sum() / w.sum()
        assert cy == pytest.approx((n - 1) / 2, abs=0.5)
        assert cx == pytest.approx((n - 1) / 2, abs=0.5)

    def test_support_radius_monotone_in_fraction(self, probe32):
        assert probe32.support_radius_px(0.5) <= probe32.support_radius_px(
            0.99
        )

    def test_support_radius_tracks_defocus(self):
        small = make_probe(
            ProbeSpec(window=48, defocus_pm=500.0, pixel_size_pm=10.0)
        )
        large = make_probe(
            ProbeSpec(window=48, defocus_pm=3000.0, pixel_size_pm=10.0)
        )
        assert large.support_radius_px(0.9) > small.support_radius_px(0.9)

    def test_support_radius_fraction_validation(self, probe32):
        with pytest.raises(ValueError):
            probe32.support_radius_px(0.0)
        with pytest.raises(ValueError):
            probe32.support_radius_px(1.5)

    def test_zero_defocus_is_airy_like(self):
        """In-focus probe concentrates intensity at the center pixel."""
        p = make_probe(ProbeSpec(window=32, defocus_pm=0.0, pixel_size_pm=10.0))
        peak = np.unravel_index(np.argmax(p.intensity), p.intensity.shape)
        assert peak == (16, 16)

    def test_tiny_aperture_degenerates_to_plane_wave(self):
        """An aperture below the frequency resolution keeps only the DC
        component: the probe becomes a uniform plane wave."""
        p = make_probe(
            ProbeSpec(window=8, aperture_rad=1e-6, pixel_size_pm=10.0)
        )
        np.testing.assert_allclose(
            p.intensity, np.full((8, 8), 1.0 / 64.0), atol=1e-12
        )

    def test_spherical_aberration_changes_probe(self):
        base = make_probe(ProbeSpec(window=32, defocus_pm=2000.0))
        aberrated = make_probe(
            ProbeSpec(window=32, defocus_pm=2000.0, cs_pm=5e9)
        )
        assert not np.allclose(base.array, aberrated.array)
