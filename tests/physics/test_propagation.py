"""Fresnel propagation."""

import numpy as np
import pytest

from repro.physics.propagation import FresnelPropagator
from repro.utils.fftutils import fft2c


@pytest.fixture(scope="module")
def prop():
    return FresnelPropagator((32, 32), 10.0, 2.508, 125.0)


class TestConstruction:
    def test_kernel_unit_modulus_in_band(self, prop):
        k = prop.kernel
        nonzero = np.abs(k) > 0
        np.testing.assert_allclose(np.abs(k[nonzero]), 1.0, atol=1e-12)

    def test_bandlimit_zeroes_corners(self, prop):
        assert prop.kernel[0, 0] == 0.0  # corner frequency beyond 2/3 Nyquist

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pixel_size_pm": 0.0},
            {"wavelength_pm": -1.0},
            {"bandlimit": 0.0},
            {"bandlimit": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            shape=(8, 8), pixel_size_pm=10.0, wavelength_pm=2.5, dz_pm=125.0
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            FresnelPropagator(**defaults)


class TestPhysics:
    def test_zero_distance_kernel_is_pure_band_mask(self):
        """At dz=0 the kernel carries no phase: values are exactly 0 or 1,
        so propagation reduces to the anti-aliasing band mask."""
        p = FresnelPropagator((16, 16), 10.0, 2.508, 0.0, bandlimit=1.0)
        k = p.kernel
        assert np.all((k == 0.0) | (np.abs(k - 1.0) < 1e-14))
        # And a field already inside the band is untouched.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        x_band = p.forward(x)
        np.testing.assert_allclose(p.forward(x_band), x_band, atol=1e-12)

    def test_energy_conserved_for_bandlimited_field(self, prop, rng):
        """Unitary inside the band: a band-limited field keeps its norm."""
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        # Project onto the propagator band first.
        spectrum = fft2c(x)
        spectrum[np.abs(prop.kernel) == 0] = 0.0
        from repro.utils.fftutils import ifft2c

        x_band = ifft2c(spectrum)
        before = np.sum(np.abs(x_band) ** 2)
        after = np.sum(np.abs(prop.forward(x_band)) ** 2)
        assert after == pytest.approx(before, rel=1e-10)

    def test_forward_adjoint_inverse_roundtrip(self, prop, rng):
        """adjoint(forward(x)) returns the band-limited part of x."""
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        once = prop.adjoint(prop.forward(x))
        twice = prop.adjoint(prop.forward(once))
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_adjoint_identity(self, prop, rng):
        """<P x, y> == <x, P^H y> — required by the multislice gradient."""
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        y = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        assert np.vdot(prop.forward(x), y) == pytest.approx(
            np.vdot(x, prop.adjoint(y))
        )

    def test_propagation_spreads_point_source(self, rng):
        """Free-space propagation spreads a centred point."""
        p = FresnelPropagator((64, 64), 10.0, 2.508, 50_000.0)
        x = np.zeros((64, 64), dtype=complex)
        x[32, 32] = 1.0
        out = np.abs(p.forward(x)) ** 2
        assert out[32, 32] < 0.9 * np.abs(x[32, 32]) ** 2

    def test_composition_equals_double_distance(self, rng):
        """P_dz(P_dz(x)) == P_2dz(x) — the Fresnel semigroup property."""
        a = FresnelPropagator((32, 32), 10.0, 2.508, 125.0)
        b = FresnelPropagator((32, 32), 10.0, 2.508, 250.0)
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        np.testing.assert_allclose(
            a.forward(a.forward(x)), b.forward(x), atol=1e-10
        )
