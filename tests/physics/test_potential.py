"""Synthetic PbTiO3 specimen generation."""

import numpy as np
import pytest

from repro.physics.potential import (
    ATOMIC_NUMBER,
    SpecimenSpec,
    make_specimen,
    pbtio3_unit_cell,
)


class TestUnitCell:
    def test_stoichiometry(self):
        """PbTiO3: one Pb, one Ti, three O per cell."""
        cell = pbtio3_unit_cell()
        counts = {}
        for el, *_ in cell:
            counts[el] = counts.get(el, 0) + 1
        assert counts == {"Pb": 1, "Ti": 1, "O": 3}

    def test_fractional_coordinates(self):
        for _, fx, fy, fz in pbtio3_unit_cell():
            assert 0.0 <= fx <= 1.0
            assert 0.0 <= fy <= 1.0
            assert 0.0 <= fz <= 1.0

    def test_ferroelectric_ti_offset(self):
        """Ti sits off the cell center along c (the ferroelectric
        displacement that makes PbTiO3 interesting)."""
        ti = next(a for a in pbtio3_unit_cell() if a[0] == "Ti")
        assert ti[3] != 0.5


class TestSpecimenSpec:
    def test_thickness(self):
        spec = SpecimenSpec(n_slices=8, slice_thickness_pm=125.0)
        assert spec.thickness_pm == pytest.approx(1000.0)

    @pytest.mark.parametrize(
        "kwargs", [{"n_slices": 0}, {"pixel_size_pm": -1.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SpecimenSpec(**kwargs)


class TestMakeSpecimen:
    @pytest.fixture(scope="class")
    def specimen(self):
        return make_specimen(
            SpecimenSpec(shape=(96, 96), n_slices=4), seed=5
        )

    def test_shape_and_dtype(self, specimen):
        assert specimen.shape == (4, 96, 96)
        assert specimen.dtype == np.complex128

    def test_transmission_bounded(self, specimen):
        """|O| <= 1 (absorption only removes amplitude)."""
        assert np.abs(specimen).max() <= 1.0 + 1e-12

    def test_has_structure(self, specimen):
        """Atoms imprint phase; the phase field is non-trivial."""
        assert np.angle(specimen).std() > 1e-3

    def test_lattice_periodicity(self):
        """Autocorrelation of the phase peaks near the lattice constant."""
        spec = SpecimenSpec(shape=(128, 128), n_slices=2)
        vol = make_specimen(spec)  # no disorder
        phase = np.angle(vol[0])
        phase = phase - phase.mean()
        # 1-D autocorrelation along columns via FFT.
        line = phase.mean(axis=0)
        ac = np.correlate(line, line, mode="full")[len(line) - 1 :]
        a_px = int(round(spec.lattice_a_pm / spec.pixel_size_pm))
        window = ac[a_px - 3 : a_px + 4]
        assert window.max() > 0.3 * ac[0]

    def test_seed_reproducible(self):
        spec = SpecimenSpec(shape=(64, 64), n_slices=2)
        a = make_specimen(spec, seed=9)
        b = make_specimen(spec, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_disorder(self):
        spec = SpecimenSpec(shape=(64, 64), n_slices=2)
        a = make_specimen(spec, seed=1)
        b = make_specimen(spec, seed=2)
        assert not np.allclose(a, b)

    def test_no_seed_is_perfect_crystal(self):
        spec = SpecimenSpec(shape=(64, 64), n_slices=2)
        np.testing.assert_array_equal(
            make_specimen(spec), make_specimen(spec)
        )

    def test_heavy_atoms_dominate_phase(self):
        """Pb columns produce the strongest phase (Z^0.8 weighting)."""
        spec = SpecimenSpec(shape=(96, 96), n_slices=2)
        vol = make_specimen(spec)
        peak_phase = np.angle(vol[0]).max()
        assert peak_phase > 0.1  # heavy column clearly visible

    def test_atomic_numbers(self):
        assert ATOMIC_NUMBER["Pb"] > ATOMIC_NUMBER["Ti"] > ATOMIC_NUMBER["O"]
