"""Electron-optics constants against textbook values."""

import pytest

from repro.physics.constants import (
    electron_wavelength_pm,
    interaction_parameter,
    relativistic_mass_factor,
)


class TestWavelength:
    @pytest.mark.parametrize(
        "energy_ev,expected_pm",
        [
            (100_000.0, 3.701),   # Kirkland table values
            (200_000.0, 2.508),
            (300_000.0, 1.969),
        ],
    )
    def test_textbook_values(self, energy_ev, expected_pm):
        assert electron_wavelength_pm(energy_ev) == pytest.approx(
            expected_pm, rel=1e-3
        )

    def test_monotone_decreasing_with_energy(self):
        assert electron_wavelength_pm(100e3) > electron_wavelength_pm(200e3)

    def test_rejects_non_positive_energy(self):
        with pytest.raises(ValueError):
            electron_wavelength_pm(0.0)
        with pytest.raises(ValueError):
            electron_wavelength_pm(-5.0)


class TestMassFactor:
    def test_200kev(self):
        # gamma = 1 + 200/511
        assert relativistic_mass_factor(200_000.0) == pytest.approx(
            1.3914, rel=1e-3
        )

    def test_low_energy_limit(self):
        assert relativistic_mass_factor(1.0) == pytest.approx(1.0, abs=1e-5)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            relativistic_mass_factor(0.0)


class TestInteractionParameter:
    def test_200kev_magnitude(self):
        """sigma(200kV) ~ 0.00729 rad/(V*A) = 7.29e-7 rad/(V*pm) * 10
        ... expressed in rad/(V*pm): ~7.29e-4 / 100 = 7.29e-6."""
        sigma = interaction_parameter(200_000.0)
        assert sigma == pytest.approx(7.29e-6, rel=0.02)

    def test_decreases_with_energy(self):
        assert interaction_parameter(100e3) > interaction_parameter(300e3)
