"""Backend registry: names, caching, ambient resolution, cupy gating."""

import numpy as np
import pytest

from repro.backend import (
    ENV_BACKEND,
    ArrayBackend,
    BackendUnavailableError,
    CupyBackend,
    NumpyBackend,
    ThreadedFFTBackend,
    UnknownBackendError,
    available_backend_names,
    backend_names,
    get_backend,
    get_default_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    unregister_backend,
    use_backend,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        assert {"numpy", "threaded", "cupy"} <= set(names)

    def test_available_subset(self):
        avail = available_backend_names()
        assert "numpy" in avail
        assert "threaded" in avail  # scipy ships with the CI image
        assert set(avail) <= set(backend_names())

    def test_get_backend_caches_instances(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("threaded"), ThreadedFFTBackend)

    def test_instance_passthrough(self):
        custom = ThreadedFFTBackend(workers=2)
        assert get_backend(custom) is custom
        assert resolve_backend(custom) is custom

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownBackendError, match="numpy"):
            get_backend("nope")

    def test_register_requires_transforms(self):
        with pytest.raises(TypeError, match="fft2"):

            @register_backend("broken-test")
            class Broken:
                pass

    def test_register_unregister_roundtrip(self):
        @register_backend("custom-test")
        class CustomBackend(NumpyBackend):
            pass

        try:
            assert "custom-test" in backend_names()
            assert CustomBackend.name == "custom-test"
            assert isinstance(get_backend("custom-test"), CustomBackend)
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in backend_names()
        with pytest.raises(UnknownBackendError):
            unregister_backend("custom-test")

    def test_duplicate_name_needs_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend("numpy")
            class Shadow(NumpyBackend):
                pass

        # The escape hatch works and the original can be restored.
        @register_backend("numpy", overwrite=True)
        class Shadow2(NumpyBackend):
            pass

        try:
            assert isinstance(get_backend("numpy"), Shadow2)
        finally:
            register_backend("numpy", overwrite=True)(NumpyBackend)


class TestAmbientResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None).name == "numpy"
        assert get_default_backend().name == "numpy"

    def test_env_var_steers_ambient(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "threaded")
        assert resolve_backend(None).name == "threaded"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "threaded")
        assert resolve_backend("numpy").name == "numpy"

    def test_in_code_default_wins_over_env(self, monkeypatch):
        """A with-block is more specific than the environment: CI's
        REPRO_BACKEND must not silently defeat use_backend scopes."""
        monkeypatch.setenv(ENV_BACKEND, "threaded")
        with use_backend("numpy"):
            assert resolve_backend(None).name == "numpy"
        assert resolve_backend(None).name == "threaded"  # env again

    def test_use_backend_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        with use_backend("threaded") as b:
            assert b.name == "threaded"
            assert resolve_backend(None).name == "threaded"
        assert resolve_backend(None).name == "numpy"

    def test_use_backend_honours_configured_instance(self, monkeypatch):
        """A caller-configured instance (worker count, warm plan cache)
        serves the scope itself — not the cached default instance of the
        same registry name."""
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        custom = ThreadedFFTBackend(workers=2)
        with use_backend(custom):
            assert resolve_backend(None) is custom
        assert resolve_backend(None).name == "numpy"

    def test_set_default_backend_honours_configured_instance(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        custom = ThreadedFFTBackend(workers=2)
        set_default_backend(custom)
        try:
            assert resolve_backend(None) is custom
        finally:
            set_default_backend("numpy")

    def test_use_backend_restores_on_error(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("threaded"):
                raise RuntimeError("boom")
        assert resolve_backend(None).name == "numpy"

    def test_set_default_backend_validates(self):
        with pytest.raises(UnknownBackendError):
            set_default_backend("nope")

    def test_set_default_backend(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        set_default_backend("threaded")
        try:
            assert resolve_backend(None).name == "threaded"
        finally:
            set_default_backend("numpy")


class TestCupyGating:
    """The cupy backend is always *registered* (the name is recognized
    everywhere) but only *available* with a working GPU; everything else
    auto-skips."""

    def test_name_always_registered(self):
        assert "cupy" in backend_names()

    def test_unavailable_raises_pointed_error(self):
        if CupyBackend.available():  # pragma: no cover - GPU machines
            pytest.skip("cupy is available here; gating not exercised")
        with pytest.raises(BackendUnavailableError, match="cupy"):
            get_backend("cupy")
        assert "cupy" not in available_backend_names()

    def test_transform_roundtrip_on_gpu(self):
        if not CupyBackend.available():
            pytest.skip("cupy not available")
        b = get_backend("cupy")  # pragma: no cover - GPU machines
        rng = np.random.default_rng(0)
        x = (rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8)))
        out = b.ifft2(b.fft2(x))
        assert isinstance(out, np.ndarray)  # host in -> host out
        np.testing.assert_allclose(out, x, atol=1e-10)


class TestProtocolHelpers:
    def test_complex_dtype_contract(self):
        f = ArrayBackend.complex_dtype_of
        assert f(np.zeros(2, np.complex64)) == np.complex64
        assert f(np.zeros(2, np.float32)) == np.complex64
        assert f(np.zeros(2, np.float16)) == np.complex64
        assert f(np.zeros(2, np.complex128)) == np.complex128
        assert f(np.zeros(2, np.float64)) == np.complex128
        assert f(np.zeros(2, np.int32)) == np.complex128
