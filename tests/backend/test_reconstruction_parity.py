"""End-to-end backend/precision parity on the scaled PbTiO3 spec.

Tolerancing note: a ptychographic iteration *amplifies* floating-point
differences (the amplitude projection is non-smooth where ``|Psi|`` is
small), so eps-level kernel differences between numpy and scipy pocketfft
grow over iterations.  The suite therefore asserts three tiers: kernel
parity at machine epsilon, reconstruction parity well below the
single-precision noise floor, and complex64-vs-complex128 agreement at
the level single precision can support.
"""

import numpy as np
import pytest

from repro.backend import SINGLE, get_backend
from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.physics.dataset import suggest_lr


@pytest.fixture(scope="module")
def lr(tiny_dataset):
    return suggest_lr(tiny_dataset, alpha=0.35)


class TestKernelParity:
    """One cost+gradient evaluation: the unit the reconstruction loops."""

    def test_threaded_matches_numpy_at_eps(self, tiny_dataset):
        probe = tiny_dataset.probe.array
        patch_window = tiny_dataset.scan.windows[0].global_slices()
        patch = tiny_dataset.ground_truth[
            :, patch_window[0], patch_window[1]
        ] * np.exp(1j * 0.05)
        measured = tiny_dataset.amplitude(0)
        r_np = tiny_dataset.multislice_model(backend="numpy").cost_and_gradient(
            probe, patch, measured
        )
        r_th = tiny_dataset.multislice_model(backend="threaded").cost_and_gradient(
            probe, patch, measured
        )
        scale = np.abs(r_np.object_grad).max()
        assert np.abs(r_np.object_grad - r_th.object_grad).max() < 1e-11 * scale
        assert r_th.cost == pytest.approx(r_np.cost, rel=1e-12)

    def test_complex64_kernel_within_single_precision(self, tiny_dataset):
        probe = tiny_dataset.probe.array
        sl = tiny_dataset.scan.windows[0].global_slices()
        patch = tiny_dataset.ground_truth[:, sl[0], sl[1]] * np.exp(1j * 0.05)
        measured = tiny_dataset.amplitude(0)
        r_hi = tiny_dataset.multislice_model(dtype="complex128").cost_and_gradient(
            probe, patch, measured
        )
        r_lo = tiny_dataset.multislice_model(dtype="complex64").cost_and_gradient(
            probe, patch, measured
        )
        assert r_lo.object_grad.dtype == np.complex64
        scale = np.abs(r_hi.object_grad).max()
        assert np.abs(r_hi.object_grad - r_lo.object_grad).max() < 5e-3 * scale
        assert r_lo.cost == pytest.approx(r_hi.cost, rel=1e-3)


class TestSerialParity:
    def test_threaded_complex128(self, tiny_dataset, lr):
        r_np = SerialReconstructor(
            iterations=4, lr=lr, backend="numpy"
        ).reconstruct(tiny_dataset)
        r_th = SerialReconstructor(
            iterations=4, lr=lr, backend="threaded"
        ).reconstruct(tiny_dataset)
        assert r_th.volume.dtype == np.complex128
        # ~20x tighter than the single-precision noise floor below.
        assert np.abs(r_np.volume - r_th.volume).max() < 1e-4
        assert r_th.history[-1] == pytest.approx(r_np.history[-1], rel=1e-3)

    def test_complex64_vs_complex128(self, tiny_dataset, lr):
        r_hi = SerialReconstructor(
            iterations=4, lr=lr, dtype="complex128"
        ).reconstruct(tiny_dataset)
        r_lo = SerialReconstructor(
            iterations=4, lr=lr, dtype="complex64"
        ).reconstruct(tiny_dataset)
        assert r_lo.volume.dtype == np.complex64
        # Transmission values are O(1); single precision holds the
        # reconstruction to a few 1e-2 after 4 amplifying iterations.
        assert np.abs(r_hi.volume - r_lo.volume).max() < 0.1
        # Both converge: same cost-reduction factor to within 2x.
        hi_ratio = r_hi.history[-1] / r_hi.history[0]
        lo_ratio = r_lo.history[-1] / r_lo.history[0]
        assert lo_ratio < 2.0 * hi_ratio + 1e-12


class TestDistributedParity:
    @pytest.mark.parametrize("backend", ["numpy", "threaded"])
    def test_gd_runs_and_matches_dtype(self, tiny_dataset, lr, backend):
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=3, lr=lr, backend=backend, dtype="complex64"
        ).reconstruct(tiny_dataset)
        assert result.volume.dtype == np.complex64

    def test_gd_threaded_complex128(self, tiny_dataset, lr):
        r_np = GradientDecompositionReconstructor(
            n_ranks=4, iterations=3, lr=lr, backend="numpy"
        ).reconstruct(tiny_dataset)
        r_th = GradientDecompositionReconstructor(
            n_ranks=4, iterations=3, lr=lr, backend="threaded"
        ).reconstruct(tiny_dataset)
        # Alg. 1's local+buffer double update amplifies kernel eps harder
        # than the serial sweep; still an order below the c64 floor.
        assert np.abs(r_np.volume - r_th.volume).max() < 1e-2
        assert r_th.history[-1] == pytest.approx(r_np.history[-1], rel=1e-2)

    def test_gd_synchronous_still_matches_serial_on_threaded(
        self, tiny_dataset, lr
    ):
        """The strongest seed invariant, now on the threaded backend:
        synchronous-mode gd == serial batch descent bit-for-bit when both
        run the *same* backend."""
        r_gd = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=2,
            lr=lr,
            mode="synchronous",
            planner="allreduce",
            backend="threaded",
        ).reconstruct(tiny_dataset)
        r_serial = SerialReconstructor(
            iterations=2, lr=lr, backend="threaded"
        ).reconstruct(tiny_dataset)
        np.testing.assert_allclose(
            r_gd.volume, r_serial.volume, atol=1e-10
        )

    def test_complex64_halves_peak_memory(self, tiny_dataset, lr):
        kwargs = dict(n_ranks=4, iterations=2, lr=lr)
        hi = GradientDecompositionReconstructor(
            dtype="complex128", **kwargs
        ).reconstruct(tiny_dataset)
        lo = GradientDecompositionReconstructor(
            dtype="complex64", **kwargs
        ).reconstruct(tiny_dataset)
        # volume + accbuf dominate and halve exactly; measurements
        # (float16 shards) and the probe make the total ratio < 2 but
        # decisively below 1.
        assert lo.peak_memory_mean < 0.65 * hi.peak_memory_mean


class TestApiParity:
    def test_reconstruct_with_backend_config(self, tiny_dataset, lr):
        import repro

        config = repro.ReconstructionConfig(
            solver="serial",
            solver_params={"iterations": 2, "lr": float(lr)},
            backend="threaded",
            dtype="complex64",
        )
        result = repro.reconstruct(tiny_dataset, config)
        assert result.volume.dtype == np.complex64

    def test_use_backend_context_drives_default(self, tiny_dataset, lr):
        from repro.backend import use_backend

        with use_backend("threaded"):
            result = SerialReconstructor(iterations=1, lr=lr).reconstruct(
                tiny_dataset
            )
        assert result.volume.dtype == np.complex128  # dtype untouched

    def test_threaded_plan_cache_hit_rate(self, tiny_dataset, lr):
        """The batched probe-window transforms hit the plan cache almost
        every call (one signature per window shape)."""
        backend = get_backend("threaded")
        before = backend.plan_stats()
        SerialReconstructor(
            iterations=1, lr=lr, backend=backend
        ).reconstruct(tiny_dataset)
        after = backend.plan_stats()
        assert after["hits"] - before["hits"] > 10
        assert after["plans"] - before["plans"] <= 4
