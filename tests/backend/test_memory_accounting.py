"""Bytes-per-element accounting derives from the precision policy
everywhere (dataset spec, machine workspace, memory model, tracker,
engine) instead of hard-coding complex128."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.core.engine import NumericEngine
from repro.parallel.memory import MemoryTracker
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.memory_model import MemoryModel
from repro.physics.dataset import scaled_pbtio3_spec, small_pbtio3_spec


class TestDatasetSpecBytes:
    def test_volume_bytes_default_complex64(self):
        spec = small_pbtio3_spec()
        assert spec.volume_dtype == "complex64"
        assert spec.volume_bytes_total == 1536 * 1536 * 100 * 8

    def test_volume_bytes_follow_volume_dtype(self):
        from dataclasses import replace

        spec = replace(small_pbtio3_spec(), volume_dtype="complex128")
        assert spec.volume_bytes_total == 1536 * 1536 * 100 * 16

    def test_non_complex_volume_dtype_rejected(self):
        from dataclasses import replace

        with pytest.raises(ValueError, match="volume_dtype"):
            replace(small_pbtio3_spec(), volume_dtype="float32")

    def test_initial_object_dtype(self, tiny_dataset):
        assert tiny_dataset.initial_object().dtype == np.complex128
        assert (
            tiny_dataset.initial_object(dtype="complex64").dtype
            == np.complex64
        )

    def test_amplitude_dtype(self, tiny_dataset):
        assert tiny_dataset.amplitude(0).dtype == np.float64
        assert tiny_dataset.amplitude(0, np.float32).dtype == np.float32


class TestMachineWorkspace:
    def test_default_complex128_scratch(self):
        m = MachineSpec()
        assert m.workspace_bytes(1024) == 4 * 1024**2 * 16

    def test_single_precision_scratch_halves(self):
        m = MachineSpec(workspace_dtype="complex64")
        assert m.workspace_bytes(1024) == 4 * 1024**2 * 8

    def test_non_complex_workspace_rejected(self):
        with pytest.raises(ValueError, match="workspace_dtype"):
            MachineSpec(workspace_dtype="float64")


class TestMemoryModelPrecision:
    @pytest.fixture()
    def decomp(self, tiny_dataset):
        return decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, n_ranks=4
        )

    def test_default_volume_itemsize_from_spec(self, tiny_dataset, decomp):
        model = MemoryModel(tiny_dataset.spec)
        assert model.volume_itemsize == 8  # spec's complex64 storage

    def test_precision_parameter(self, tiny_dataset, decomp):
        lo = MemoryModel(tiny_dataset.spec, precision="complex64")
        hi = MemoryModel(tiny_dataset.spec, precision="complex128")
        assert lo.volume_itemsize == 8
        assert hi.volume_itemsize == 16
        b_lo = lo.rank_breakdown(decomp, 0)
        b_hi = hi.rank_breakdown(decomp, 0)
        assert b_lo.volume * 2 == b_hi.volume
        assert b_lo.gradient_buffer * 2 == b_hi.gradient_buffer
        assert b_lo.measurements == b_hi.measurements  # float16 either way

    def test_itemsize_override_still_wins(self, tiny_dataset):
        assert MemoryModel(tiny_dataset.spec, volume_itemsize=16).volume_itemsize == 16

    def test_both_overrides_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="not both"):
            MemoryModel(
                tiny_dataset.spec, volume_itemsize=8, precision="complex64"
            )


class TestMemoryModelProbeModes:
    """Mixed-state runs hold an ``(M, w, w)`` probe and sweep every mode
    through the FFT scratch — only those two terms scale with ``M``."""

    @pytest.fixture()
    def decomp(self, tiny_dataset):
        return decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, n_ranks=4
        )

    def test_probe_and_workspace_scale_by_modes(self, tiny_dataset, decomp):
        scalar = MemoryModel(tiny_dataset.spec)
        mixed = MemoryModel(tiny_dataset.spec, probe_modes=3)
        b1 = scalar.rank_breakdown(decomp, 0)
        b3 = mixed.rank_breakdown(decomp, 0)
        assert b3.probe == 3 * b1.probe
        assert b3.workspace == 3 * b1.workspace
        # Nothing else moves with the mode count.
        assert b3.volume == b1.volume
        assert b3.gradient_buffer == b1.gradient_buffer
        assert b3.measurements == b1.measurements
        assert b3.fixed == b1.fixed

    def test_none_and_one_are_the_scalar_model(self, tiny_dataset, decomp):
        default = MemoryModel(tiny_dataset.spec)
        explicit = MemoryModel(tiny_dataset.spec, probe_modes=1)
        assert (
            default.rank_breakdown(decomp, 0)
            == explicit.rank_breakdown(decomp, 0)
        )

    def test_nonpositive_modes_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="probe_modes"):
            MemoryModel(tiny_dataset.spec, probe_modes=0)


class TestTrackerTyped:
    def test_allocate_typed_bytes_per_element(self):
        tracker = MemoryTracker(1)
        tracker.allocate_typed(0, "buf64", (10, 10), np.complex64)
        tracker.allocate_typed(0, "buf128", (10, 10), np.complex128)
        breakdown = tracker.breakdown(0)
        assert breakdown["buf64"] == 100 * 8
        assert breakdown["buf128"] == 100 * 16

    def test_allocate_typed_matches_real_array(self):
        tracker = MemoryTracker(1)
        arr = np.zeros((3, 5, 7), dtype=np.complex64)
        tracker.allocate_typed(0, "typed", arr.shape, arr.dtype)
        tracker.allocate_array(0, "real", arr)
        b = tracker.breakdown(0)
        assert b["typed"] == b["real"] == arr.nbytes


class TestEngineCrossValidation:
    """The analytic model with the engine's precision matches what the
    engine *measures* — at both precisions (the seed test only covered
    complex128)."""

    @pytest.mark.parametrize("probe_modes", [None, 2])
    @pytest.mark.parametrize("dtype", ["complex128", "complex64"])
    def test_volume_bytes_match(self, tiny_dataset, dtype, probe_modes):
        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, n_ranks=4
        )
        engine = NumericEngine(
            tiny_dataset, decomp, lr=0.1, dtype=dtype,
            probe_modes=probe_modes,
        )
        model = MemoryModel(
            tiny_dataset.spec,
            precision=dtype,
            measurement_itemsize=np.dtype(
                tiny_dataset.spec.measurement_dtype
            ).itemsize,
            include_fixed=False,
            probe_modes=probe_modes,
        )
        for rank in range(decomp.n_ranks):
            measured = engine.memory.breakdown(rank)
            analytic = model.rank_breakdown(decomp, rank)
            assert measured["volume"] == analytic.volume
            assert measured["accbuf"] == analytic.gradient_buffer
            assert measured["measurements"] == analytic.measurements
            assert measured["probe"] == analytic.probe
