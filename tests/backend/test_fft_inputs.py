"""Regression tests: ``fft2c``/``ifft2c`` and the gradient accumulators
on non-contiguous and >2-D (batched) inputs, across every registered
backend that can run here.

The batched engine path feeds the transforms ``(B, window, window)``
stacks assembled from strided views (patch gathers, store reads), so
the contracts pinned here are load-bearing:

* arbitrary batch dimensions transform exactly like a Python loop of
  2-D transforms (per-item bit-identity — what makes batched execution
  fingerprint-identical to per-position);
* non-contiguous inputs produce the same values as their contiguous
  copies (no silent dependence on memory layout);
* the dtype-preservation contract holds regardless of layout or rank
  (no silent upcasts — ``complex64`` stays ``complex64``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backend_names, get_backend
from repro.utils.fftutils import fft2c, ifft2c


def _field(rng, shape, dtype):
    real = rng.normal(size=shape)
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        return (real + 1j * rng.normal(size=shape)).astype(dtype)
    return real.astype(dtype)


@pytest.fixture(params=available_backend_names())
def backend(request):
    return get_backend(request.param)


CDTYPES = [np.complex64, np.complex128]


class TestBatchedInputs:
    @pytest.mark.parametrize("cdtype", CDTYPES)
    @pytest.mark.parametrize("shape", [(5, 12, 12), (3, 2, 8, 8)])
    def test_batch_axes_match_per_item_loop(
        self, backend, rng, cdtype, shape
    ):
        stack = _field(rng, shape, cdtype)
        for fn in (fft2c, ifft2c):
            batched = fn(stack, backend)
            assert batched.shape == stack.shape
            assert batched.dtype == cdtype
            flat = stack.reshape(-1, *shape[-2:])
            looped = np.stack(
                [fn(item, backend) for item in flat]
            ).reshape(shape)
            np.testing.assert_array_equal(batched, looped)

    @pytest.mark.parametrize("cdtype", CDTYPES)
    def test_roundtrip_preserves_batch(self, backend, rng, cdtype):
        stack = _field(rng, (4, 16, 16), cdtype)
        out = ifft2c(fft2c(stack, backend), backend)
        assert out.dtype == cdtype
        rtol = 1e-5 if cdtype == np.complex64 else 1e-12
        np.testing.assert_allclose(out, stack, rtol=rtol, atol=1e-6)


class TestNonContiguousInputs:
    @pytest.mark.parametrize("cdtype", CDTYPES)
    def test_transposed_view(self, backend, rng, cdtype):
        base = _field(rng, (6, 10, 14), cdtype)
        view = base.transpose(0, 2, 1)  # (6, 14, 10), strided
        assert not view.flags.c_contiguous
        out = fft2c(view, backend)
        assert out.dtype == cdtype
        np.testing.assert_array_equal(
            out, fft2c(np.ascontiguousarray(view), backend)
        )

    @pytest.mark.parametrize("cdtype", CDTYPES)
    def test_strided_slice(self, backend, rng, cdtype):
        base = _field(rng, (9, 12, 12), cdtype)
        view = base[::2]
        assert not view.flags.c_contiguous or view.shape[0] == 1
        out = ifft2c(view, backend)
        assert out.dtype == cdtype
        np.testing.assert_array_equal(
            out, ifft2c(np.ascontiguousarray(view), backend)
        )

    def test_real_single_input_stays_single(self, backend, rng):
        # float32 (and the float16 measurement dtype) must come back
        # complex64, contiguous or not — the contract np.fft alone
        # breaks by silently upcasting.
        base = _field(rng, (4, 8, 8), np.float32).transpose(0, 2, 1)
        out = fft2c(base, backend)
        assert out.dtype == np.complex64


class TestGradientAccumulators:
    """The engine's scatter-accumulate must accept strided gradient
    stacks (batched results indexed per item are views)."""

    def test_scatter_accepts_noncontiguous_values(self, tiny_dataset, rng):
        from repro.core.engine import NumericEngine
        from repro.core.decomposition import decompose_gradient

        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, n_ranks=1
        )
        engine = NumericEngine(tiny_dataset, decomp, lr=0.01)
        state = engine.states[0]
        window = tiny_dataset.scan.window_of(0)
        shape = (
            tiny_dataset.n_slices, window.height, window.width
        )
        values = np.asarray(
            _field(rng, (shape[0], shape[2], shape[1]), np.complex128)
        ).transpose(0, 2, 1)
        assert not values.flags.c_contiguous

        expected = state.accbuf.copy()
        sl = window.intersect(state.ext).slices_in(state.ext)
        src = window.intersect(state.ext).slices_in(window)
        expected[:, sl[0], sl[1]] += np.ascontiguousarray(values)[
            :, src[0], src[1]
        ]
        engine._scatter(state.accbuf, state, window, values)
        np.testing.assert_array_equal(state.accbuf, expected)

    def test_batched_model_accepts_strided_patches(self, tiny_dataset, rng):
        """A gathered-but-transposed patch stack must evaluate exactly
        like its contiguous copy."""
        model = tiny_dataset.multislice_model()
        probe = tiny_dataset.probe.array
        w = model.window
        base = _field(
            rng, (3, model.n_slices, w, w), np.complex128
        ).transpose(0, 1, 3, 2)
        assert not base.flags.c_contiguous
        measured = np.stack(
            [np.asarray(tiny_dataset.amplitudes[i], dtype=np.float64)
             for i in range(3)]
        )
        strided = model.cost_and_gradient_batch(probe, base, measured)
        contiguous = model.cost_and_gradient_batch(
            probe, np.ascontiguousarray(base), measured
        )
        np.testing.assert_array_equal(
            strided.object_grads, contiguous.object_grads
        )
        np.testing.assert_array_equal(strided.costs, contiguous.costs)
