"""Refcounted backend leases: ``acquire_backend``/``release_backend``
pairs let concurrent jobs share one cached instance without one job's
completion closing the plan cache another job is mid-transform on."""

import threading

import numpy as np
import pytest

from repro.backend import (
    acquire_backend,
    backend_refcount,
    get_backend,
    release_backend,
    shutdown_backends,
)
from repro.backend.base import UnknownBackendError


@pytest.fixture(autouse=True)
def clean_registry():
    shutdown_backends()
    yield
    shutdown_backends()


class TestLeases:
    def test_acquire_returns_cached_instance(self):
        backend = acquire_backend("threaded")
        try:
            assert backend is get_backend("threaded")
            assert backend_refcount("threaded") == 1
        finally:
            release_backend("threaded")

    def test_release_of_last_lease_closes(self):
        backend = acquire_backend("threaded")
        release_backend("threaded")
        assert backend.closed
        assert backend_refcount("threaded") == 0

    def test_inner_release_keeps_instance_open(self):
        backend = acquire_backend("threaded")
        assert acquire_backend("threaded") is backend
        assert backend_refcount("threaded") == 2
        release_backend("threaded")  # one job done...
        assert not backend.closed  # ...the other still owns a lease
        backend.fft2(np.ones((4, 4), dtype=np.complex128))
        release_backend("threaded")
        assert backend.closed

    def test_legacy_release_without_lease_closes_immediately(self):
        # Pre-lease callers (use_backend cleanup) rely on this.
        backend = get_backend("threaded")
        backend.fft2(np.ones((4, 4), dtype=np.complex128))
        release_backend("threaded")
        assert backend.closed

    def test_release_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            release_backend("no-such-backend")

    def test_refcount_listing_only_shows_active(self):
        assert backend_refcount() == {}
        acquire_backend("numpy")
        try:
            assert backend_refcount() == {"numpy": 1}
        finally:
            release_backend("numpy")
        assert backend_refcount() == {}

    def test_shutdown_voids_stale_leases(self):
        # shutdown_backends is the big hammer; a later acquire starts a
        # fresh instance with a fresh count, not a stale one.
        acquire_backend("threaded")
        shutdown_backends()
        assert backend_refcount("threaded") == 0
        backend = acquire_backend("threaded")
        try:
            assert not backend.closed
            assert backend_refcount("threaded") == 1
        finally:
            release_backend("threaded")


class TestConcurrency:
    def test_concurrent_lease_cycles_never_hit_closed_plans(self):
        # N threads acquire, transform, release in a loop — the raced
        # interleaving that used to close a plan cache under a job
        # still using it.  With refcounts every transform must succeed.
        errors = []
        barrier = threading.Barrier(4)

        def job(seed):
            data = np.full((8, 8), seed + 1, dtype=np.complex128)
            barrier.wait()
            try:
                for _ in range(25):
                    acquire_backend("threaded")
                    try:
                        backend = get_backend("threaded")
                        out = backend.ifft2(backend.fft2(data))
                        np.testing.assert_allclose(out, data, atol=1e-9)
                    finally:
                        release_backend("threaded")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=job, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert backend_refcount() == {}

    def test_concurrent_plan_cache_access_is_safe(self):
        # Many threads sharing one leased instance stress the plan
        # cache's internal lock (lookup/create/evict under contention).
        backend = acquire_backend("threaded")
        errors = []
        barrier = threading.Barrier(4)

        def worker(tid):
            barrier.wait()
            try:
                for n in range(2, 12):
                    data = np.ones((n, n), dtype=np.complex128)
                    backend.fft2(data)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        release_backend("threaded")
        assert errors == []
        assert backend.closed
