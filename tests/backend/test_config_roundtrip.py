"""Config/CLI round-trip of the compute fields (backend/dtype)."""

import json

import numpy as np
import pytest

from repro.api import (
    ReconstructionConfig,
    SolverCapabilityError,
    register_solver,
    solver_from_config,
    unregister_solver,
)
from repro.backend import ENV_BACKEND, ENV_DTYPE


class TestConfigFields:
    def test_defaults_are_ambient(self):
        """Unset fields mean *ambient* (env / use_backend / process
        default), not a pinned backend — so scoping constructs still
        steer config-driven runs."""
        cfg = ReconstructionConfig("gd")
        assert cfg.backend is None
        assert cfg.dtype is None

    def test_to_dict_includes_compute_fields(self):
        payload = ReconstructionConfig("gd", backend="threaded").to_dict()
        assert payload["backend"] == "threaded"
        assert payload["dtype"] is None

    def test_json_round_trip(self):
        cfg = ReconstructionConfig(
            "gd",
            solver_params={"n_ranks": 4},
            backend="threaded",
            dtype="complex64",
        )
        assert ReconstructionConfig.from_json(cfg.to_json()) == cfg
        payload = json.loads(cfg.to_json())
        assert payload["backend"] == "threaded"
        assert payload["dtype"] == "complex64"

    def test_legacy_payload_without_compute_keys(self):
        """Pre-backend archives (no backend/dtype keys) load as ambient
        — i.e. the numpy/complex128 reference they were produced with,
        unless explicitly redirected."""
        cfg = ReconstructionConfig.from_dict(
            {"solver": "gd", "solver_params": {"n_ranks": 4}}
        )
        assert cfg.backend is None
        assert cfg.dtype is None

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="complex64"):
            ReconstructionConfig("gd", dtype="float32")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ReconstructionConfig("gd", backend="")

    def test_with_compute(self):
        cfg = ReconstructionConfig("gd", solver_params={"n_ranks": 4})
        new = cfg.with_compute(backend="threaded")
        assert new.backend == "threaded"
        assert new.dtype is None  # untouched
        assert new.solver_params["n_ranks"] == 4
        assert cfg.backend is None  # original untouched
        assert new.with_compute(dtype="complex64").dtype == "complex64"

    def test_derivations_preserve_compute_fields(self):
        cfg = ReconstructionConfig(
            "gd", backend="threaded", dtype="complex64"
        )
        assert cfg.with_solver_params(lr=0.1).backend == "threaded"
        assert cfg.with_run_params(resume="a.npz").dtype == "complex64"


class TestSolverInjection:
    def test_adapters_receive_compute_params(self, tiny_dataset):
        cfg = ReconstructionConfig(
            "serial",
            solver_params={"iterations": 1, "lr": 0.1},
            backend="threaded",
            dtype="complex64",
        )
        solver = solver_from_config(cfg)
        assert solver.inner.backend == "threaded"
        assert solver.inner.dtype == "complex64"

    def test_all_builtin_adapters_accept_compute_params(self):
        from repro.api import get_solver, solver_names

        for name in solver_names():
            accepted = get_solver(name).accepted_params
            assert {"backend", "dtype"} <= set(accepted), name

    def test_default_compute_ok_for_minimal_solver(self):
        @register_solver("minimal-test")
        class Minimal:
            def __init__(self):
                pass

            def reconstruct(self, dataset, *, observers=(), **kw):
                raise NotImplementedError

        try:
            cfg = ReconstructionConfig("minimal-test")
            assert isinstance(solver_from_config(cfg), Minimal)
        finally:
            unregister_solver("minimal-test")

    def test_nondefault_compute_rejected_for_minimal_solver(self):
        @register_solver("minimal-test")
        class Minimal:
            def __init__(self):
                pass

            def reconstruct(self, dataset, *, observers=(), **kw):
                raise NotImplementedError

        try:
            cfg = ReconstructionConfig("minimal-test", backend="threaded")
            with pytest.raises(SolverCapabilityError, match="backend"):
                solver_from_config(cfg)
        finally:
            unregister_solver("minimal-test")

    def test_conflicting_spellings_rejected(self):
        cfg = ReconstructionConfig(
            "serial",
            solver_params={"iterations": 1, "dtype": "complex128"},
            dtype="complex64",
        )
        with pytest.raises(ValueError, match="config field"):
            solver_from_config(cfg)

    def test_solver_params_spelling_still_works(self):
        """Direct solver_params spelling (no config field) reaches the
        adapter untouched."""
        cfg = ReconstructionConfig(
            "serial", solver_params={"iterations": 1, "dtype": "complex64"}
        )
        solver = solver_from_config(cfg)
        assert solver.inner.dtype == "complex64"


class TestAmbientConfigRuns:
    def test_use_backend_steers_default_config(self, tiny_dataset):
        """A config with unset compute fields follows use_backend —
        the scoping construct must reach config-driven runs."""
        import repro
        from repro.backend import (
            NumpyBackend,
            register_backend,
            unregister_backend,
            use_backend,
        )

        calls = []

        @register_backend("traced-test")
        class Traced(NumpyBackend):
            def fft2(self, a, norm="ortho"):
                calls.append(a.shape)
                return super().fft2(a, norm=norm)

        try:
            cfg = ReconstructionConfig(
                "serial", {"iterations": 1, "lr": 0.1}
            )
            with use_backend("traced-test"):
                repro.reconstruct(tiny_dataset, cfg)
            assert calls, "ambient backend never executed a transform"
        finally:
            unregister_backend("traced-test")

    def test_pinned_config_ignores_ambient(self, tiny_dataset):
        import repro
        from repro.backend import use_backend

        cfg = ReconstructionConfig(
            "serial", {"iterations": 1, "lr": 0.1},
            backend="numpy", dtype="complex64",
        )
        with use_backend("threaded"):
            result = repro.reconstruct(tiny_dataset, cfg)
        assert result.volume.dtype == np.complex64


class TestUnknownBackendAtRunTime:
    def test_reconstruct_fails_fast(self, tiny_dataset):
        import repro
        from repro.backend import UnknownBackendError

        cfg = ReconstructionConfig(
            "serial", solver_params={"iterations": 1}, backend="nope"
        )
        with pytest.raises(UnknownBackendError, match="nope"):
            repro.reconstruct(tiny_dataset, cfg)


class TestCli:
    @pytest.fixture()
    def dataset_path(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "ds.npz"
        assert main([
            "simulate", "--grid", "3x3", "--detector", "16",
            "--seed", "5", "--out", str(path),
        ]) == 0
        return path

    def test_backend_flags_recorded_in_archive(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.io import load_result

        out = tmp_path / "rec.npz"
        rc = main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "serial", "--iterations", "2",
            "--backend", "threaded", "--dtype", "complex64",
            "--out", str(out),
        ])
        assert rc == 0
        assert "backend: threaded (complex64)" in capsys.readouterr().out
        archive = load_result(out)
        assert archive.config.backend == "threaded"
        assert archive.config.dtype == "complex64"
        assert archive.volume.dtype == np.complex64

    def test_default_flags_record_ambient(
        self, dataset_path, tmp_path, monkeypatch
    ):
        from repro.cli import main
        from repro.io import load_result

        monkeypatch.delenv(ENV_BACKEND, raising=False)
        monkeypatch.delenv(ENV_DTYPE, raising=False)
        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "serial", "--iterations", "1",
            "--out", str(out),
        ]) == 0
        archive = load_result(out)
        assert archive.config.backend == "numpy"
        assert archive.config.dtype == "complex128"

    def test_config_file_with_backend_override(
        self, dataset_path, tmp_path, capsys
    ):
        """--backend on a --config run overrides for replay, like
        --resume does."""
        from repro.cli import main
        from repro.io import load_result

        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "solver": "serial",
            "solver_params": {"iterations": 1, "lr": 0.1},
            "backend": "numpy",
            "dtype": "complex128",
        }))
        out = tmp_path / "rec.npz"
        assert main([
            "reconstruct", "--dataset", str(dataset_path),
            "--config", str(config_path),
            "--backend", "threaded",
            "--out", str(out),
        ]) == 0
        archive = load_result(out)
        assert archive.config.backend == "threaded"
        assert archive.config.dtype == "complex128"  # untouched

    def test_unavailable_backend_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.backend import CupyBackend
        from repro.cli import main

        if CupyBackend.available():  # pragma: no cover - GPU machines
            pytest.skip("cupy available; unavailability not exercisable")
        rc = main([
            "reconstruct", "--dataset", str(dataset_path),
            "--algorithm", "serial", "--iterations", "1",
            "--backend", "cupy",
            "--out", str(tmp_path / "rec.npz"),
        ])
        assert rc == 2
        assert "not available" in capsys.readouterr().err
