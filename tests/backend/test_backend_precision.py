"""PrecisionPolicy: resolution, itemsizes, ambient defaults."""

import numpy as np
import pytest

from repro.backend import (
    DOUBLE,
    ENV_DTYPE,
    SINGLE,
    PrecisionPolicy,
    default_dtype_name,
    resolve_precision,
)


class TestPolicies:
    def test_double_reference(self):
        assert DOUBLE.name == "complex128"
        assert DOUBLE.complex_dtype == np.complex128
        assert DOUBLE.real_dtype == np.float64
        assert DOUBLE.complex_itemsize == 16
        assert DOUBLE.real_itemsize == 8

    def test_single_fast_path(self):
        assert SINGLE.name == "complex64"
        assert SINGLE.complex_dtype == np.complex64
        assert SINGLE.real_dtype == np.float32
        assert SINGLE.complex_itemsize == 8
        assert SINGLE.real_itemsize == 4

    def test_from_name(self):
        assert PrecisionPolicy.from_name("complex128") is DOUBLE
        assert PrecisionPolicy.from_name("complex64") is SINGLE

    def test_policy_passthrough(self):
        assert PrecisionPolicy.from_name(SINGLE) is SINGLE
        assert resolve_precision(DOUBLE) is DOUBLE

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="complex64"):
            PrecisionPolicy.from_name("float32")


class TestAmbientResolution:
    def test_default_is_double(self, monkeypatch):
        monkeypatch.delenv(ENV_DTYPE, raising=False)
        assert resolve_precision(None) is DOUBLE
        assert default_dtype_name() == "complex128"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_DTYPE, "complex64")
        assert resolve_precision(None) is SINGLE
        assert default_dtype_name() == "complex64"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_DTYPE, "complex64")
        assert resolve_precision("complex128") is DOUBLE
