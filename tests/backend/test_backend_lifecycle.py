"""Backend lifecycle: explicit shutdown, bounded plan cache, registry
eviction — the long-lived-service guarantees."""

import numpy as np
import pytest

from repro.backend import (
    NumpyBackend,
    ThreadedFFTBackend,
    get_backend,
    register_backend,
    release_backend,
    shutdown_backends,
    unregister_backend,
)


class TestClose:
    def test_close_refuses_further_transforms(self):
        backend = ThreadedFFTBackend(workers=1)
        backend.fft2(np.ones((4, 4), dtype=np.complex128))
        backend.close()
        assert backend.closed
        with pytest.raises(RuntimeError, match="closed"):
            backend.fft2(np.ones((4, 4), dtype=np.complex128))
        with pytest.raises(RuntimeError, match="closed"):
            backend.ifft2(np.ones((4, 4), dtype=np.complex128))

    def test_close_is_idempotent_and_drops_plans(self):
        backend = ThreadedFFTBackend(workers=1)
        backend.fft2(np.ones((4, 4), dtype=np.complex128))
        assert backend.plan_stats()["plans"] == 1
        backend.close()
        backend.close()
        assert backend.plan_stats()["plans"] == 0

    def test_context_manager_closes(self):
        with ThreadedFFTBackend(workers=1) as backend:
            backend.fft2(np.ones((4, 4), dtype=np.complex128))
        assert backend.closed

    def test_base_close_is_noop(self):
        backend = NumpyBackend()
        with backend:
            pass
        # Planless backends keep working; close is a harmless no-op.
        backend.fft2(np.ones((2, 2), dtype=np.complex128))


class TestBoundedPlanCache:
    def test_lru_eviction_beyond_bound(self):
        backend = ThreadedFFTBackend(workers=1, max_plans=2)
        for n in (2, 3, 4, 5):
            backend.fft2(np.ones((n, n), dtype=np.complex128))
        stats = backend.plan_stats()
        assert stats["plans"] == 2
        assert stats["evictions"] == 2

    def test_lru_order_refreshed_on_hit(self):
        backend = ThreadedFFTBackend(workers=1, max_plans=2)
        a = np.ones((2, 2), dtype=np.complex128)
        b = np.ones((3, 3), dtype=np.complex128)
        backend.fft2(a)
        backend.fft2(b)
        backend.fft2(a)  # refresh a; b is now LRU
        backend.fft2(np.ones((4, 4), dtype=np.complex128))  # evicts b
        backend.fft2(a)
        stats = backend.plan_stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2  # both re-uses of a's plan

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_plans"):
            ThreadedFFTBackend(max_plans=0)


class TestRegistryLifecycle:
    def test_release_closes_cached_instance(self):
        closed = []

        @register_backend("lifecycle-test")
        class Tracked(NumpyBackend):
            def close(self):
                closed.append(self)

        try:
            first = get_backend("lifecycle-test")
            release_backend("lifecycle-test")
            assert closed == [first]
            # Registration survives; the next lookup is a fresh instance.
            second = get_backend("lifecycle-test")
            assert second is not first
        finally:
            unregister_backend("lifecycle-test")
        assert second in closed  # unregister closed it too

    def test_unregister_closes_cached_instance(self):
        closed = []

        @register_backend("lifecycle-test")
        class Tracked(NumpyBackend):
            def close(self):
                closed.append(self)

        instance = get_backend("lifecycle-test")
        unregister_backend("lifecycle-test")
        assert closed == [instance]

    def test_overwrite_registration_closes_old_instance(self):
        closed = []

        @register_backend("lifecycle-test")
        class Old(NumpyBackend):
            def close(self):
                closed.append("old")

        try:
            get_backend("lifecycle-test")

            @register_backend("lifecycle-test", overwrite=True)
            class New(NumpyBackend):
                pass

            assert closed == ["old"]
        finally:
            unregister_backend("lifecycle-test")

    def test_shutdown_backends_sweeps_cache(self):
        closed = []

        @register_backend("lifecycle-test")
        class Tracked(NumpyBackend):
            def close(self):
                closed.append(self)

        try:
            get_backend("lifecycle-test")
            shutdown_backends()
            assert len(closed) == 1
            # Cache rebuilt on demand afterwards.
            assert get_backend("lifecycle-test") is not closed[0]
        finally:
            unregister_backend("lifecycle-test")

    def test_release_unknown_backend_errors(self):
        from repro.backend import UnknownBackendError

        with pytest.raises(UnknownBackendError):
            release_backend("does-not-exist")

    def test_user_closed_cached_instance_is_rebuilt(self):
        """Closing the registry's cached instance must not poison later
        resolutions of the name — get_backend rebuilds a live one."""
        first = get_backend("threaded")
        first.close()
        second = get_backend("threaded")
        assert second is not first
        assert not second.closed
        second.fft2(np.ones((4, 4), dtype=np.complex128))
