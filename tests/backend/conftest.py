"""Backend-suite fixtures.

The parity tests compare *explicit* precisions against the documented
complex128 reference, so the ambient ``REPRO_DTYPE`` environment (a
knob for running the whole tier-1 suite at another width) must not
redefine the unpinned reference side of those comparisons.
``REPRO_BACKEND`` is deliberately left live: CI runs this suite under
the threaded backend, and every backend-sensitive assertion pins its
backend explicitly.
"""

import pytest

from repro.backend import ENV_DTYPE


@pytest.fixture(autouse=True)
def _pin_reference_precision(monkeypatch):
    monkeypatch.delenv(ENV_DTYPE, raising=False)
