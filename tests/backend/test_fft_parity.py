"""Transform-level parity across backends and precisions.

The guarantees tested here are tiered deliberately:

* **numpy backend ≡ np.fft, bit for bit, at complex128** — this is the
  default path, and it is what makes every pre-backend result
  reproducible exactly.
* **threaded ≈ numpy at complex128 to machine epsilon** — scipy's
  pocketfft uses differently-vectorized kernels, so floating-point
  operations reorder; eps-level agreement is the physically meaningful
  (and achievable) contract.
* **complex64 stays complex64 on every backend** — the dtype-preservation
  repair (``np.fft`` alone upcasts silently).
"""

import numpy as np
import pytest

from repro.backend import available_backend_names, get_backend
from repro.utils.fftutils import fft2c, ifft2c

AVAILABLE = [n for n in available_backend_names()]
DTYPES = [np.complex64, np.complex128]


@pytest.fixture
def field(rng):
    return (
        rng.normal(size=(3, 24, 24)) + 1j * rng.normal(size=(3, 24, 24))
    )


class TestNumpyBitIdentity:
    """The default path must reproduce raw ``np.fft`` exactly."""

    def test_fft2_bit_identical(self, field):
        b = get_backend("numpy")
        expected = np.fft.fft2(field, norm="ortho")
        out = b.fft2(field)
        assert out.dtype == np.complex128
        assert np.array_equal(
            out.view(np.float64), expected.view(np.float64)
        )

    def test_ifft2_bit_identical(self, field):
        b = get_backend("numpy")
        expected = np.fft.ifft2(field, norm="ortho")
        assert np.array_equal(
            b.ifft2(field).view(np.float64), expected.view(np.float64)
        )

    def test_fft2c_bit_identical_to_pre_backend_form(self, field):
        """fft2c with the default backend == the historical hard-wired
        shift/transform/shift composition, bitwise."""
        expected = np.fft.fftshift(
            np.fft.fft2(np.fft.ifftshift(field, axes=(-2, -1)), norm="ortho"),
            axes=(-2, -1),
        )
        assert np.array_equal(
            fft2c(field, backend="numpy").view(np.float64),
            expected.view(np.float64),
        )


class TestThreadedParity:
    def test_matches_numpy_at_eps_level(self, field):
        th = get_backend("threaded")
        npb = get_backend("numpy")
        scale = np.abs(npb.fft2(field)).max()
        assert np.abs(th.fft2(field) - npb.fft2(field)).max() < 1e-12 * max(scale, 1.0)
        assert np.abs(th.ifft2(field) - npb.ifft2(field)).max() < 1e-12 * max(scale, 1.0)

    def test_plan_cache_reuse(self, field):
        from repro.backend import ThreadedFFTBackend

        b = ThreadedFFTBackend(workers=2)
        assert b.plan_stats() == {"plans": 0, "hits": 0, "evictions": 0}
        b.fft2(field)
        b.fft2(field)
        b.ifft2(field)
        stats = b.plan_stats()
        assert stats["plans"] == 1  # one signature
        assert stats["hits"] == 2  # second fft2 + the ifft2

    def test_worker_override_validated(self):
        from repro.backend import ThreadedFFTBackend

        with pytest.raises(ValueError, match="workers"):
            ThreadedFFTBackend(workers=0)
        assert ThreadedFFTBackend(workers=3).workers == 3


class TestDtypePreservation:
    @pytest.mark.parametrize("backend", AVAILABLE)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_complex_in_complex_out(self, field, backend, dtype):
        b = get_backend(backend)
        x = field.astype(dtype)
        assert b.fft2(x).dtype == dtype
        assert b.ifft2(x).dtype == dtype

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_float32_promotes_to_complex64(self, rng, backend):
        b = get_backend(backend)
        x = rng.normal(size=(8, 8)).astype(np.float32)
        assert b.fft2(x).dtype == np.complex64

    def test_single_precision_values_close_to_double(self, field):
        b = get_backend("numpy")
        lo = b.fft2(field.astype(np.complex64))
        hi = b.fft2(field)
        np.testing.assert_allclose(lo, hi, atol=1e-5)


class TestCenteredTransforms:
    """fft2c/ifft2c invariants hold on every available backend at both
    precisions (single precision at single-precision tolerance)."""

    @pytest.mark.parametrize("backend", AVAILABLE)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_roundtrip(self, field, backend, dtype):
        x = field.astype(dtype)
        atol = 1e-12 if dtype == np.complex128 else 1e-5
        out = ifft2c(fft2c(x, backend), backend)
        assert out.dtype == dtype
        np.testing.assert_allclose(out, x, atol=atol)

    @pytest.mark.parametrize("backend", AVAILABLE)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_unitarity(self, field, backend, dtype):
        x = field.astype(dtype)
        rtol = 1e-12 if dtype == np.complex128 else 1e-5
        energy_in = float(np.sum(np.abs(x) ** 2))
        energy_out = float(np.sum(np.abs(fft2c(x, backend)) ** 2))
        assert energy_out == pytest.approx(energy_in, rel=rtol)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_adjoint_identity(self, rng, backend):
        x = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        y = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        lhs = np.vdot(fft2c(x, backend), y)
        rhs = np.vdot(x, ifft2c(y, backend))
        assert lhs == pytest.approx(rhs)
