"""JobQueue: deterministic priority scheduling with aging fairness."""

import threading

import pytest

from repro.service import JobQueue, QueueClosedError


def drain(queue):
    items = []
    while len(queue):
        items.append(queue.get(timeout=0))
    return items


class TestOrdering:
    def test_fifo_at_equal_priority(self):
        q = JobQueue()
        for item in "abc":
            q.put(item)
        assert drain(q) == ["a", "b", "c"]

    def test_higher_priority_first(self):
        q = JobQueue()
        q.put("low", priority=0)
        q.put("high", priority=5)
        q.put("mid", priority=2)
        assert drain(q) == ["high", "mid", "low"]

    def test_tie_breaks_by_submission_order(self):
        q = JobQueue()
        q.put("first", priority=3)
        q.put("second", priority=3)
        assert drain(q) == ["first", "second"]

    def test_snapshot_matches_dequeue_order(self):
        q = JobQueue()
        q.put("low", priority=0)
        q.put("high", priority=1)
        q.put("low2", priority=0)
        assert q.snapshot() == ["high", "low", "low2"]
        assert drain(q) == ["high", "low", "low2"]


class TestAging:
    def test_passed_over_entry_gains_priority(self):
        # age_after=1: one skip lifts the early entry a full level, so
        # it beats the priority-1 stream on the second dequeue.
        q = JobQueue(age_after=1)
        q.put("old", priority=0)
        q.put("new1", priority=1)
        q.put("new2", priority=1)
        assert q.get(timeout=0) == "new1"  # old is passed over -> ages
        assert q.get(timeout=0) == "old"
        assert q.get(timeout=0) == "new2"

    def test_no_starvation_under_priority_stream(self):
        # A priority-0 job against a steady stream of priority-1
        # arrivals must still dequeue in bounded time.
        q = JobQueue(age_after=2)
        q.put("starved", priority=0)
        order = []
        for i in range(8):
            q.put(f"hi{i}", priority=1)
            order.append(q.get(timeout=0))
        assert "starved" in order

    def test_age_after_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(age_after=0)


class TestLifecycle:
    def test_get_timeout_returns_none(self):
        q = JobQueue()
        assert q.get(timeout=0.01) is None

    def test_put_after_close_raises(self):
        q = JobQueue()
        q.close()
        with pytest.raises(QueueClosedError):
            q.put("x")

    def test_closed_queue_still_drains(self):
        q = JobQueue()
        q.put("a")
        q.put("b")
        q.close()
        assert q.get(timeout=0) == "a"
        assert q.get(timeout=0) == "b"
        assert q.get(timeout=0) is None

    def test_close_wakes_blocked_getter(self):
        q = JobQueue()
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(q.get(timeout=10.0))
        )
        thread.start()
        q.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert seen == [None]

    def test_put_wakes_blocked_getter(self):
        q = JobQueue()
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(q.get(timeout=10.0))
        )
        thread.start()
        q.put("payload")
        thread.join(timeout=5.0)
        assert seen == ["payload"]


class TestInFlight:
    def test_get_counts_in_flight_until_task_done(self):
        q = JobQueue()
        q.put("a")
        assert q.in_flight == 0
        assert q.get(timeout=0) == "a"
        # The item left the queue but the worker hasn't acknowledged it:
        # an observer summing len + in_flight still sees it.
        assert len(q) == 0
        assert q.in_flight == 1
        q.task_done()
        assert q.in_flight == 0

    def test_timeout_get_does_not_count(self):
        q = JobQueue()
        assert q.get(timeout=0.01) is None
        assert q.in_flight == 0

    def test_extra_task_done_raises(self):
        q = JobQueue()
        with pytest.raises(ValueError):
            q.task_done()
