"""Service-side observability: every settled job directory carries a
``telemetry.json``, written before waiters wake, and the progress
mirror reports the pinned compute and the live phase."""

from __future__ import annotations

import json

from repro.service import JobState
from repro.service import jobs as jobstore
from repro.service.progress import ProgressUpdate, read_progress

from tests.service.service_configs import gd_config

WAIT = 120.0


def _telemetry_payload(service, handle):
    path = jobstore.job_dir(service.root, handle.job_id) / "telemetry.json"
    assert path.is_file(), (
        "telemetry.json must exist by the time wait() returns"
    )
    return json.loads(path.read_text())


class TestJobTelemetryFile:
    def test_traced_job_writes_summary(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(
            tiny_dataset, gd_config(tiny_lr).with_telemetry()
        )
        assert handle.wait(timeout=WAIT) == JobState.DONE
        payload = _telemetry_payload(service, handle)
        assert payload["schema"] == "repro-job-telemetry/1"
        assert payload["job_id"] == handle.job_id
        assert payload["state"] == JobState.DONE
        assert payload["queue"]["wait_s"] >= 0.0
        assert payload["queue"]["run_s"] >= 0.0
        summary = payload["summary"]
        assert summary["phases"]
        assert summary["counters"]["queue.wait.seconds"] >= 0.0

    def test_untraced_job_writes_null_summary(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        payload = _telemetry_payload(service, handle)
        assert payload["summary"] is None
        assert payload["queue"]["wait_s"] >= 0.0

    def test_failed_job_still_settles_with_telemetry(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        config = gd_config(tiny_lr).with_data(
            data_source="/nonexistent/meas.npz"
        ).with_telemetry()
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        assert handle.wait(timeout=WAIT) == JobState.FAILED
        payload = _telemetry_payload(service, handle)
        assert payload["state"] == JobState.FAILED

    def test_archive_carries_telemetry_for_stats(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        from repro.obs.export import load_stats

        service = service_factory(workers=1)
        handle = service.submit(
            tiny_dataset, gd_config(tiny_lr).with_telemetry()
        )
        assert handle.wait(timeout=WAIT) == JobState.DONE
        # Both read-out paths resolve: the job dir and the result archive.
        job_summary = load_stats(jobstore.job_dir(service.root, handle.job_id))
        assert job_summary["counters"]["job.queue_wait_s"] >= 0.0
        assert handle.result().telemetry is not None


class TestProgressMirror:
    def test_updates_carry_pinned_compute_and_phase(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(
            tiny_dataset, gd_config(tiny_lr).with_telemetry()
        )
        assert handle.wait(timeout=WAIT) == JobState.DONE
        update = read_progress(
            jobstore.job_dir(service.root, handle.job_id) / "progress.json"
        )
        assert update is not None
        assert update.backend == "numpy"
        assert update.dtype == "complex128"
        # Traced job: the mirror labels the span that was open at
        # flush time (always the per-iteration span here).
        assert update.phase is not None

    def test_untraced_updates_have_null_phase(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        update = read_progress(
            jobstore.job_dir(service.root, handle.job_id) / "progress.json"
        )
        assert update.phase is None
        assert update.backend == "numpy"

    def test_pre_observability_mirrors_still_parse(self):
        # progress.json written before these fields existed must load.
        update = ProgressUpdate(
            job_id="j-old", iteration=3, total=6, cost=1.0,
            elapsed_s=0.5, iter_per_s=6.0, eta_s=0.5,
        )
        assert update.backend is None
        assert update.dtype is None
        assert update.phase is None
