"""ReconstructionService lifecycle: concurrent jobs are
fingerprint-identical to serial ``repro.reconstruct()`` runs, state
transitions are durable, and a restarted service picks up where its
predecessor stopped."""

import pytest

from repro import reconstruct
from repro.api import ReconstructionConfig
from repro.data import write_store
from repro.io import save_result
from repro.service import (
    JobError,
    JobState,
    ReconstructionService,
    create_job,
    load_record,
)
from repro.service import jobs as jobstore

from tests.helpers import result_fingerprint
from tests.service.service_configs import gd_config, hve_config

WAIT = 120.0  # generous settle bound for CI machines


class TestSubmitRun:
    def test_job_matches_direct_reconstruction(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        config = gd_config(tiny_lr)
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        assert handle.wait(timeout=WAIT) == JobState.DONE
        archive = handle.result()
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(archive) == result_fingerprint(direct)

    def test_concurrent_jobs_match_serial_runs(
        self, tiny_dataset, tiny_lr, service_factory, tmp_path
    ):
        # The acceptance gate: more jobs than workers, mixed solvers and
        # modes, mixed data sources — every archive fingerprint-identical
        # to its own serial run.
        store_path = write_store(
            tmp_path / "meas.npz", tiny_dataset, chunk_size=4
        )
        configs = [
            gd_config(tiny_lr, mode="synchronous"),
            gd_config(tiny_lr, mode="alg1"),
            hve_config(tiny_lr),
            gd_config(tiny_lr, mode="synchronous").with_data(
                data_source=str(store_path), batch_size=3
            ),
        ]
        service = service_factory(workers=2)
        handles = [service.submit(tiny_dataset, c) for c in configs]
        for handle in handles:
            state = handle.wait(timeout=WAIT)
            assert state == JobState.DONE, handle.record().error
        for handle, config in zip(handles, configs):
            direct = reconstruct(tiny_dataset, config)
            assert result_fingerprint(handle.result()) == \
                result_fingerprint(direct), config.solver
        assert service.stats()["done"] == 4

    def test_concurrent_process_executor_jobs(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # Regression: forking rank workers from a service worker thread
        # while a sibling thread holds multiprocessing's resource-tracker
        # lock used to deadlock the child on its first shm attach.  Three
        # process-executor jobs over two threads exercise exactly that
        # overlap.
        configs = [
            gd_config(tiny_lr, iterations=3).with_runtime(executor="process")
            for _ in range(3)
        ]
        service = service_factory(workers=2)
        handles = [service.submit(tiny_dataset, c) for c in configs]
        for handle in handles:
            state = handle.wait(timeout=WAIT)
            assert state == JobState.DONE, handle.record().error
        direct = reconstruct(tiny_dataset, configs[0])
        for handle in handles:
            assert result_fingerprint(handle.result()) == \
                result_fingerprint(direct)

    def test_dataset_by_path_is_referenced_in_place(
        self, tiny_dataset, tiny_lr, service_factory, tmp_path
    ):
        from repro.io import save_dataset

        path = save_dataset(tmp_path / "ds.npz", tiny_dataset)
        service = service_factory(workers=1)
        handle = service.submit(path, gd_config(tiny_lr, iterations=2))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        # No dataset copy in the job directory for path submissions.
        job_dir = jobstore.job_dir(service.root, handle.job_id)
        assert not (job_dir / "dataset.npz").exists()

    def test_progress_stream_covers_every_iteration(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        updates = handle.progress().history()
        assert [u.iteration for u in updates] == list(range(1, 7))
        assert updates[-1].fraction == 1.0
        assert handle.progress().closed

    def test_priority_orders_queued_jobs(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # One worker, three jobs: the high-priority submission runs
        # before the earlier low-priority one.
        service = service_factory(workers=1)
        slow = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=4))
        low = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        high = service.submit(
            tiny_dataset, gd_config(tiny_lr, iterations=2), priority=5
        )
        for handle in (slow, low, high):
            assert handle.wait(timeout=WAIT) == JobState.DONE
        assert high.record().started_at <= low.record().started_at


class TestValidation:
    def test_submit_requires_iterations(self, tiny_dataset, service_factory):
        service = service_factory(workers=1)
        config = ReconstructionConfig(
            solver="gd", solver_params={"n_ranks": 4, "lr": 0.01}
        )
        with pytest.raises(JobError, match="iterations"):
            service.submit(tiny_dataset, config)

    def test_submit_rejects_resume_run_param(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        config = gd_config(tiny_lr).with_run_params(resume="somewhere.npz")
        with pytest.raises(JobError, match="resume"):
            service.submit(tiny_dataset, config)

    def test_submit_after_close_raises(self, tiny_dataset, tiny_lr, tmp_path):
        service = ReconstructionService(tmp_path / "svc", workers=1)
        service.close()
        with pytest.raises(JobError, match="closed"):
            service.submit(tiny_dataset, gd_config(tiny_lr))

    def test_result_of_unfinished_job_raises(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        # Created directly in the root, never enqueued: stays QUEUED.
        create_job(
            service.root, tiny_dataset, gd_config(tiny_lr), job_id="inert"
        )
        with pytest.raises(JobError, match="not DONE"):
            service.result("inert")

    def test_failed_job_reports_error_and_is_resumable(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        # Deterministic failure: the job's dataset file vanishes before
        # any service runs it.
        root = tmp_path / "jobs"
        record = create_job(
            root, tiny_dataset, gd_config(tiny_lr), job_id="doomed"
        )
        jobstore.dataset_path_of(root, record).unlink()
        with ReconstructionService(root, workers=1) as service:
            assert service.wait("doomed", timeout=WAIT) == JobState.FAILED
        record = load_record(root, "doomed")
        assert record.error and "dataset" in record.error.lower()
        assert record.state in JobState.RESUMABLE

    def test_bad_worker_counts_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ReconstructionService(tmp_path / "svc", workers=0)
        with pytest.raises(ValueError):
            ReconstructionService(tmp_path / "svc", checkpoint_every=0)


class TestRecovery:
    def test_restart_picks_up_queued_jobs(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        root = tmp_path / "jobs"
        config = gd_config(tiny_lr)
        record = create_job(root, tiny_dataset, config, job_id="offline")
        assert record.state == JobState.QUEUED
        with ReconstructionService(root, workers=1) as service:
            assert service.stats()["recovered"] == 1
            assert service.wait("offline", timeout=WAIT) == JobState.DONE
            archive = service.result("offline")
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(archive) == result_fingerprint(direct)

    def test_crashed_running_job_resumes_from_checkpoint(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        # Simulate a service that died mid-job: record left RUNNING,
        # a periodic checkpoint on disk.  The next service over the
        # root must consolidate the checkpoint and finish the job —
        # fingerprint-identical to an uninterrupted run.
        root = tmp_path / "jobs"
        config = gd_config(tiny_lr, iterations=6)
        record = create_job(root, tiny_dataset, config, job_id="crashed")
        partial = reconstruct(
            tiny_dataset, config.with_solver_params(iterations=3)
        )
        ckpt_dir = jobstore.checkpoints_dir(root, "crashed")
        ckpt_dir.mkdir(parents=True)
        save_result(
            ckpt_dir / "checkpoint_iter0003.npz", partial, config=config
        )
        record.state = JobState.RUNNING
        jobstore.save_record(root, record)

        with ReconstructionService(root, workers=1) as service:
            assert service.wait("crashed", timeout=WAIT) == JobState.DONE
            archive = service.result("crashed")
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(archive) == result_fingerprint(direct)
        assert load_record(root, "crashed").resumes == 1

    def test_list_jobs_is_submission_ordered(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        first = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        second = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        for handle in (first, second):
            assert handle.wait(timeout=WAIT) == JobState.DONE
        listed = [r.job_id for r in service.list_jobs()]
        assert listed == [first.job_id, second.job_id]


class TestRootLock:
    def test_one_service_per_root(self, tmp_path):
        # A second live service over the same root would re-queue (and
        # double-run) the first one's RUNNING jobs at its recovery scan.
        root = tmp_path / "jobs"
        with ReconstructionService(root, workers=1):
            with pytest.raises(JobError, match="already serving"):
                ReconstructionService(root, workers=1)
        # The lock dies with the holder: a successor takes the root over.
        ReconstructionService(root, workers=1).close()

    def test_distinct_roots_coexist(self, service_factory):
        service_factory(workers=1)
        service_factory(workers=1)  # different root — no contention


class TestWorkerResilience:
    def test_unknown_backend_fails_job_not_worker(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # Submissions arrive cross-process with raw registry names; a
        # bad one must settle FAILED — not escape _run_job and kill the
        # worker thread with the record stuck RUNNING.
        service = service_factory(workers=1)
        bad_config = gd_config(tiny_lr, iterations=2).with_compute(
            backend="no-such-backend"
        )
        bad = service.submit(tiny_dataset, bad_config)
        assert bad.wait(timeout=WAIT) == JobState.FAILED
        assert "no-such-backend" in bad.record().error
        # The worker survived: the next job on the same thread completes.
        good = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        assert good.wait(timeout=WAIT) == JobState.DONE


class TestComputePinning:
    def test_ambient_compute_is_pinned_at_run_time(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # A config submitted with backend=dtype=None must not float
        # with the process default forever: the first leg stamps the
        # resolved names into the record and every archive it writes,
        # so later resumes are fingerprint-checked against what ran.
        from repro.backend.base import default_backend_name, default_dtype_name

        expected_backend = default_backend_name()
        expected_dtype = default_dtype_name()
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        record = handle.record()
        assert record.config["backend"] == expected_backend
        assert record.config["dtype"] == expected_dtype
        archive = handle.result()
        assert archive.config.backend == expected_backend
        assert archive.config.dtype == expected_dtype


class TestProgressEviction:
    def test_settled_streams_evicted_past_cap(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1, progress_cap=2)
        handles = [
            service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
            for _ in range(3)
        ]
        for handle in handles:
            assert handle.wait(timeout=WAIT) == JobState.DONE
        # One worker settles in submission order: the oldest settled
        # job's stream is gone, the newest two survive, and the durable
        # mirror remains for the evicted one.
        assert handles[0].progress() is None
        assert handles[1].progress() is not None
        assert handles[2].progress() is not None
        from repro.service import read_progress

        mirror = jobstore.job_dir(
            service.root, handles[0].job_id
        ) / "progress.json"
        assert read_progress(mirror).iteration == 2
