"""Cancel/pause/resume: interrupted jobs leave resumable checkpoints,
and for the exactly-resumable solvers (gd ``mode="synchronous"``, hve)
the resumed job's final archive is fingerprint-identical to an
uninterrupted run — the acceptance gate of the service layer.

gd ``mode="alg1"`` is deliberately absent from the bit-exact cases: its
per-rank halo copies diverge from the stitched volume after local
updates, so resuming from a stitched checkpoint is a warm start, not a
bit-exact continuation (documented in repro.service.jobs).
"""

import pytest

from repro import reconstruct
from repro.service import JobError, JobState, load_record, prepare_resume
from repro.service import jobs as jobstore

from tests.helpers import result_fingerprint
from tests.service.service_configs import gd_config, hve_config

WAIT = 120.0


def submit_cancel_resume(service, dataset, config, stop_at):
    """Run the interrupted path: cancel once ``stop_at`` iterations are
    banked, then resume to completion; returns the final archive."""
    handle = service.submit(dataset, config)
    handle.cancel(at_iteration=stop_at)
    assert handle.wait(timeout=WAIT) == JobState.CANCELLED, \
        handle.record().error
    assert handle.record().iterations_done == stop_at
    handle.resume()
    assert handle.wait(timeout=WAIT) == JobState.DONE, handle.record().error
    return handle


class TestBitExactResume:
    def test_gd_synchronous(self, tiny_dataset, tiny_lr, service_factory):
        config = gd_config(tiny_lr, iterations=8)
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 3)
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_hve(self, tiny_dataset, tiny_lr, service_factory):
        config = hve_config(tiny_lr, iterations=8)
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 3)
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_gd_with_probe_refinement(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # refine_probe makes the probe part of the iterated state; the
        # checkpoint carries it and the resume forwards it, so the
        # interrupted run still matches bit for bit (probe included in
        # the fingerprint).
        config = gd_config(tiny_lr, iterations=8, refine_probe=True)
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 4)
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_gd_mixed_state(self, tiny_dataset, tiny_lr, service_factory):
        # The checkpoint archive carries the full (M, w, w) mode stack,
        # so a cancelled mixed-state job resumes bit for bit — the mode
        # axis survives the service round trip.
        config = gd_config(
            tiny_lr, iterations=8, refine_probe=True
        ).with_probe(probe_modes=2)
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 4)
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)
        assert handle.result().probe.shape[0] == 2

    def test_traffic_counters_are_additive(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        config = gd_config(tiny_lr, iterations=8)
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 3)
        direct = reconstruct(tiny_dataset, config)
        archive = handle.result()
        assert archive.messages == direct.messages
        assert archive.message_bytes == direct.message_bytes

    def test_alg1_resume_is_warm_start(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # alg1 resumes run and converge, but are not bit-exact; pin the
        # weaker contract so a silent regression in either direction
        # (resume breaking, or alg1 becoming exact) is noticed.
        config = gd_config(tiny_lr, iterations=8, mode="alg1")
        service = service_factory(workers=1)
        handle = submit_cancel_resume(service, tiny_dataset, config, 3)
        archive = handle.result()
        assert archive.n_iterations == 8
        assert archive.history[-1] < archive.history[0]


class TestPause:
    def test_pause_then_resume(self, tiny_dataset, tiny_lr, service_factory):
        config = gd_config(tiny_lr, iterations=8)
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        handle.pause(at_iteration=3)
        assert handle.wait(timeout=WAIT) == JobState.PAUSED
        assert handle.record().iterations_done == 3
        handle.resume()
        assert handle.wait(timeout=WAIT) == JobState.DONE
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_progress_counts_globally_across_legs(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=6))
        handle.pause(at_iteration=2)
        assert handle.wait(timeout=WAIT) == JobState.PAUSED
        handle.resume()
        assert handle.wait(timeout=WAIT) == JobState.DONE
        # The resume leg's stream starts at the banked offset, so a
        # watcher sees 3..6, not 1..4.
        updates = handle.progress().history()
        assert [u.iteration for u in updates] == [3, 4, 5, 6]


class TestCancelSemantics:
    def test_cancel_queued_job_never_runs(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        blocker = service.submit(
            tiny_dataset, gd_config(tiny_lr, iterations=6)
        )
        victim = service.submit(
            tiny_dataset, gd_config(tiny_lr, iterations=6)
        )
        victim.cancel()  # immediate — no at_iteration
        assert victim.wait(timeout=WAIT) == JobState.CANCELLED
        assert blocker.wait(timeout=WAIT) == JobState.DONE
        assert victim.record().iterations_done == 0

    def test_cancelled_job_checkpoint_survives_restart(
        self, tiny_dataset, tiny_lr, tmp_path
    ):
        # Cancel under one service, resume under a *different* one: the
        # consolidated checkpoint is durable state, not process state.
        from repro.service import ReconstructionService

        root = tmp_path / "jobs"
        config = gd_config(tiny_lr, iterations=8)
        with ReconstructionService(root, workers=1) as first:
            handle = first.submit(tiny_dataset, config)
            handle.cancel(at_iteration=3)
            assert handle.wait(timeout=WAIT) == JobState.CANCELLED
            job_id = handle.job_id
        prepare_resume(root, job_id)
        with ReconstructionService(root, workers=1) as second:
            assert second.wait(job_id, timeout=WAIT) == JobState.DONE
            archive = second.result(job_id)
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(archive) == result_fingerprint(direct)

    def test_cancel_done_job_raises(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        with pytest.raises(JobError, match="DONE"):
            handle.cancel()

    def test_resume_done_job_raises(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=2))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        with pytest.raises(JobError):
            handle.resume()

    def test_resume_unknown_job_raises(self, service_factory):
        service = service_factory(workers=1)
        with pytest.raises((JobError, FileNotFoundError)):
            service.resume("no-such-job")

    def test_interrupt_checkpoint_is_consolidated(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # After a cancel settles, the job directory holds one seed
        # archive (carrying the banked iterations) and no loose
        # checkpoints — the layout prepare_resume builds on.
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=6))
        handle.cancel(at_iteration=2)
        assert handle.wait(timeout=WAIT) == JobState.CANCELLED
        record = load_record(service.root, handle.job_id)
        directory = jobstore.job_dir(service.root, handle.job_id)
        assert record.seed == "seed.npz"
        assert (directory / "seed.npz").exists()
        assert not jobstore.checkpoints_dir(
            service.root, handle.job_id
        ).exists()
        assert record.carry_history and len(record.carry_history) == 2
