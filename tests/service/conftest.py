"""Shared fixture for the service suite: a service factory that always
joins its worker threads at teardown."""

from __future__ import annotations

import contextlib

import pytest

from repro.service import ReconstructionService


@pytest.fixture()
def service_factory(tmp_path):
    """Build services over per-test roots; close them all at teardown."""
    stack = contextlib.ExitStack()
    counter = iter(range(1000))

    def make(workers=2, root=None, **kwargs):
        root = root or tmp_path / f"svc{next(counter)}"
        return stack.enter_context(
            ReconstructionService(root, workers=workers, **kwargs)
        )

    yield make
    stack.close()
