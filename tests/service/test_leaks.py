"""Resource hygiene: after the pool drains, no backend leases and no
store file handles remain — the leak class the refcounted backend
registry (and per-job store ownership) exists to prevent."""

import os
from pathlib import Path

from repro.backend import backend_refcount
from repro.data import write_store
from repro.service import JobState

from tests.service.service_configs import gd_config, hve_config

WAIT = 120.0


def open_fds_for(path):
    """File descriptors of this process pointing at ``path``."""
    path = str(Path(path).resolve())
    fds = []
    for fd in os.listdir("/proc/self/fd"):
        try:
            if os.readlink(f"/proc/self/fd/{fd}") == path:
                fds.append(fd)
        except OSError:
            continue
    return fds


class TestBackendLeases:
    def test_no_leases_after_drain(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=2)
        handles = [
            service.submit(tiny_dataset, gd_config(tiny_lr, iterations=3)),
            service.submit(tiny_dataset, hve_config(tiny_lr, iterations=3)),
            service.submit(tiny_dataset, gd_config(tiny_lr, iterations=3)),
        ]
        for handle in handles:
            assert handle.wait(timeout=WAIT) == JobState.DONE
        assert service.drain(timeout=WAIT)
        assert backend_refcount() == {}

    def test_no_leases_after_cancel(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # The release runs in the leg's finally block, so an interrupted
        # job must not strand its lease either.
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=6))
        handle.cancel(at_iteration=2)
        assert handle.wait(timeout=WAIT) == JobState.CANCELLED
        assert service.drain(timeout=WAIT)
        assert backend_refcount() == {}

    def test_threaded_backend_shared_across_concurrent_jobs(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # Two jobs on the threaded backend overlap on one worker pair;
        # the shared plan cache must survive the first job's completion
        # (the satellite fix) and the lease table must end empty.
        configs = [
            gd_config(tiny_lr, iterations=4).with_compute(
                backend="threaded", dtype="complex128"
            )
            for _ in range(3)
        ]
        service = service_factory(workers=2)
        handles = [service.submit(tiny_dataset, c) for c in configs]
        for handle in handles:
            state = handle.wait(timeout=WAIT)
            assert state == JobState.DONE, handle.record().error
        assert service.drain(timeout=WAIT)
        assert backend_refcount() == {}


class TestStoreHandles:
    def test_chunked_store_fds_released_after_drain(
        self, tiny_dataset, tiny_lr, service_factory, tmp_path
    ):
        store_path = write_store(
            tmp_path / "meas.npz", tiny_dataset, chunk_size=4
        )
        config = gd_config(tiny_lr, iterations=3).with_data(
            data_source=str(store_path), batch_size=2
        )
        service = service_factory(workers=2)
        handles = [service.submit(tiny_dataset, config) for _ in range(3)]
        for handle in handles:
            assert handle.wait(timeout=WAIT) == JobState.DONE
        assert service.drain(timeout=WAIT)
        assert open_fds_for(store_path) == []
