"""Streamed jobs through the service layer: live coverage reporting,
mid-stream cancel→resume with a deterministically rebuilt frame
journal, and the same no-leak guarantees as static jobs."""

from __future__ import annotations

import numpy as np

from repro import reconstruct
from repro.service import JobState, read_progress
from repro.service import jobs as jobstore

from tests.helpers import result_fingerprint
from tests.service.service_configs import gd_config

WAIT = 120.0

STREAM = {"kind": "replay", "waves": 3}


def streamed_config(lr, iterations=6, **extra):
    return gd_config(lr, iterations=iterations, **extra).with_stream(
        scan_source=STREAM
    )


class TestStreamedJob:
    def test_runs_to_done_and_reports_coverage(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        config = streamed_config(tiny_lr)
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        assert handle.wait(timeout=WAIT) == JobState.DONE, \
            handle.record().error
        updates = handle.progress().history()
        coverages = [u.coverage for u in updates]
        # Every update of a streamed run carries the coverage fraction;
        # it is monotone and ends full.
        assert all(c is not None for c in coverages)
        assert coverages == sorted(coverages)
        assert coverages[-1] == 1.0
        # The cross-process mirror carries it too.
        mirrored = read_progress(
            jobstore.job_dir(service.root, handle.job_id) / "progress.json"
        )
        assert mirrored is not None and mirrored.coverage == 1.0
        # And the archive equals a direct streamed run.
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_static_jobs_report_no_coverage(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, gd_config(tiny_lr, iterations=3))
        assert handle.wait(timeout=WAIT) == JobState.DONE
        assert all(
            u.coverage is None for u in handle.progress().history()
        )


class TestMidStreamCancelResume:
    def test_resume_is_fingerprint_identical(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # Cancel at iteration 2 — coverage is still partial (wave 3 of
        # the replay schedule lands after sweep 2), so the resumed leg
        # must rebuild the frame journal via its stream_offset before
        # finishing the remaining epochs.
        config = streamed_config(tiny_lr, iterations=6)
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        handle.cancel(at_iteration=2)
        assert handle.wait(timeout=WAIT) == JobState.CANCELLED, \
            handle.record().error
        assert handle.record().iterations_done == 2
        handle.resume()
        assert handle.wait(timeout=WAIT) == JobState.DONE, \
            handle.record().error
        assert handle.record().resumes == 1
        direct = reconstruct(tiny_dataset, config)
        assert result_fingerprint(handle.result()) == \
            result_fingerprint(direct)

    def test_resumed_leg_preserves_journal_accounting(
        self, tiny_dataset, tiny_lr, service_factory
    ):
        # Traffic counters stay additive across the interrupted legs —
        # the resumed leg accounts only its own epochs' sweeps, over the
        # journal rebuilt at its stream offset.
        config = streamed_config(tiny_lr, iterations=6)
        service = service_factory(workers=1)
        handle = service.submit(tiny_dataset, config)
        handle.cancel(at_iteration=3)
        assert handle.wait(timeout=WAIT) == JobState.CANCELLED
        handle.resume()
        assert handle.wait(timeout=WAIT) == JobState.DONE
        direct = reconstruct(tiny_dataset, config)
        archive = handle.result()
        assert archive.messages == direct.messages
        assert archive.message_bytes == direct.message_bytes
        assert archive.n_iterations == direct.n_iterations
        assert np.array_equal(archive.volume, direct.volume)
