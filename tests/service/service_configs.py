"""Tiny job configs shared across the service suite."""

from repro.api import ReconstructionConfig


def gd_config(lr, iterations=6, mode="synchronous", **extra):
    params = {"n_ranks": 4, "iterations": iterations, "lr": lr, "mode": mode}
    params.update(extra)
    return ReconstructionConfig(solver="gd", solver_params=params)


def hve_config(lr, iterations=6, **extra):
    params = {"n_ranks": 4, "iterations": iterations, "lr": lr}
    params.update(extra)
    return ReconstructionConfig(solver="hve", solver_params=params)
