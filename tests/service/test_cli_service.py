"""The serve/submit/jobs CLI against a filesystem job root — the
cross-process workflow: state lives in the job directory, so every
subcommand works with or without a live server."""

import numpy as np
import pytest

from repro import reconstruct
from repro.cli import main
from repro.io import save_dataset
from repro.io.storage import load_result
from repro.service import JobState, load_record

from tests.helpers import result_fingerprint
from tests.service.service_configs import gd_config, hve_config


@pytest.fixture()
def workspace(tmp_path, tiny_dataset, tiny_lr):
    """A dataset archive, two config files, and a job root path."""
    dataset = tmp_path / "ds.npz"
    save_dataset(dataset, tiny_dataset)
    gd_json = tmp_path / "gd.json"
    gd_json.write_text(gd_config(tiny_lr, iterations=4).to_json())
    hve_json = tmp_path / "hve.json"
    hve_json.write_text(hve_config(tiny_lr, iterations=4).to_json())
    return {
        "root": str(tmp_path / "jobs"),
        "dataset": str(dataset),
        "gd": str(gd_json),
        "hve": str(hve_json),
    }


def submit(ws, config_key, job_id, *extra):
    return main([
        "submit", "--root", ws["root"], "--dataset", ws["dataset"],
        "--config", ws[config_key], "--job-id", job_id, *extra,
    ])


class TestSubmitServe:
    def test_submit_then_drain_completes_job(
        self, workspace, tiny_dataset, tiny_lr, capsys
    ):
        assert submit(workspace, "gd", "one") == 0
        assert "submitted one" in capsys.readouterr().out
        assert main(["serve", "--root", workspace["root"],
                     "--workers", "1", "--drain"]) == 0
        out = capsys.readouterr().out
        assert "1 job(s) recovered" in out
        assert "1 done" in out
        record = load_record(workspace["root"], "one")
        assert record.state == JobState.DONE
        archive = load_result(
            f"{workspace['root']}/jobs/one/result.npz"
        )
        direct = reconstruct(tiny_dataset, gd_config(tiny_lr, iterations=4))
        assert result_fingerprint(archive) == result_fingerprint(direct)

    def test_two_jobs_drain_together(self, workspace, capsys):
        assert submit(workspace, "gd", "a") == 0
        assert submit(workspace, "hve", "b", "--priority", "1") == 0
        assert main(["serve", "--root", workspace["root"],
                     "--workers", "2", "--drain"]) == 0
        assert load_record(workspace["root"], "a").state == JobState.DONE
        assert load_record(workspace["root"], "b").state == JobState.DONE

    def test_submit_missing_config_fails(self, workspace, capsys):
        rc = main(["submit", "--root", workspace["root"],
                   "--dataset", workspace["dataset"],
                   "--config", "nope.json"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_submit_config_without_iterations_fails(
        self, workspace, tmp_path, capsys
    ):
        from repro.api import ReconstructionConfig

        bad = tmp_path / "bad.json"
        bad.write_text(ReconstructionConfig(
            solver="gd", solver_params={"n_ranks": 4, "lr": 0.01}
        ).to_json())
        rc = main(["submit", "--root", workspace["root"],
                   "--dataset", workspace["dataset"], "--config", str(bad)])
        assert rc == 2
        assert "iterations" in capsys.readouterr().err


class TestJobsCommand:
    def test_list_empty_root(self, workspace, capsys):
        assert main(["jobs", "--root", workspace["root"]]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_list_shows_states(self, workspace, capsys):
        submit(workspace, "gd", "listed")
        capsys.readouterr()
        assert main(["jobs", "--root", workspace["root"]]) == 0
        out = capsys.readouterr().out
        assert "listed" in out
        assert "QUEUED" in out

    def test_cancel_resume_roundtrip_matches_direct_run(
        self, workspace, tiny_dataset, tiny_lr, capsys
    ):
        # The CI scenario end to end, in process: pre-armed cancel,
        # drain (job stops at 2), resume, drain again, final archive
        # bit-identical to the uninterrupted run.
        submit(workspace, "gd", "roundtrip")
        assert main(["jobs", "--root", workspace["root"],
                     "--cancel", "roundtrip", "--at-iteration", "2"]) == 0
        assert main(["serve", "--root", workspace["root"],
                     "--workers", "1", "--drain"]) == 0
        record = load_record(workspace["root"], "roundtrip")
        assert record.state == JobState.CANCELLED
        assert record.iterations_done == 2
        assert main(["jobs", "--root", workspace["root"],
                     "--resume", "roundtrip"]) == 0
        assert main(["serve", "--root", workspace["root"],
                     "--workers", "1", "--drain"]) == 0
        assert load_record(
            workspace["root"], "roundtrip"
        ).state == JobState.DONE
        archive = load_result(
            f"{workspace['root']}/jobs/roundtrip/result.npz"
        )
        direct = reconstruct(tiny_dataset, gd_config(tiny_lr, iterations=4))
        assert result_fingerprint(archive) == result_fingerprint(direct)

    def test_pause_lands_paused(self, workspace, capsys):
        submit(workspace, "gd", "held")
        assert main(["jobs", "--root", workspace["root"],
                     "--pause", "held", "--at-iteration", "2"]) == 0
        assert main(["serve", "--root", workspace["root"],
                     "--workers", "1", "--drain"]) == 0
        assert load_record(
            workspace["root"], "held"
        ).state == JobState.PAUSED

    def test_cancel_unknown_job_fails(self, workspace, capsys):
        rc = main(["jobs", "--root", workspace["root"], "--cancel", "ghost"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_resume_unknown_job_fails(self, workspace, capsys):
        rc = main(["jobs", "--root", workspace["root"], "--resume", "ghost"])
        assert rc == 2

    def test_at_iteration_requires_cancel_or_pause(self, workspace, capsys):
        rc = main(["jobs", "--root", workspace["root"],
                   "--at-iteration", "2"])
        assert rc == 2
        assert "--at-iteration" in capsys.readouterr().err

    def test_conflicting_actions_rejected(self, workspace, capsys):
        rc = main(["jobs", "--root", workspace["root"],
                   "--cancel", "a", "--resume", "b"])
        assert rc == 2
