"""ProgressStream: global iteration counting, polling, subscription,
and the cross-process JSON mirror."""

import threading

from repro.core.observers import IterationEvent
from repro.service import ProgressStream, read_progress


def event(iteration, cost=1.0, elapsed=1.0):
    return IterationEvent(
        solver="gd",
        iteration=iteration,
        n_iterations=10,
        cost=cost,
        elapsed_s=elapsed,
        messages=0,
        message_bytes=0,
        peak_memory_bytes=0.0,
        snapshot=lambda: None,
    )


class TestUpdates:
    def test_counts_iterations_globally(self):
        stream = ProgressStream("job", total=10, offset=4)
        stream(event(0))
        update = stream.poll()
        assert update.iteration == 5  # 4 banked + leg iteration 1
        assert update.total == 10
        assert update.fraction == 0.5

    def test_poll_before_first_iteration_is_none(self):
        assert ProgressStream("job", total=3).poll() is None

    def test_rate_and_eta(self):
        stream = ProgressStream("job", total=10)
        stream(event(1, elapsed=4.0))  # 2 leg iterations in 4s
        update = stream.poll()
        assert update.iter_per_s == 0.5
        assert update.eta_s == 8 / 0.5

    def test_eta_inf_when_no_elapsed(self):
        stream = ProgressStream("job", total=3)
        stream(event(0, elapsed=0.0))
        assert stream.poll().eta_s == float("inf")

    def test_history_accumulates(self):
        stream = ProgressStream("job", total=3)
        for it in range(3):
            stream(event(it, cost=float(it)))
        costs = [u.cost for u in stream.history()]
        assert costs == [0.0, 1.0, 2.0]


class TestSubscribe:
    def test_subscriber_sees_every_update_then_ends_on_close(self):
        stream = ProgressStream("job", total=3)
        seen = []

        def client():
            for update in stream.subscribe():
                seen.append(update.iteration)

        thread = threading.Thread(target=client)
        thread.start()
        for it in range(3):
            stream(event(it))
        stream.close()
        thread.join(timeout=5.0)
        assert seen == [1, 2, 3]

    def test_subscriber_timeout_ends_stalled_stream(self):
        stream = ProgressStream("job", total=3)
        stream(event(0))
        seen = [u.iteration for u in stream.subscribe(timeout=0.01)]
        assert seen == [1]  # drained the buffer, then timed out


class TestMirror:
    def test_mirror_roundtrips_through_read_progress(self, tmp_path):
        path = tmp_path / "progress.json"
        stream = ProgressStream("job7", total=4, mirror_path=path)
        stream(event(1, cost=0.25, elapsed=2.0))
        update = read_progress(path)
        assert update.job_id == "job7"
        assert update.iteration == 2
        assert update.cost == 0.25

    def test_mirror_spells_inf_eta_as_null(self, tmp_path):
        path = tmp_path / "progress.json"
        stream = ProgressStream("job", total=4, mirror_path=path)
        stream(event(0, elapsed=0.0))
        assert "Infinity" not in path.read_text()
        assert read_progress(path).eta_s == float("inf")

    def test_read_progress_missing_file_is_none(self, tmp_path):
        assert read_progress(tmp_path / "nope.json") is None

    def test_read_progress_torn_file_is_none(self, tmp_path):
        path = tmp_path / "progress.json"
        path.write_text("{not json")
        assert read_progress(path) is None
