"""Serial reference reconstructor."""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor


class TestBatch:
    def test_cost_decreases(self, small_dataset, small_lr):
        result = SerialReconstructor(
            iterations=5, lr=small_lr, scheme="batch"
        ).reconstruct(small_dataset)
        assert result.history[-1] < result.history[0]
        # Monotone for full-batch descent at a stable step size.
        assert all(
            b <= a * (1 + 1e-9)
            for a, b in zip(result.history, result.history[1:])
        )

    def test_volume_shape(self, tiny_dataset, tiny_lr):
        result = SerialReconstructor(iterations=1, lr=tiny_lr).reconstruct(
            tiny_dataset
        )
        assert result.volume.shape == (
            tiny_dataset.n_slices,
            *tiny_dataset.object_shape,
        )

    def test_improves_towards_ground_truth_datafit(
        self, small_dataset, small_lr
    ):
        recon = SerialReconstructor(iterations=8, lr=small_lr)
        result = recon.reconstruct(small_dataset)
        final = recon.evaluate_cost(small_dataset, result.volume)
        initial = recon.evaluate_cost(
            small_dataset, small_dataset.initial_object()
        )
        assert final < 0.2 * initial


class TestSgd:
    def test_cost_decreases(self, small_dataset, small_lr):
        result = SerialReconstructor(
            iterations=4, lr=small_lr * 0.5, scheme="sgd"
        ).reconstruct(small_dataset)
        assert result.history[-1] < result.history[0]

    def test_sgd_differs_from_batch(self, tiny_dataset, tiny_lr):
        batch = SerialReconstructor(
            iterations=2, lr=tiny_lr * 0.5, scheme="batch"
        ).reconstruct(tiny_dataset)
        sgd = SerialReconstructor(
            iterations=2, lr=tiny_lr * 0.5, scheme="sgd"
        ).reconstruct(tiny_dataset)
        assert not np.allclose(batch.volume, sgd.volume)


class TestInterface:
    def test_validation(self):
        with pytest.raises(ValueError):
            SerialReconstructor(iterations=0)
        with pytest.raises(ValueError):
            SerialReconstructor(scheme="quantum")

    def test_callback(self, tiny_dataset, tiny_lr):
        seen = []
        SerialReconstructor(iterations=2, lr=tiny_lr).reconstruct(
            tiny_dataset, callback=lambda it, c, v: seen.append((it, c))
        )
        assert [s[0] for s in seen] == [0, 1]

    def test_result_has_single_rank_decomposition(
        self, tiny_dataset, tiny_lr
    ):
        result = SerialReconstructor(iterations=1, lr=tiny_lr).reconstruct(
            tiny_dataset
        )
        assert result.decomposition.n_ranks == 1
        assert result.messages == 0

    def test_evaluate_cost_zero_at_truth(self, tiny_dataset):
        recon = SerialReconstructor(iterations=1)
        cost = recon.evaluate_cost(tiny_dataset, tiny_dataset.ground_truth)
        assert cost < 1e-4  # float16 measurement storage rounding
