"""Halo Voxel Exchange baseline."""

import numpy as np
import pytest

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.core.decomposition import ScalabilityError
from repro.parallel.topology import MeshLayout
from repro.schedule.ops import Barrier, LocalSolve, VoxelPaste


class TestSchedule:
    @pytest.fixture(scope="class")
    def recon(self):
        return HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=0.1, extra_rows=1
        )

    def test_structure(self, recon, tiny_dataset):
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        counts = schedule.counts()
        assert counts["LocalSolve"] == 4
        assert counts["Barrier"] == 1
        assert counts.get("VoxelPaste", 0) > 0

    def test_solves_precede_pastes(self, recon, tiny_dataset):
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        kinds = [type(op).__name__ for op in schedule]
        assert kinds.index("Barrier") > max(
            i for i, k in enumerate(kinds) if k == "LocalSolve"
        )
        assert all(
            i > kinds.index("Barrier")
            for i, k in enumerate(kinds)
            if k == "VoxelPaste"
        )

    def test_paste_regions_are_core_pieces(self, recon, tiny_dataset):
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        for op in schedule:
            if isinstance(op, VoxelPaste):
                src_core = decomp.tile(op.src).core
                dst_ext = decomp.tile(op.dst).ext
                assert src_core.contains(op.region)
                assert dst_ext.contains(op.region)

    def test_inner_sweeps_multiply_solves(self, tiny_dataset):
        recon = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, inner_sweeps=3, extra_rows=1
        )
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        assert schedule.counts()["LocalSolve"] == 12


class TestReconstruction:
    def test_converges(self, small_dataset, small_lr):
        recon = HaloExchangeReconstructor(
            n_ranks=4, iterations=4, lr=small_lr * 0.5, extra_rows=1
        )
        result = recon.reconstruct(small_dataset)
        assert result.history[-1] < result.history[0]

    def test_halo_consistency_after_exchange(self, small_dataset, small_lr):
        """After the paste phase, every halo voxel equals its owner's core
        voxel — the consistency the exchange exists to enforce."""
        recon = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=small_lr * 0.5,
            extra_rows=1,
        )
        decomp = recon.decompose(small_dataset)
        from repro.core.engine import NumericEngine

        engine = NumericEngine(small_dataset, decomp, lr=small_lr * 0.5)
        engine.execute(recon.build_iteration_schedule(decomp))
        for a in range(decomp.n_ranks):
            for b in decomp.mesh.neighbors8(a):
                region = decomp.tile(a).core.intersect(decomp.tile(b).ext)
                if region is None:
                    continue
                sa = region.slices_in(decomp.tile(a).ext)
                sb = region.slices_in(decomp.tile(b).ext)
                np.testing.assert_allclose(
                    engine.states[a].volume[:, sa[0], sa[1]],
                    engine.states[b].volume[:, sb[0], sb[1]],
                    atol=1e-12,
                )

    def test_more_memory_than_gradient_decomposition(
        self, small_dataset, small_lr
    ):
        """The paper's memory claim at matched mesh."""
        from repro.core.reconstructor import GradientDecompositionReconstructor

        hve = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=small_lr, extra_rows=2
        ).reconstruct(small_dataset)
        gd = GradientDecompositionReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=small_lr
        ).reconstruct(small_dataset)
        # Measurement shards dominate; HVE duplicates them.
        hve_meas = sum(
            len(t.all_probes) for t in hve.decomposition.tiles
        )
        gd_meas = sum(len(t.all_probes) for t in gd.decomposition.tiles)
        assert hve_meas > gd_meas

    def test_redundancy_factor(self, small_dataset):
        recon = HaloExchangeReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, extra_rows=1
        )
        decomp = recon.decompose(small_dataset)
        assert recon.redundancy_factor(decomp) > 1.0


class TestScalabilityConstraint:
    def test_na_regime_raises(self, highoverlap_dataset):
        """Tiny tiles + wide fixed halo: the paper's NA rows."""
        recon = HaloExchangeReconstructor(
            mesh=MeshLayout(6, 6), iterations=1, extra_rows=2, halo=15
        )
        with pytest.raises(ScalabilityError):
            recon.decompose(highoverlap_dataset)

    def test_constraint_can_be_disabled(self, highoverlap_dataset):
        recon = HaloExchangeReconstructor(
            mesh=MeshLayout(6, 6),
            iterations=1,
            extra_rows=2,
            halo=15,
            enforce_tile_constraint=False,
        )
        decomp = recon.decompose(highoverlap_dataset)
        assert decomp.n_ranks == 36


class TestValidation:
    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            HaloExchangeReconstructor(n_ranks=2, iterations=0)

    def test_bad_inner_sweeps(self):
        with pytest.raises(ValueError):
            HaloExchangeReconstructor(n_ranks=2, inner_sweeps=0)
