"""The ``repro lint`` CLI subcommand forwards to repro.analysis."""

from __future__ import annotations

import json

from repro.cli import main


class TestLintSubcommand:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_forwards_option_like_args(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint/1"
        assert payload["findings"] == []

    def test_list_rules_passthrough(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "wall-clock" in capsys.readouterr().out

    def test_other_commands_stay_strict(self, capsys):
        try:
            main(["stats", "x", "--definitely-not-a-flag"])
        except SystemExit as exc:
            assert exc.code == 2
        else:  # pragma: no cover - argparse always raises
            raise AssertionError("expected SystemExit")
