"""Engine-level behaviour: pragmas, baselines, output formats, exit
codes — and the whole-repo smoke gate."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import ALL_RULES, lint
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import main

_VIOLATION = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
).lstrip("\n")


class TestRepoIsClean:
    def test_repo_is_clean(self):
        """The real tree has zero non-baselined findings — every rule
        passes, with deliberate exceptions pragma'd inline."""
        assert lint() == []

    def test_every_rule_has_a_description(self):
        assert ALL_RULES
        for rule, doc in ALL_RULES.items():
            assert rule and doc


class TestPragmas:
    def test_same_line_pragma_suppresses(self, make_tree):
        run = make_tree({
            "src/repro/service/sched.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()"
                "  # repro-lint: allow[wall-clock] -- display only\n"
            ),
        })
        assert run(rules=["wall-clock"]) == []
        assert [
            f.rule for f in run(rules=["wall-clock"], respect_pragmas=False)
        ] == ["wall-clock"]

    def test_standalone_pragma_covers_next_line(self, make_tree):
        run = make_tree({
            "src/repro/service/sched.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    # repro-lint: allow[wall-clock]\n"
                "    return time.time()\n"
            ),
        })
        assert run(rules=["wall-clock"]) == []

    def test_pragma_for_other_rule_does_not_suppress(self, make_tree):
        run = make_tree({
            "src/repro/service/sched.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # repro-lint: allow[atomic-write]\n"
            ),
        })
        assert [f.rule for f in run(rules=["wall-clock"])] == ["wall-clock"]


class TestBaseline:
    def test_round_trip_suppresses_grandfathered(self, tmp_path, make_tree):
        run = make_tree({"src/repro/service/sched.py": _VIOLATION})
        findings = run(rules=["wall-clock"])
        assert findings
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        assert load_baseline(baseline) == {f.baseline_key for f in findings}
        assert (
            lint(root=tmp_path, rules=["wall-clock"], baseline=baseline)
            == []
        )

    def test_key_survives_line_moves(self, tmp_path, make_tree):
        run = make_tree({"src/repro/service/sched.py": _VIOLATION})
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run(rules=["wall-clock"]))
        # shift the violation down: same text, different line number
        (tmp_path / "src/repro/service/sched.py").write_text(
            "# a new leading comment\n" + _VIOLATION
        )
        assert (
            lint(root=tmp_path, rules=["wall-clock"], baseline=baseline)
            == []
        )

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCliSurface:
    def test_exit_zero_and_table_on_clean_repo(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_and_locations_on_findings(
        self, tmp_path, make_tree, capsys
    ):
        make_tree({"src/repro/service/sched.py": _VIOLATION})
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/service/sched.py:4" in out
        assert "[wall-clock]" in out

    def test_json_format_schema(self, tmp_path, make_tree, capsys):
        make_tree({"src/repro/service/sched.py": _VIOLATION})
        assert main(["--root", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint/1"
        assert payload["counts"] == {"wall-clock": 1}
        (finding,) = payload["findings"]
        assert finding["path"] == "src/repro/service/sched.py"
        assert finding["line"] == 4
        assert finding["rule"] == "wall-clock"
        assert finding["hint"]

    def test_write_baseline_then_clean(self, tmp_path, make_tree, capsys):
        make_tree({"src/repro/service/sched.py": _VIOLATION})
        root = ["--root", str(tmp_path)]
        assert main([*root, "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(root) == 0  # default baseline now grandfathers it

    def test_rules_filter_and_unknown_rule(self, tmp_path, make_tree, capsys):
        make_tree({"src/repro/service/sched.py": _VIOLATION})
        root = ["--root", str(tmp_path)]
        assert main([*root, "--rules", "atomic-write"]) == 0
        assert main([*root, "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out
