"""Per-rule fixtures: one violating snippet (asserting rule id and
line) and one conforming snippet for every repro-lint rule."""

from __future__ import annotations

import textwrap


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip("\n")


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_violation(self, make_tree):
        run = make_tree({
            "src/repro/service/sched.py": _src(
                """
                import time

                def stamp():
                    return time.time()
                """
            ),
        })
        findings = run(rules=["wall-clock"])
        assert [f.rule for f in findings] == ["wall-clock"]
        assert findings[0].line == 4
        assert findings[0].path == "src/repro/service/sched.py"

    def test_datetime_now_and_from_import(self, make_tree):
        run = make_tree({
            "src/repro/obs/clocky.py": _src(
                """
                from datetime import datetime
                from time import time as wall

                def a():
                    return datetime.now()

                def b():
                    return wall()
                """
            ),
        })
        assert len(run(rules=["wall-clock"])) == 2

    def test_conforming_monotonic(self, make_tree):
        run = make_tree({
            "src/repro/service/sched.py": _src(
                """
                import time

                def tick():
                    return time.perf_counter() + time.monotonic()
                """
            ),
        })
        assert run(rules=["wall-clock"]) == []

    def test_out_of_scope_module_is_ignored(self, make_tree):
        run = make_tree({
            "src/repro/physics/sim.py": _src(
                """
                import time

                def seed():
                    return time.time()
                """
            ),
        })
        assert run(rules=["wall-clock"]) == []


# ----------------------------------------------------------------------
# atomic-write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_violation_write_text(self, make_tree):
        run = make_tree({
            "src/repro/service/store.py": _src(
                """
                def save(path, text):
                    path.write_text(text)
                """
            ),
        })
        findings = run(rules=["atomic-write"])
        assert [f.rule for f in findings] == ["atomic-write"]
        assert findings[0].line == 2

    def test_violation_open_and_json_dump(self, make_tree):
        run = make_tree({
            "src/repro/io/dump.py": _src(
                """
                import json

                def save(path, payload):
                    with open(path, "w") as fh:
                        json.dump(payload, fh)
                """
            ),
        })
        assert len(run(rules=["atomic-write"])) == 2

    def test_conforming_atomic_output_block(self, make_tree):
        run = make_tree({
            "src/repro/io/dump.py": _src(
                """
                import numpy as np

                from repro.utils.atomicio import atomic_output

                def save(path, payload):
                    with atomic_output(path) as tmp:
                        with open(tmp, "wb") as fh:
                            np.savez_compressed(fh, **payload)
                """
            ),
        })
        assert run(rules=["atomic-write"]) == []

    def test_read_mode_open_is_fine(self, make_tree):
        run = make_tree({
            "src/repro/service/load.py": _src(
                """
                def load(path):
                    with open(path) as fh:
                        return fh.read()
                """
            ),
        })
        assert run(rules=["atomic-write"]) == []


# ----------------------------------------------------------------------
# import-guard
# ----------------------------------------------------------------------
class TestImportGuard:
    def test_violation(self, make_tree):
        run = make_tree({
            "src/repro/backend/gpu.py": _src(
                """
                import cupy
                """
            ),
        })
        findings = run(rules=["import-guard"])
        assert [f.rule for f in findings] == ["import-guard"]
        assert findings[0].line == 1
        assert "cupy" in findings[0].message

    def test_conforming_try_and_function_scope(self, make_tree):
        run = make_tree({
            "src/repro/backend/gpu.py": _src(
                """
                try:
                    import cupy
                except ImportError:
                    cupy = None

                def convert(x):
                    import h5py

                    return h5py, x
                """
            ),
        })
        assert run(rules=["import-guard"]) == []


# ----------------------------------------------------------------------
# lock-blocking
# ----------------------------------------------------------------------
class TestLockBlocking:
    def test_violation_close_under_lock(self, make_tree):
        run = make_tree({
            "src/repro/backend/reg.py": _src(
                """
                import threading

                _LOCK = threading.RLock()
                _INSTANCES = {}

                def drop(name):
                    with _LOCK:
                        instance = _INSTANCES.pop(name, None)
                        instance.close()
                """
            ),
        })
        findings = run(rules=["lock-blocking"])
        assert [f.rule for f in findings] == ["lock-blocking"]
        assert findings[0].line == 9

    def test_violation_one_level_propagation(self, make_tree):
        run = make_tree({
            "src/repro/service/svc.py": _src(
                """
                import threading

                _LOCK = threading.Lock()

                def _load(path):
                    return path.read_text()

                def peek(path):
                    with _LOCK:
                        return _load(path)
                """
            ),
        })
        findings = run(rules=["lock-blocking"])
        assert [f.rule for f in findings] == ["lock-blocking"]
        assert findings[0].line == 10
        assert "_load" in findings[0].message

    def test_violation_cross_module_propagation(self, make_tree):
        run = make_tree({
            "src/repro/service/jobs2.py": _src(
                """
                def load_record(path):
                    return path.read_text()
                """
            ),
            "src/repro/service/svc.py": _src(
                """
                import threading

                from repro.service import jobs2 as jobstore

                _cond = threading.Condition()

                def wait(path):
                    with _cond:
                        return jobstore.load_record(path)
                """
            ),
        })
        findings = run(rules=["lock-blocking"])
        assert [
            (f.path, f.line) for f in findings
        ] == [("src/repro/service/svc.py", 9)]

    def test_conforming_evict_then_close_outside(self, make_tree):
        run = make_tree({
            "src/repro/backend/reg.py": _src(
                """
                import threading

                _LOCK = threading.RLock()
                _INSTANCES = {}

                def drop(name):
                    with _LOCK:
                        instance = _INSTANCES.pop(name, None)
                    if instance is not None:
                        instance.close()
                """
            ),
        })
        assert run(rules=["lock-blocking"]) == []

    def test_condition_wait_on_held_lock_is_exempt(self, make_tree):
        run = make_tree({
            "src/repro/service/q.py": _src(
                """
                import threading

                class Q:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def wait(self, timeout):
                        with self._cond:
                            self._cond.wait(timeout=timeout)
                            self._cond.notify_all()
                """
            ),
        })
        assert run(rules=["lock-blocking"]) == []


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_violation_cycle(self, make_tree):
        run = make_tree({
            "src/repro/service/two.py": _src(
                """
                import threading

                _A_LOCK = threading.Lock()
                _B_LOCK = threading.Lock()

                def ab():
                    with _A_LOCK:
                        with _B_LOCK:
                            pass

                def ba():
                    with _B_LOCK:
                        with _A_LOCK:
                            pass
                """
            ),
        })
        findings = run(rules=["lock-order"])
        assert findings
        assert {f.rule for f in findings} == {"lock-order"}

    def test_conforming_consistent_order(self, make_tree):
        run = make_tree({
            "src/repro/service/two.py": _src(
                """
                import threading

                _A_LOCK = threading.Lock()
                _B_LOCK = threading.Lock()

                def ab():
                    with _A_LOCK:
                        with _B_LOCK:
                            pass

                def ab_again():
                    with _A_LOCK:
                        with _B_LOCK:
                            pass
                """
            ),
        })
        assert run(rules=["lock-order"]) == []


# ----------------------------------------------------------------------
# fingerprint-knob
# ----------------------------------------------------------------------
_CONFIG_TEMPLATE = """
from dataclasses import dataclass

_FINGERPRINT_NUMERIC_FIELDS = frozenset({numeric})
_FINGERPRINT_NEUTRAL_FIELDS = frozenset({neutral})


@dataclass(frozen=True)
class ReconstructionConfig:
    solver: str
    backend: str = None
    telemetry: bool = None
"""


class TestFingerprintKnob:
    def _tree(self, make_tree, numeric, neutral):
        return make_tree({
            "src/repro/api/config.py": _CONFIG_TEMPLATE.format(
                numeric=numeric, neutral=neutral
            ),
        })

    def test_undeclared_field(self, make_tree):
        run = self._tree(make_tree, '{"solver", "backend"}', "()")
        findings = run(rules=["fingerprint-knob"])
        assert [f.rule for f in findings] == ["fingerprint-knob"]
        assert "telemetry" in findings[0].message

    def test_field_in_both_sets(self, make_tree):
        run = self._tree(
            make_tree,
            '{"solver", "backend", "telemetry"}',
            '{"telemetry"}',
        )
        findings = run(rules=["fingerprint-knob"])
        assert any("both" in f.message for f in findings)

    def test_unknown_member(self, make_tree):
        run = self._tree(
            make_tree,
            '{"solver", "backend"}',
            '{"telemetry", "warp_factor"}',
        )
        findings = run(rules=["fingerprint-knob"])
        assert any("warp_factor" in f.message for f in findings)

    def test_conforming(self, make_tree):
        run = self._tree(
            make_tree, '{"solver", "backend"}', '{"telemetry"}'
        )
        assert run(rules=["fingerprint-knob"]) == []

    def test_real_config_is_declared(self):
        # the real repo's declaration must stay exhaustive
        from repro.analysis import lint

        assert lint(rules=["fingerprint-knob"]) == []


# ----------------------------------------------------------------------
# registry-reachable
# ----------------------------------------------------------------------
class TestRegistryReachable:
    def test_unimported_registration(self, make_tree):
        run = make_tree({
            "src/repro/solvers/extra.py": _src(
                """
                from repro.api import register_solver

                @register_solver("extra")
                class ExtraSolver:
                    pass
                """
            ),
        })
        findings = run(rules=["registry-reachable"])
        assert [f.rule for f in findings] == ["registry-reachable"]
        assert findings[0].line == 3
        assert "extra" in findings[0].message

    def test_imported_registration_is_fine(self, make_tree):
        run = make_tree({
            "src/repro/solvers/extra.py": _src(
                """
                from repro.api import register_solver

                @register_solver("extra")
                class ExtraSolver:
                    pass
                """
            ),
            "src/repro/solvers/__init__.py": _src(
                """
                from repro.solvers import extra  # noqa: F401
                """
            ),
        })
        assert run(rules=["registry-reachable"]) == []

    def test_hard_coded_cli_choices(self, make_tree):
        run = make_tree({
            "src/repro/cli.py": _src(
                """
                import argparse

                def build_parser():
                    p = argparse.ArgumentParser()
                    p.add_argument("--backend", choices=["numpy"])
                    return p
                """
            ),
        })
        findings = run(rules=["registry-reachable"])
        assert [f.rule for f in findings] == ["registry-reachable"]
        assert findings[0].line == 5

    def test_registry_driven_cli_choices(self, make_tree):
        run = make_tree({
            "src/repro/cli.py": _src(
                """
                import argparse

                from repro.backend import backend_names

                def build_parser():
                    p = argparse.ArgumentParser()
                    p.add_argument("--backend", choices=backend_names())
                    return p
                """
            ),
        })
        assert run(rules=["registry-reachable"]) == []


# ----------------------------------------------------------------------
# telemetry-guard
# ----------------------------------------------------------------------
class TestTelemetryGuard:
    def test_violation_unguarded_count(self, make_tree):
        run = make_tree({
            "src/repro/core/hot.py": _src(
                """
                from repro.obs import telemetry as _obs

                def work():
                    tel = _obs.current()
                    tel.count("work.calls")
                """
            ),
        })
        findings = run(rules=["telemetry-guard"])
        assert [f.rule for f in findings] == ["telemetry-guard"]
        assert findings[0].line == 5

    def test_conforming_guards(self, make_tree):
        run = make_tree({
            "src/repro/core/hot.py": _src(
                """
                from repro.obs import telemetry as _obs

                def guarded_if():
                    tel = _obs.current()
                    if tel.enabled:
                        tel.count("a")

                def early_return():
                    tel = _obs.current()
                    if not tel.enabled:
                        return compute()
                    tel.add({"b": 1})
                    return compute()

                def helper(tel, dt):
                    # parameter receivers are the caller's problem
                    tel.add({"c": dt})
                """
            ),
        })
        assert run(rules=["telemetry-guard"]) == []

    def test_constructed_recorder_is_exempt(self, make_tree):
        run = make_tree({
            "src/repro/core/hot.py": _src(
                """
                from repro.obs.telemetry import Telemetry

                def record():
                    tel = Telemetry()
                    tel.count("x")
                    return tel
                """
            ),
        })
        assert run(rules=["telemetry-guard"]) == []
