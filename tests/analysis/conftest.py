"""Fixture helpers for the repro-lint test suite.

Each rule is exercised against a *synthetic* repo tree (a ``src/repro``
skeleton under ``tmp_path``) so violating snippets never live in the
real tree — the real tree must stay lint-clean (see
``test_engine.py::test_repo_is_clean``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.analysis import lint
from repro.analysis.model import Finding


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relpath: source}`` files under a fresh repo skeleton and
    return a ``run(rules=...)`` callable producing lint findings."""

    def _make(files: Dict[str, str]):
        (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)

        def run(
            rules: Optional[Sequence[str]] = None,
            respect_pragmas: bool = True,
        ) -> List[Finding]:
            return lint(
                root=tmp_path,
                rules=rules,
                respect_pragmas=respect_pragmas,
            )

        return run

    return _make


def rules_of(findings: List[Finding]) -> List[str]:
    return [f.rule for f in findings]
