"""The mypy gate (mypy.ini) passes over the typed surfaces.

Runs only where mypy is installed (CI's lint job installs it; the
default dev environment may not), so tier-1 stays dependency-free.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.slow
def test_mypy_gate_passes():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"mypy gate failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_py_typed_marker_exists():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
