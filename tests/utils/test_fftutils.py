"""Centered unitary FFT helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.fftutils import fft2c, fftfreq_grid, ifft2c


class TestUnitarity:
    def test_roundtrip(self, rng):
        x = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        np.testing.assert_allclose(ifft2c(fft2c(x)), x, atol=1e-12)

    def test_energy_conservation(self, rng):
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        assert np.sum(np.abs(fft2c(x)) ** 2) == pytest.approx(
            np.sum(np.abs(x) ** 2)
        )

    def test_adjoint_identity(self, rng):
        """<F x, y> == <x, F^H y> with F^H = ifft2c (the property the
        multislice gradient depends on)."""
        x = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        y = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        lhs = np.vdot(fft2c(x), y)
        rhs = np.vdot(x, ifft2c(y))
        assert lhs == pytest.approx(rhs)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 24), st.integers(2, 24))
    def test_roundtrip_any_shape(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        x = rng.normal(size=(rows, cols)) + 1j * rng.normal(size=(rows, cols))
        np.testing.assert_allclose(ifft2c(fft2c(x)), x, atol=1e-10)


class TestCentering:
    def test_dc_at_center(self):
        """A constant field transforms to a single centered peak."""
        n = 16
        x = np.ones((n, n), dtype=complex)
        f = fft2c(x)
        peak = np.unravel_index(np.argmax(np.abs(f)), f.shape)
        assert peak == (n // 2, n // 2)

    def test_batch_axes(self, rng):
        x = rng.normal(size=(3, 8, 8)) + 1j * rng.normal(size=(3, 8, 8))
        batched = fft2c(x)
        for i in range(3):
            np.testing.assert_allclose(batched[i], fft2c(x[i]), atol=1e-12)


class TestFreqGrid:
    def test_shapes_broadcast(self):
        ky, kx = fftfreq_grid((8, 12), 10.0)
        assert ky.shape == (8, 1)
        assert kx.shape == (1, 12)

    def test_zero_frequency_centered(self):
        ky, kx = fftfreq_grid((8, 8), 1.0)
        assert ky[4, 0] == 0.0
        assert kx[0, 4] == 0.0

    def test_nyquist_scale(self):
        ky, _ = fftfreq_grid((8, 8), 2.0)
        assert np.abs(ky).max() == pytest.approx(0.25)  # 1/(2*pixel)
