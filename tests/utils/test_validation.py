"""Argument validation helpers."""

import pytest

from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_shape2d,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive_int(bad, "n")

    @pytest.mark.parametrize("bad", [1.5, "3", None, True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "n")


class TestProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 100])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestShape2d:
    def test_accepts_pair(self):
        assert check_shape2d((3, 4), "shape") == (3, 4)

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            check_shape2d((1, 2, 3), "shape")

    def test_rejects_non_positive_entries(self):
        with pytest.raises(ValueError):
            check_shape2d((0, 4), "shape")
