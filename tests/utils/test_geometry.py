"""Rectangle geometry: unit + property-based tests.

The decomposition correctness proof rests on interval arithmetic
(DESIGN.md Sec. 3), so this module gets the heaviest property coverage.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.geometry import Rect, intervals_overlap, union_rects


def rects(max_coord=50, max_size=30):
    """Strategy for non-empty rectangles."""
    return st.builds(
        lambda r0, h, c0, w: Rect(r0, r0 + h, c0, c0 + w),
        st.integers(-max_coord, max_coord),
        st.integers(1, max_size),
        st.integers(-max_coord, max_coord),
        st.integers(1, max_size),
    )


class TestBasics:
    def test_shape_and_area(self):
        r = Rect(2, 5, 10, 14)
        assert r.height == 3
        assert r.width == 4
        assert r.shape == (3, 4)
        assert r.area == 12
        assert not r.is_empty

    def test_empty_rect(self):
        assert Rect(3, 3, 0, 5).is_empty
        assert Rect(0, 5, 3, 3).is_empty
        assert Rect(3, 3, 3, 3).area == 0

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 2, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 5, 2)

    def test_rect_is_hashable_and_ordered(self):
        a, b = Rect(0, 1, 0, 1), Rect(0, 1, 0, 2)
        assert len({a, b, Rect(0, 1, 0, 1)}) == 2
        assert sorted([b, a])[0] == a

    def test_contains_point(self):
        r = Rect(0, 2, 0, 2)
        assert r.contains_point(0, 0)
        assert r.contains_point(1, 1)
        assert not r.contains_point(2, 0)  # half-open
        assert not r.contains_point(0, 2)
        assert not r.contains_point(-1, 0)

    def test_iter_points_row_major(self):
        pts = list(Rect(0, 2, 5, 7).iter_points())
        assert pts == [(0, 5), (0, 6), (1, 5), (1, 6)]


class TestIntervals:
    def test_overlap_positive(self):
        assert intervals_overlap(0, 5, 3, 8)
        assert intervals_overlap(3, 8, 0, 5)

    def test_touching_is_not_overlap(self):
        assert not intervals_overlap(0, 5, 5, 8)

    def test_disjoint(self):
        assert not intervals_overlap(0, 2, 3, 4)


class TestSetOps:
    def test_intersect_basic(self):
        a, b = Rect(0, 4, 0, 4), Rect(2, 6, 2, 6)
        assert a.intersect(b) == Rect(2, 4, 2, 4)

    def test_intersect_disjoint_is_none(self):
        assert Rect(0, 2, 0, 2).intersect(Rect(5, 7, 5, 7)) is None

    def test_intersect_touching_is_none(self):
        assert Rect(0, 2, 0, 2).intersect(Rect(2, 4, 0, 2)) is None

    def test_union_bbox(self):
        a, b = Rect(0, 1, 0, 1), Rect(5, 6, 5, 6)
        assert a.union_bbox(b) == Rect(0, 6, 0, 6)

    def test_contains(self):
        outer, inner = Rect(0, 10, 0, 10), Rect(2, 5, 3, 7)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_union_rects(self):
        assert union_rects([Rect(0, 1, 0, 1), Rect(3, 4, 2, 5)]) == Rect(
            0, 4, 0, 5
        )

    def test_union_rects_empty_raises(self):
        with pytest.raises(ValueError):
            union_rects([])


class TestTransforms:
    def test_expand(self):
        assert Rect(5, 10, 5, 10).expand(2) == Rect(3, 12, 3, 12)

    def test_expand_asymmetric(self):
        assert Rect(5, 10, 5, 10).expand(1, 3) == Rect(4, 11, 2, 13)

    def test_clip_inside_is_identity(self):
        bounds = Rect(0, 20, 0, 20)
        r = Rect(2, 5, 3, 9)
        assert r.clip(bounds) == r

    def test_clip_overhang(self):
        bounds = Rect(0, 10, 0, 10)
        assert Rect(-3, 5, 8, 14).clip(bounds) == Rect(0, 5, 8, 10)

    def test_clip_fully_outside_collapses(self):
        bounds = Rect(0, 10, 0, 10)
        clipped = Rect(20, 25, 20, 25).clip(bounds)
        assert clipped.is_empty

    def test_shift(self):
        assert Rect(0, 2, 0, 2).shift(3, -1) == Rect(3, 5, -1, 1)


class TestSlices:
    def test_slices_in_frame(self):
        frame = Rect(10, 20, 10, 20)
        inner = Rect(12, 15, 11, 13)
        sr, sc = inner.slices_in(frame)
        assert (sr, sc) == (slice(2, 5), slice(1, 3))

    def test_slices_in_rejects_escape(self):
        with pytest.raises(ValueError):
            Rect(0, 5, 0, 5).slices_in(Rect(2, 10, 2, 10))

    def test_global_slices(self):
        assert Rect(1, 3, 4, 8).global_slices() == (slice(1, 3), slice(4, 8))

    def test_slices_roundtrip_through_array(self):
        frame = Rect(0, 10, 0, 10)
        region = Rect(2, 5, 3, 7)
        arr = np.zeros(frame.shape)
        sl = region.slices_in(frame)
        arr[sl] = 1.0
        assert arr.sum() == region.area


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------
class TestProperties:
    @given(rects(), rects())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersect(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(rects(), rects())
    def test_overlaps_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union_bbox(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), st.integers(0, 5), st.integers(0, 5))
    def test_expand_then_contains(self, r, mr, mc):
        assert r.expand(mr, mc).contains(r)

    @given(rects(), rects())
    def test_clip_result_inside_bounds(self, r, bounds):
        clipped = r.clip(bounds)
        assert bounds.r0 <= clipped.r0 <= clipped.r1 <= bounds.r1
        assert bounds.c0 <= clipped.c0 <= clipped.c1 <= bounds.c1

    @given(rects(), st.integers(-10, 10), st.integers(-10, 10))
    def test_shift_preserves_shape(self, r, dr, dc):
        assert r.shift(dr, dc).shape == r.shape

    @given(
        st.integers(0, 30),
        st.integers(1, 10),
        st.integers(0, 30),
        st.integers(1, 10),
        st.integers(0, 30),
        st.integers(1, 10),
    )
    def test_ordered_interval_containment(self, a0, ah, g1, bh, g2, ch):
        """The transitivity lemma of DESIGN.md Sec. 3: for ordered
        intervals A <= B <= C, A intersect C is contained in B."""
        b0 = a0 + g1
        c0 = b0 + g2
        # Make end points ordered as well.
        a1 = a0 + ah
        b1 = max(b0 + bh, a1)
        c1 = max(c0 + ch, b1)
        lo = max(a0, c0)
        hi = min(a1, c1)
        if lo < hi:  # A and C overlap
            assert b0 <= lo and hi <= b1
