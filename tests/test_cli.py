"""CLI workflow tests (main() called in-process)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_dataset, load_result


@pytest.fixture()
def dataset_path(tmp_path):
    path = tmp_path / "ds.npz"
    assert (
        main(
            [
                "simulate",
                "--grid", "4x4",
                "--detector", "16",
                "--slices", "2",
                "--seed", "3",
                "--out", str(path),
            ]
        )
        == 0
    )
    return path


class TestSimulate:
    def test_writes_loadable_dataset(self, dataset_path):
        dataset = load_dataset(dataset_path)
        assert dataset.n_probes == 16
        assert dataset.spec.detector_px == 16

    def test_dose_option(self, tmp_path):
        clean, noisy = tmp_path / "c.npz", tmp_path / "n.npz"
        main(["simulate", "--grid", "3x3", "--detector", "16",
              "--seed", "1", "--out", str(clean)])
        main(["simulate", "--grid", "3x3", "--detector", "16",
              "--seed", "1", "--dose", "1e4", "--out", str(noisy)])
        a, b = load_dataset(clean), load_dataset(noisy)
        assert not np.allclose(a.amplitudes, b.amplitudes)

    def test_bad_grid_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--grid", "4by4", "--out", str(tmp_path / "x")])


class TestReconstruct:
    @pytest.mark.parametrize("algorithm", ["gd", "hve", "serial"])
    def test_algorithms_run(self, dataset_path, tmp_path, algorithm, capsys):
        out = tmp_path / f"{algorithm}.npz"
        code = main(
            [
                "reconstruct",
                "--dataset", str(dataset_path),
                "--algorithm", algorithm,
                "--ranks", "4",
                "--iterations", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        result = load_result(out)
        assert len(result.history) == 2
        assert result.history[-1] < result.history[0]

    def test_resume(self, dataset_path, tmp_path, capsys):
        first = tmp_path / "first.npz"
        second = tmp_path / "second.npz"
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "2", "--out", str(first)])
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "2", "--resume", str(first),
              "--out", str(second)])
        a, b = load_result(first), load_result(second)
        assert b.history[0] < a.history[0]  # warm start pays off

    def test_refine_probe_flag(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "rp.npz"
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "1", "--refine-probe", "--out", str(out)])
        assert load_result(out).probe is not None

    def test_numeric_sync_period(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "t2.npz"
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--iterations", "1", "--sync-period", "2",
                     "--out", str(out)])
        assert code == 0


class TestPredict:
    def test_prints_table(self, capsys):
        assert main(["predict", "--dataset", "small", "--gpus", "6,24"]) == 0
        out = capsys.readouterr().out
        assert "GPUs" in out
        assert "24" in out

    def test_hve_na(self, capsys):
        main(["predict", "--dataset", "small", "--algorithm", "hve",
              "--gpus", "6,126"])
        assert "NA" in capsys.readouterr().out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "--name", "table1"]) == 0
        assert "pbtio3-small" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "--name", "fig5"]) == 0
        assert "GPU 9" in capsys.readouterr().out

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "fig42"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
