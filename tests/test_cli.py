"""CLI workflow tests (main() called in-process)."""

import numpy as np
import pytest

from repro.api import ReconstructionConfig, reconstruct, solver_names
from repro.cli import build_parser, main
from repro.io import load_dataset, load_result


@pytest.fixture()
def dataset_path(tmp_path):
    path = tmp_path / "ds.npz"
    assert (
        main(
            [
                "simulate",
                "--grid", "4x4",
                "--detector", "16",
                "--slices", "2",
                "--seed", "3",
                "--out", str(path),
            ]
        )
        == 0
    )
    return path


class TestSimulate:
    def test_writes_loadable_dataset(self, dataset_path):
        dataset = load_dataset(dataset_path)
        assert dataset.n_probes == 16
        assert dataset.spec.detector_px == 16

    def test_dose_option(self, tmp_path):
        clean, noisy = tmp_path / "c.npz", tmp_path / "n.npz"
        main(["simulate", "--grid", "3x3", "--detector", "16",
              "--seed", "1", "--out", str(clean)])
        main(["simulate", "--grid", "3x3", "--detector", "16",
              "--seed", "1", "--dose", "1e4", "--out", str(noisy)])
        a, b = load_dataset(clean), load_dataset(noisy)
        assert not np.allclose(a.amplitudes, b.amplitudes)

    def test_bad_grid_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--grid", "4by4", "--out", str(tmp_path / "x")])


class TestReconstruct:
    @pytest.mark.parametrize("algorithm", ["gd", "hve", "serial"])
    def test_algorithms_run(self, dataset_path, tmp_path, algorithm, capsys):
        out = tmp_path / f"{algorithm}.npz"
        code = main(
            [
                "reconstruct",
                "--dataset", str(dataset_path),
                "--algorithm", algorithm,
                "--ranks", "4",
                "--iterations", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        result = load_result(out)
        assert len(result.history) == 2
        assert result.history[-1] < result.history[0]

    def test_resume(self, dataset_path, tmp_path, capsys):
        first = tmp_path / "first.npz"
        second = tmp_path / "second.npz"
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "2", "--out", str(first)])
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "2", "--resume", str(first),
              "--out", str(second)])
        a, b = load_result(first), load_result(second)
        assert b.history[0] < a.history[0]  # warm start pays off

    def test_refine_probe_flag(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "rp.npz"
        main(["reconstruct", "--dataset", str(dataset_path),
              "--iterations", "1", "--refine-probe", "--out", str(out)])
        assert load_result(out).probe is not None

    def test_numeric_sync_period(self, dataset_path, tmp_path, capsys):
        out = tmp_path / "t2.npz"
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--iterations", "1", "--sync-period", "2",
                     "--out", str(out)])
        assert code == 0

    def test_hve_resume(self, dataset_path, tmp_path, capsys):
        first = tmp_path / "first.npz"
        second = tmp_path / "second.npz"
        main(["reconstruct", "--dataset", str(dataset_path),
              "--algorithm", "hve", "--iterations", "2",
              "--out", str(first)])
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--algorithm", "hve", "--iterations", "2",
                     "--resume", str(first), "--out", str(second)])
        assert code == 0
        a, b = load_result(first), load_result(second)
        assert b.history[0] < a.history[0]

    def test_hve_refine_probe_errors_clearly(
        self, dataset_path, tmp_path, capsys
    ):
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--algorithm", "hve", "--refine-probe",
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--refine-probe" in err
        assert "hve" in err
        assert not (tmp_path / "x.npz").exists()

    def test_serial_explicit_ranks_errors_clearly(
        self, dataset_path, tmp_path, capsys
    ):
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--algorithm", "serial", "--ranks", "8",
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        assert "--ranks" in capsys.readouterr().err

    def test_explicit_lr_errors_for_solver_without_lr(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.api import register_solver, unregister_solver

        @register_solver("no-lr-test")
        class NoLr:
            accepted_params = frozenset({"iterations"})

            def __init__(self, iterations=1):
                self.iterations = iterations

            def reconstruct(self, dataset, *, observers=(),
                            initial_probe=None, initial_volume=None):
                raise AssertionError("should not run")

        try:
            code = main(["reconstruct", "--dataset", str(dataset_path),
                         "--algorithm", "no-lr-test", "--lr", "0.5",
                         "--out", str(tmp_path / "x.npz")])
        finally:
            unregister_solver("no-lr-test")
        assert code == 2
        assert "--lr" in capsys.readouterr().err


class TestReconstructConfig:
    def _write_config(self, tmp_path, config):
        path = tmp_path / "run.json"
        path.write_text(config.to_json())
        return path

    def test_config_file_runs_and_is_embedded(
        self, dataset_path, tmp_path, capsys
    ):
        config = ReconstructionConfig(
            "gd", {"n_ranks": 4, "iterations": 2, "lr": 0.02}
        )
        out = tmp_path / "rec.npz"
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(self._write_config(tmp_path, config)),
                     "--out", str(out)])
        assert code == 0
        archive = load_result(out)
        assert archive.config == config
        assert len(archive.history) == 2

    def test_flag_run_embeds_resolved_config_and_replays(
        self, dataset_path, tmp_path, capsys
    ):
        out = tmp_path / "rec.npz"
        assert main(["reconstruct", "--dataset", str(dataset_path),
                     "--iterations", "2", "--out", str(out)]) == 0
        archive = load_result(out)
        assert archive.config is not None
        assert archive.config.solver == "gd"
        # the auto-chosen lr is resolved into the config ...
        assert archive.config.solver_params["lr"] > 0
        # ... so replaying it through the API reproduces the run exactly
        replay = reconstruct(load_dataset(dataset_path), archive.config)
        assert replay.history == archive.history

    def test_unknown_solver_in_config_lists_registered(
        self, dataset_path, tmp_path, capsys
    ):
        path = tmp_path / "bad.json"
        path.write_text('{"solver": "wat"}')
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(path),
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        err = capsys.readouterr().err
        for name in solver_names():
            assert name in err

    def test_config_plus_explicit_solver_flag_errors(
        self, dataset_path, tmp_path, capsys
    ):
        config = ReconstructionConfig("gd", {"iterations": 1, "lr": 0.02})
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(self._write_config(tmp_path, config)),
                     "--refine-probe",
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--refine-probe" in err and "--config" in err
        assert not (tmp_path / "x.npz").exists()

    def test_config_missing_file_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        assert "cannot read --config" in capsys.readouterr().err

    def test_config_non_object_payload_errors_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(path),
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        assert "mapping" in capsys.readouterr().err

    def test_config_with_unsupported_param_errors(
        self, dataset_path, tmp_path, capsys
    ):
        config = ReconstructionConfig(
            "hve", {"iterations": 1, "refine_probe": True}
        )
        code = main(["reconstruct", "--dataset", str(dataset_path),
                     "--config", str(self._write_config(tmp_path, config)),
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        assert "refine_probe" in capsys.readouterr().err

    def test_algorithm_choices_come_from_registry(self):
        parser = build_parser()
        text = parser.format_help()
        # find the reconstruct subparser's --algorithm choices
        sub = [
            a for a in parser._subparsers._group_actions[0].choices.items()
        ]
        rec = dict(sub)["reconstruct"]
        algo = [a for a in rec._actions if "--algorithm" in a.option_strings]
        assert algo[0].choices == solver_names()


class TestPredict:
    def test_prints_table(self, capsys):
        assert main(["predict", "--dataset", "small", "--gpus", "6,24"]) == 0
        out = capsys.readouterr().out
        assert "GPUs" in out
        assert "24" in out

    def test_hve_na(self, capsys):
        main(["predict", "--dataset", "small", "--algorithm", "hve",
              "--gpus", "6,126"])
        assert "NA" in capsys.readouterr().out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "--name", "table1"]) == 0
        assert "pbtio3-small" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "--name", "fig5"]) == 0
        assert "GPU 9" in capsys.readouterr().out

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "fig42"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
