"""Stitching: halo discard + exact core assembly."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.core.stitching import stitch
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec


@pytest.fixture(scope="module")
def decomp():
    scan = RasterScan(ScanSpec(grid=(4, 4), step_px=4.0), probe_window_px=10)
    r, c = scan.required_fov()
    return decompose_gradient(scan, (r + 2, c + 2), mesh=MeshLayout(2, 3))


class TestStitch:
    def test_core_values_survive(self, decomp, rng):
        """Each output voxel equals its owner's core value."""
        n_slices = 2
        volumes = []
        for t in decomp.tiles:
            vol = np.full(
                (n_slices, t.ext.height, t.ext.width),
                t.rank + 1.0,
                dtype=np.complex128,
            )
            volumes.append(vol)
        out = stitch(decomp, volumes, n_slices)
        for t in decomp.tiles:
            sl = t.core.slices_in(decomp.bounds)
            np.testing.assert_array_equal(out[:, sl[0], sl[1]], t.rank + 1.0)

    def test_halos_discarded(self, decomp):
        """Poisoned halos must not leak into the output."""
        n_slices = 1
        volumes = []
        for t in decomp.tiles:
            vol = np.full(
                (n_slices, t.ext.height, t.ext.width), np.nan, dtype=complex
            )
            core_sl = t.core.slices_in(t.ext)
            vol[:, core_sl[0], core_sl[1]] = t.rank
            volumes.append(vol)
        out = stitch(decomp, volumes, n_slices)
        assert np.isfinite(out).all()

    def test_full_coverage(self, decomp):
        n_slices = 1
        volumes = [
            np.ones((n_slices, t.ext.height, t.ext.width), dtype=complex)
            for t in decomp.tiles
        ]
        out = stitch(decomp, volumes, n_slices)
        np.testing.assert_array_equal(out, np.ones_like(out))

    def test_wrong_volume_count(self, decomp):
        with pytest.raises(ValueError):
            stitch(decomp, [np.zeros((1, 4, 4))], 1)

    def test_wrong_volume_shape(self, decomp):
        volumes = [
            np.zeros((1, t.ext.height, t.ext.width), dtype=complex)
            for t in decomp.tiles
        ]
        volumes[0] = np.zeros((1, 3, 3), dtype=complex)
        with pytest.raises(ValueError, match="shape"):
            stitch(decomp, volumes, 1)

    def test_wrong_rank_count_message_names_both_counts(self, decomp):
        with pytest.raises(ValueError, match="1 volumes for 6 ranks"):
            stitch(decomp, [np.zeros((1, 4, 4))], 1)

    def test_mixed_dtypes_rejected(self, decomp):
        """Mixed per-rank precisions must raise, not silently take
        volumes[0].dtype (which would downcast every complex128 tile
        through a complex64 output — or upcast and misreport memory)."""
        volumes = [
            np.zeros((1, t.ext.height, t.ext.width), dtype=np.complex128)
            for t in decomp.tiles
        ]
        volumes[-1] = volumes[-1].astype(np.complex64)
        with pytest.raises(ValueError, match="mixed dtypes"):
            stitch(decomp, volumes, 1)

    def test_mixed_dtype_error_names_the_dtypes(self, decomp):
        volumes = [
            np.zeros((1, t.ext.height, t.ext.width), dtype=np.complex128)
            for t in decomp.tiles
        ]
        volumes[0] = volumes[0].astype(np.complex64)
        with pytest.raises(ValueError, match="complex128.*complex64"):
            stitch(decomp, volumes, 1)

    def test_uniform_complex64_still_stitches(self, decomp):
        volumes = [
            np.ones((1, t.ext.height, t.ext.width), dtype=np.complex64)
            for t in decomp.tiles
        ]
        out = stitch(decomp, volumes, 1)
        assert out.dtype == np.complex64
