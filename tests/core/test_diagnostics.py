"""Decomposition/schedule diagnostics."""

import numpy as np
import pytest

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.core.decomposition import decompose_gradient
from repro.core.diagnostics import (
    communication_matrix,
    critical_path_length,
    load_balance,
)
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec


@pytest.fixture(scope="module")
def setup():
    scan = RasterScan(ScanSpec(grid=(6, 6), step_px=4.0), probe_window_px=12)
    r, c = scan.required_fov()
    decomp = decompose_gradient(scan, (r + 2, c + 2), mesh=MeshLayout(2, 3))
    recon = GradientDecompositionReconstructor(mesh=decomp.mesh, iterations=1)
    schedule = recon.build_iteration_schedule(decomp)
    return decomp, schedule


class TestLoadBalance:
    def test_statistics(self, setup):
        decomp, _ = setup
        report = load_balance(decomp)
        assert report.probes_min <= report.probes_mean <= report.probes_max
        assert report.probes_mean == pytest.approx(36 / 6)
        assert report.probe_imbalance >= 1.0
        assert report.pixel_imbalance >= 1.0

    def test_balanced_scan_partition(self, setup):
        decomp, _ = setup
        assert load_balance(decomp).probe_imbalance < 1.5

    def test_format(self, setup):
        decomp, _ = setup
        text = load_balance(decomp).format()
        assert "probes/rank" in text
        assert "imbalance" in text


class TestCommunicationMatrix:
    def test_shape_and_symmetric_pattern(self, setup):
        decomp, schedule = setup
        m = communication_matrix(schedule)
        assert m.shape == (6, 6)
        # APPP passes exchange forward and backward over the same
        # overlaps: traffic pattern (nonzero-ness) is symmetric.
        np.testing.assert_array_equal(m > 0, (m > 0).T)

    def test_no_self_traffic(self, setup):
        _, schedule = setup
        assert np.trace(communication_matrix(schedule)) == 0.0

    def test_bytes_scaling(self, setup):
        _, schedule = setup
        m1 = communication_matrix(schedule, pixels_to_bytes=1.0)
        m8 = communication_matrix(schedule, pixels_to_bytes=8.0)
        np.testing.assert_allclose(m8, 8.0 * m1)

    def test_only_mesh_neighbours_talk(self, setup):
        decomp, schedule = setup
        m = communication_matrix(schedule)
        for a in range(decomp.n_ranks):
            for b in range(decomp.n_ranks):
                if m[a, b] > 0:
                    # Directional passes only pair row/column neighbours.
                    ra, ca = decomp.mesh.coords_of(a)
                    rb, cb = decomp.mesh.coords_of(b)
                    assert (ra == rb and abs(ca - cb) == 1) or (
                        ca == cb and abs(ra - rb) == 1
                    )


class TestCriticalPath:
    def test_parallel_schedule_beats_serial_work(self, setup):
        decomp, schedule = setup
        total_probes = sum(len(t.probes) for t in decomp.tiles)
        cp = critical_path_length(schedule)
        assert cp < total_probes  # parallelism exists
        assert cp >= total_probes / decomp.n_ranks  # and is bounded

    def test_hve_critical_path_includes_redundancy(self, setup):
        """The extra neighbour probes lengthen HVE's per-iteration
        critical path well beyond the gradient decomposition's."""
        decomp, gd_schedule = setup
        from repro.core.decomposition import decompose_halo_exchange

        hve = HaloExchangeReconstructor(
            mesh=decomp.mesh, iterations=1, extra_rows=1,
            enforce_tile_constraint=False,
        )
        hve_decomp = decompose_halo_exchange(
            decomp.scan,
            (decomp.bounds.r1, decomp.bounds.c1),
            mesh=decomp.mesh,
            extra_rows=1,
            enforce_tile_constraint=False,
        )
        hve_schedule = hve.build_iteration_schedule(hve_decomp)
        assert critical_path_length(hve_schedule) > critical_path_length(
            gd_schedule
        )

    def test_empty_schedule(self):
        from repro.schedule.ops import Schedule

        assert critical_path_length(Schedule(2)) == 0.0
