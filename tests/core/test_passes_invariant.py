"""THE central invariant (paper Secs. III-IV):

after vertical forward+backward and horizontal forward+backward passes,
every rank's accumulation buffer equals the restriction of the *global*
buffer sum to its extended tile.

Checked property-based over random mesh shapes, scan geometries, halo
widths and buffer contents, with a 30-line reference executor
(tests/helpers.py) that is independent of the numeric engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import decompose_gradient
from repro.core.passes import (
    build_allreduce_sync,
    build_appp_passes,
    build_barrier_passes,
    build_neighbor_exchanges,
)
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec
from repro.schedule.ops import Schedule

from tests.helpers import ReferenceBufferExecutor, random_buffers


def make_decomp(mesh_r, mesh_c, grid=6, step=4.0, window=12, halo="exact"):
    scan = RasterScan(
        ScanSpec(grid=(grid, grid), step_px=step), probe_window_px=window
    )
    r, c = scan.required_fov()
    return decompose_gradient(
        scan, (r + 2, c + 2), mesh=MeshLayout(mesh_r, mesh_c), halo=halo
    )


def assert_invariant(decomp, builder, rng, lead=()):
    buffers = random_buffers(decomp, rng, lead=lead)
    executor = ReferenceBufferExecutor(decomp, [b.copy() for b in buffers])
    expected = ReferenceBufferExecutor(decomp, buffers).global_sum()

    schedule = Schedule(decomp.n_ranks)
    builder(schedule, decomp)
    schedule.validate()
    executor.run(schedule)

    for rank, tile in enumerate(decomp.tiles):
        sl = tile.ext.slices_in(decomp.bounds)
        np.testing.assert_allclose(
            executor.buffers[rank],
            expected[(Ellipsis, *sl)],
            atol=1e-10,
            err_msg=f"rank {rank} buffer does not match the global sum",
        )


class TestAPPPInvariant:
    def test_3x3_paper_example(self, rng):
        assert_invariant(make_decomp(3, 3), build_appp_passes, rng)

    def test_with_slices_axis(self, rng):
        assert_invariant(make_decomp(2, 3), build_appp_passes, rng, lead=(2,))

    def test_single_rank_noop(self, rng):
        assert_invariant(make_decomp(1, 1), build_appp_passes, rng)

    def test_strip_meshes(self, rng):
        assert_invariant(make_decomp(1, 4), build_appp_passes, rng)
        assert_invariant(make_decomp(4, 1), build_appp_passes, rng)

    def test_high_overlap_indirect_neighbours(self, rng):
        """Windows spanning non-adjacent tiles (paper Fig. 3(c)): the
        directional passes must still deliver exact sums."""
        decomp = make_decomp(4, 4, grid=8, step=2.0, window=16)
        # sanity: some ext tiles overlap non-adjacent tiles
        t0 = decomp.tile_at(0, 0).ext
        t2 = decomp.tile_at(2, 0).ext
        assert t0.overlaps(t2), "test setup should be high-overlap"
        assert_invariant(decomp, build_appp_passes, rng)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(3, 8),
        st.integers(2, 6),
        st.integers(8, 16),
        st.integers(12345, 99999),
    )
    def test_property_random_geometry(
        self, mesh_r, mesh_c, grid, step, window, seed
    ):
        rng = np.random.default_rng(seed)
        decomp = make_decomp(
            mesh_r, mesh_c, grid=grid, step=float(step), window=window
        )
        assert_invariant(decomp, build_appp_passes, rng)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10), st.integers(77, 777))
    def test_property_fixed_halo(self, halo, seed):
        rng = np.random.default_rng(seed)
        decomp = make_decomp(3, 2, halo=halo)
        assert_invariant(decomp, build_appp_passes, rng)


class TestOtherPlannersMatch:
    def test_barrier_equals_appp(self, rng):
        decomp = make_decomp(3, 3)
        assert_invariant(decomp, build_barrier_passes, rng)

    def test_allreduce_equals_appp(self, rng):
        decomp = make_decomp(3, 3)
        assert_invariant(decomp, build_allreduce_sync, rng)

    def test_all_planners_identical_results(self, rng):
        """Same buffers through all three correct planners — identical."""
        decomp = make_decomp(2, 4)
        base = random_buffers(decomp, rng)
        results = []
        for builder in (
            build_appp_passes,
            build_barrier_passes,
            build_allreduce_sync,
        ):
            ex = ReferenceBufferExecutor(decomp, [b.copy() for b in base])
            schedule = Schedule(decomp.n_ranks)
            builder(schedule, decomp)
            ex.run(schedule)
            results.append(ex.buffers)
        for rank in range(decomp.n_ranks):
            np.testing.assert_allclose(
                results[0][rank], results[1][rank], atol=1e-10
            )
            np.testing.assert_allclose(
                results[0][rank], results[2][rank], atol=1e-10
            )


class TestNeighborPlannerLimits:
    """The Sec. III direct-neighbour scheme: right at low overlap, wrong at
    high overlap — the failure that motivates the directional passes."""

    def test_correct_when_overlap_is_direct_only(self, rng):
        # Large tiles relative to halos: ext tiles only touch direct
        # neighbours, where pairwise adds are exact.
        decomp = make_decomp(2, 2, grid=6, step=5.0, window=8)
        for a in range(decomp.n_ranks):
            for b in range(decomp.n_ranks):
                if a != b and decomp.overlap(a, b) is not None:
                    assert b in decomp.mesh.neighbors8(a)
        assert_invariant(decomp, build_neighbor_exchanges, rng)

    def test_wrong_at_high_overlap(self, rng):
        """Non-adjacent tiles never hear from each other (Fig. 3(d))."""
        decomp = make_decomp(4, 4, grid=8, step=2.0, window=16)
        buffers = random_buffers(decomp, rng)
        expected = ReferenceBufferExecutor(
            decomp, [b.copy() for b in buffers]
        ).global_sum()
        ex = ReferenceBufferExecutor(decomp, buffers)
        schedule = Schedule(decomp.n_ranks)
        build_neighbor_exchanges(schedule, decomp)
        ex.run(schedule)
        t = decomp.tile_at(0, 0)
        sl = t.ext.slices_in(decomp.bounds)
        with pytest.raises(AssertionError):
            np.testing.assert_allclose(
                ex.buffers[0], expected[(Ellipsis, *sl)], atol=1e-10
            )


class TestPassStructure:
    def test_appp_has_no_barriers(self):
        decomp = make_decomp(3, 3)
        schedule = Schedule(decomp.n_ranks)
        build_appp_passes(schedule, decomp)
        assert "Barrier" not in schedule.counts()

    def test_barrier_planner_has_barriers(self):
        decomp = make_decomp(3, 3)
        schedule = Schedule(decomp.n_ranks)
        build_barrier_passes(schedule, decomp)
        assert schedule.counts()["Barrier"] == 4  # one per phase

    def test_appp_message_count_scales_with_mesh(self):
        """(rows-1)*cols vertical + rows*(cols-1) horizontal edges, each
        exchanged twice (forward + backward)."""
        decomp = make_decomp(3, 3)
        schedule = Schedule(decomp.n_ranks)
        build_appp_passes(schedule, decomp)
        n_exchanges = schedule.counts()["BufferExchange"]
        expected = 2 * ((3 - 1) * 3 + 3 * (3 - 1))
        assert n_exchanges == expected

    def test_exchange_regions_inside_both_ext_tiles(self):
        decomp = make_decomp(3, 4)
        schedule = Schedule(decomp.n_ranks)
        build_appp_passes(schedule, decomp)
        from repro.schedule.ops import BufferExchange

        for op in schedule:
            if isinstance(op, BufferExchange):
                assert decomp.tile(op.src).ext.contains(op.region)
                assert decomp.tile(op.dst).ext.contains(op.region)

    def test_forward_adds_backward_replaces(self):
        decomp = make_decomp(3, 1)
        schedule = Schedule(decomp.n_ranks)
        build_appp_passes(schedule, decomp)
        from repro.schedule.ops import BufferExchange

        ops = [op for op in schedule if isinstance(op, BufferExchange)]
        # Vertical forward first (top->bottom, add), then backward
        # (bottom->top, replace).
        assert ops[0].mode == "add" and ops[0].src < ops[0].dst
        assert ops[-1].mode == "replace" and ops[-1].src > ops[-1].dst
