"""Joint probe refinement (extension beyond the paper).

The probe is one small global array, so its gradient is synchronized with
an all-reduce (cheap — unlike the volume gradient the paper's passes
exist for).  The anchor test: distributed synchronous refinement equals
serial refinement to floating point.

Plain gradient descent on the probe converges slowly (the amplitude cost
is rugged in probe space); assertions target correctness — descent
direction, consensus equivalence, accounting — not recovery speed.
"""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.physics.dataset import (
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)
from repro.physics.probe import ProbeSpec, make_probe


@pytest.fixture(scope="module")
def workload():
    spec = scaled_pbtio3_spec(
        scan_grid=(5, 5), detector_px=20, n_slices=2, overlap_ratio=0.72
    )
    dataset = simulate_dataset(spec, seed=31)
    bad_spec = ProbeSpec(
        window=spec.detector_px,
        defocus_pm=spec.defocus_pm * 1.3,
        pixel_size_pm=spec.pixel_size_pm,
        aperture_rad=spec.aperture_rad,
    )
    bad_probe = make_probe(bad_spec).array
    return dataset, suggest_lr(dataset, 0.4), bad_probe


class TestSerialRefinement:
    def test_probe_only_descends(self, workload):
        """Object frozen at ground truth: probe updates must decrease the
        cost monotonically at a stable step size."""
        dataset, _, bad_probe = workload
        result = SerialReconstructor(
            iterations=8, lr=0.0, refine_probe=True, probe_lr=2.0 / 25
        ).reconstruct(
            dataset,
            initial_probe=bad_probe,
            initial_volume=dataset.ground_truth,
        )
        assert result.history[-1] < result.history[0]
        assert all(
            b <= a * (1 + 1e-9)
            for a, b in zip(result.history, result.history[1:])
        )

    def test_probe_returned_only_when_refining(self, workload):
        dataset, lr, bad_probe = workload
        off = SerialReconstructor(iterations=1, lr=lr).reconstruct(dataset)
        on = SerialReconstructor(
            iterations=1, lr=lr, refine_probe=True
        ).reconstruct(dataset, initial_probe=bad_probe)
        assert off.probe is None
        assert on.probe is not None
        assert on.probe.shape == bad_probe.shape

    def test_probe_moves_during_refinement(self, workload):
        dataset, lr, bad_probe = workload
        result = SerialReconstructor(
            iterations=3, lr=lr, refine_probe=True
        ).reconstruct(dataset, initial_probe=bad_probe)
        assert not np.allclose(result.probe, bad_probe)

    def test_probe_lr_validation(self):
        with pytest.raises(ValueError):
            SerialReconstructor(refine_probe=True, probe_lr=-0.1)

    def test_true_probe_stays_put(self, workload):
        """Starting at the true probe and ground-truth object, the probe
        gradient is ~zero: refinement must not wander off."""
        dataset, _, _ = workload
        result = SerialReconstructor(
            iterations=3, lr=0.0, refine_probe=True, probe_lr=1.0 / 25
        ).reconstruct(dataset, initial_volume=dataset.ground_truth)
        drift = np.abs(result.probe - dataset.probe.array).max()
        assert drift < 1e-3


class TestDistributedRefinement:
    def test_matches_serial_exactly(self, workload):
        """The consensus (all-reduced) probe gradient makes distributed
        refinement bit-equivalent to serial in synchronous mode."""
        dataset, lr, bad_probe = workload
        serial = SerialReconstructor(
            iterations=4, lr=lr, refine_probe=True
        ).reconstruct(dataset, initial_probe=bad_probe)
        dist = GradientDecompositionReconstructor(
            n_ranks=4, iterations=4, lr=lr, mode="synchronous",
            refine_probe=True,
        ).reconstruct(dataset, initial_probe=bad_probe)
        np.testing.assert_allclose(dist.volume, serial.volume, atol=1e-10)
        np.testing.assert_allclose(dist.probe, serial.probe, atol=1e-12)

    def test_rank_count_invariance(self, workload):
        dataset, lr, bad_probe = workload
        probes = []
        for n_ranks in (2, 6):
            result = GradientDecompositionReconstructor(
                n_ranks=n_ranks, iterations=3, lr=lr, mode="synchronous",
                refine_probe=True,
            ).reconstruct(dataset, initial_probe=bad_probe)
            probes.append(result.probe)
        np.testing.assert_allclose(probes[0], probes[1], atol=1e-12)

    def test_alg1_mode_runs_finite(self, workload):
        dataset, lr, bad_probe = workload
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=3, lr=lr * 0.5, mode="alg1",
            refine_probe=True,
        ).reconstruct(dataset, initial_probe=bad_probe)
        assert np.isfinite(result.volume).all()
        assert np.isfinite(result.probe).all()

    def test_probe_sync_traffic_accounted(self, workload):
        dataset, lr, _ = workload
        with_ref = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=lr, refine_probe=True
        ).reconstruct(dataset)
        without = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=lr
        ).reconstruct(dataset)
        assert with_ref.messages > without.messages

    def test_schedule_contains_probe_ops(self, workload):
        dataset, lr, _ = workload
        recon = GradientDecompositionReconstructor(
            n_ranks=4, iterations=1, lr=lr, refine_probe=True
        )
        decomp = recon.decompose(dataset)
        counts = recon.build_iteration_schedule(decomp).counts()
        assert counts["ProbeSync"] == 1
        assert counts["ApplyProbeUpdate"] == 4


class TestWarmStart:
    def test_initial_volume_roundtrip(self, workload):
        """Zero iterations of movement: warm-starting from a volume and
        running with lr=0 returns the same volume."""
        dataset, _, _ = workload
        result = GradientDecompositionReconstructor(
            n_ranks=4, iterations=1, lr=0.0, mode="synchronous"
        ).reconstruct(dataset, initial_volume=dataset.ground_truth)
        np.testing.assert_allclose(
            result.volume, dataset.ground_truth, atol=1e-12
        )

    def test_checkpoint_restart_equals_straight_run(self, workload):
        """iterations=4 equals 2+2 with a volume checkpoint between —
        the restart pathway the io module builds on."""
        dataset, lr, _ = workload
        straight = SerialReconstructor(iterations=4, lr=lr).reconstruct(
            dataset
        )
        first = SerialReconstructor(iterations=2, lr=lr).reconstruct(dataset)
        second = SerialReconstructor(iterations=2, lr=lr).reconstruct(
            dataset, initial_volume=first.volume
        )
        np.testing.assert_allclose(
            second.volume, straight.volume, atol=1e-12
        )

    def test_initial_volume_shape_validated(self, workload):
        dataset, lr, _ = workload
        with pytest.raises(ValueError):
            GradientDecompositionReconstructor(
                n_ranks=2, iterations=1, lr=lr
            ).reconstruct(
                dataset, initial_volume=np.ones((1, 4, 4), dtype=complex)
            )
