"""GradientDecompositionReconstructor — the headline correctness tests.

The anchor: synchronous mode with exact halos equals the serial full-batch
solver to floating-point tolerance at every rank count and planner.
"""

import numpy as np
import pytest

from repro.baseline.serial import SerialReconstructor
from repro.core.reconstructor import (
    GradientDecompositionReconstructor,
    ReconstructionResult,
    _round_chunks,
)
from repro.parallel.topology import MeshLayout


@pytest.fixture(scope="module")
def serial_result(small_dataset, small_lr):
    return SerialReconstructor(iterations=3, lr=small_lr).reconstruct(
        small_dataset
    )


class TestSerialEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 6, 9])
    def test_sync_mode_matches_serial(
        self, small_dataset, small_lr, serial_result, n_ranks
    ):
        recon = GradientDecompositionReconstructor(
            n_ranks=n_ranks,
            iterations=3,
            lr=small_lr,
            mode="synchronous",
            halo="exact",
        )
        result = recon.reconstruct(small_dataset)
        np.testing.assert_allclose(
            result.volume, serial_result.volume, atol=1e-10
        )

    @pytest.mark.parametrize("planner", ["appp", "barrier", "allreduce"])
    def test_all_planners_match_serial(
        self, small_dataset, small_lr, serial_result, planner
    ):
        recon = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=3,
            lr=small_lr,
            mode="synchronous",
            planner=planner,
            halo="exact",
        )
        result = recon.reconstruct(small_dataset)
        np.testing.assert_allclose(
            result.volume, serial_result.volume, atol=1e-10
        )

    def test_sync_half_period_deterministic_and_convergent(
        self, small_dataset, small_lr
    ):
        """Sub-iteration rounds in synchronous mode behave like minibatch
        descent: deterministic for a fixed mesh, and convergent.  (The
        result legitimately depends on the probe partition, so no
        cross-rank-count equality is expected here — only the
        one-round-per-iteration case matches serial exactly.)"""
        recon = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=3,
            lr=small_lr,
            mode="synchronous",
            sync_period="half",
            halo="exact",
        )
        a = recon.reconstruct(small_dataset)
        b = recon.reconstruct(small_dataset)
        np.testing.assert_array_equal(a.volume, b.volume)
        assert a.history[-1] < a.history[0]

    def test_cost_history_matches_serial(
        self, small_dataset, small_lr, serial_result
    ):
        recon = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=3,
            lr=small_lr,
            mode="synchronous",
            halo="exact",
        )
        result = recon.reconstruct(small_dataset)
        np.testing.assert_allclose(
            result.history, serial_result.history, rtol=1e-9
        )


class TestAlg1Mode:
    def test_converges(self, small_dataset, small_lr):
        recon = GradientDecompositionReconstructor(
            n_ranks=4, iterations=5, lr=small_lr * 0.5, mode="alg1"
        )
        result = recon.reconstruct(small_dataset)
        assert result.history[-1] < 0.5 * result.history[0]

    def test_compensate_local_converges(self, small_dataset, small_lr):
        recon = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=5,
            lr=small_lr * 0.5,
            mode="alg1",
            compensate_local=True,
        )
        result = recon.reconstruct(small_dataset)
        assert result.history[-1] < 0.5 * result.history[0]

    @pytest.mark.parametrize("period", ["probe", "half", "iteration", 3])
    def test_sync_periods_run(self, tiny_dataset, tiny_lr, period):
        recon = GradientDecompositionReconstructor(
            n_ranks=4,
            iterations=2,
            lr=tiny_lr * 0.5,
            mode="alg1",
            sync_period=period,
        )
        result = recon.reconstruct(tiny_dataset)
        assert len(result.history) == 2
        assert np.isfinite(result.volume).all()

    def test_more_frequent_passes_more_messages(self, tiny_dataset, tiny_lr):
        msgs = {}
        for period in ("iteration", "probe"):
            recon = GradientDecompositionReconstructor(
                n_ranks=4,
                iterations=1,
                lr=tiny_lr * 0.5,
                sync_period=period,
            )
            msgs[period] = recon.reconstruct(tiny_dataset).messages
        assert msgs["probe"] > msgs["iteration"]


class TestConfiguration:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            GradientDecompositionReconstructor(n_ranks=2, mode="magic")

    def test_invalid_planner(self):
        with pytest.raises(ValueError):
            GradientDecompositionReconstructor(n_ranks=2, planner="carrier")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            GradientDecompositionReconstructor(n_ranks=2, iterations=0)

    def test_invalid_sync_period(self, tiny_dataset):
        recon = GradientDecompositionReconstructor(
            n_ranks=2, sync_period="sometimes"
        )
        with pytest.raises(ValueError):
            recon.reconstruct(tiny_dataset)

    def test_explicit_mesh(self, tiny_dataset, tiny_lr):
        recon = GradientDecompositionReconstructor(
            mesh=MeshLayout(2, 2), iterations=1, lr=tiny_lr
        )
        result = recon.reconstruct(tiny_dataset)
        assert result.decomposition.mesh.n_ranks == 4


class TestRoundChunks:
    def test_iteration_is_single_round(self):
        rounds = _round_chunks([(0, 1, 2), (3, 4)], "iteration")
        assert len(rounds) == 1
        assert rounds[0] == [(0, 1, 2), (3, 4)]

    def test_half_is_two_rounds(self):
        rounds = _round_chunks([(0, 1, 2, 3), (4, 5)], "half")
        assert len(rounds) == 2
        assert rounds[0][0] == (0, 1)
        assert rounds[1][1] == ()

    def test_probe_is_per_probe(self):
        rounds = _round_chunks([(0, 1), (2,)], "probe")
        assert len(rounds) == 2
        assert rounds[0] == [(0,), (2,)]
        assert rounds[1] == [(1,), ()]

    def test_integer_period(self):
        rounds = _round_chunks([(0, 1, 2, 3, 4)], 2)
        assert [r[0] for r in rounds] == [(0, 1), (2, 3), (4,)]

    def test_every_probe_appears_once(self):
        probe_lists = [(0, 1, 2, 3, 4), (5, 6), ()]
        rounds = _round_chunks(probe_lists, 2)
        seen = [p for rnd in rounds for chunk in rnd for p in chunk]
        assert sorted(seen) == list(range(7))

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            _round_chunks([(0,)], 0)
        with pytest.raises(ValueError):
            _round_chunks([(0,)], "never")


class TestResult:
    def test_result_fields(self, tiny_dataset, tiny_lr):
        recon = GradientDecompositionReconstructor(
            n_ranks=4, iterations=2, lr=tiny_lr
        )
        result = recon.reconstruct(tiny_dataset)
        assert isinstance(result, ReconstructionResult)
        assert result.n_iterations == 2
        assert result.final_cost == result.history[-1]
        assert result.messages > 0
        assert result.message_bytes > 0
        assert len(result.peak_memory_per_rank) == 4
        assert result.peak_memory_mean > 0
        assert result.volume.shape == (
            tiny_dataset.n_slices,
            *tiny_dataset.object_shape,
        )

    def test_callback_invoked(self, tiny_dataset, tiny_lr):
        calls = []
        recon = GradientDecompositionReconstructor(
            n_ranks=2, iterations=3, lr=tiny_lr
        )
        recon.reconstruct(
            tiny_dataset, callback=lambda it, cost, eng: calls.append(it)
        )
        assert calls == [0, 1, 2]

    def test_schedule_reusable_for_timing(self, tiny_dataset):
        """The same schedule object feeds the event simulator — the
        one-program-two-interpreters contract."""
        recon = GradientDecompositionReconstructor(n_ranks=4, iterations=1)
        decomp = recon.decompose(tiny_dataset)
        schedule = recon.build_iteration_schedule(decomp)
        from repro.parallel.event_sim import EventSimulator
        from repro.parallel.network import NetworkModel
        from repro.parallel.topology import ClusterTopology

        class Unit:
            def gradient_seconds(self, rank, n):
                return float(n)

            def exchange_bytes(self, area):
                return float(area)

            def apply_seconds(self, area):
                return 0.0

            def update_seconds(self, rank):
                return 0.0

            def allreduce_bytes(self):
                return 1.0

        report = EventSimulator(
            NetworkModel(ClusterTopology(4)), Unit()
        ).run(schedule)
        assert report.makespan_s > 0
