"""Property-based tests of engine-level invariants (pure-array level,
independent of the physics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import decompose_gradient
from repro.core.stitching import stitch
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec


def make_decomp(mesh_r, mesh_c, grid=5, step=4.0, window=10):
    scan = RasterScan(
        ScanSpec(grid=(grid, grid), step_px=step), probe_window_px=window
    )
    r, c = scan.required_fov()
    return decompose_gradient(
        scan, (r + 3, c + 3), mesh=MeshLayout(mesh_r, mesh_c)
    )


class TestScatterStitchRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    def test_restrict_then_stitch_is_identity(
        self, mesh_r, mesh_c, slices, seed
    ):
        """Distributing a global volume to extended tiles and stitching
        the cores back returns the original volume exactly."""
        decomp = make_decomp(mesh_r, mesh_c)
        rng = np.random.default_rng(seed)
        bounds = decomp.bounds
        global_volume = rng.normal(
            size=(slices, bounds.height, bounds.width)
        ) + 1j * rng.normal(size=(slices, bounds.height, bounds.width))
        tiles = []
        for t in decomp.tiles:
            sl = t.ext.slices_in(bounds)
            tiles.append(global_volume[:, sl[0], sl[1]].copy())
        out = stitch(decomp, tiles, slices)
        np.testing.assert_array_equal(out, global_volume)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3))
    def test_core_areas_sum_to_image(self, mesh_r, mesh_c):
        decomp = make_decomp(mesh_r, mesh_c)
        assert (
            sum(t.core.area for t in decomp.tiles) == decomp.bounds.area
        )


class TestOverlapStructure:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(2, 6))
    def test_adjacent_tiles_always_overlap_with_halos(
        self, mesh_r, mesh_c, step
    ):
        """With window >= step, neighbouring extended tiles share a
        region — the channel the passes move gradients through."""
        decomp = make_decomp(mesh_r, mesh_c, step=float(step), window=12)
        mesh = decomp.mesh
        for r in range(mesh.rows - 1):
            for c in range(mesh.cols):
                a = mesh.rank_of(r, c)
                b = mesh.rank_of(r + 1, c)
                assert decomp.overlap(a, b) is not None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_probe_windows_covered_by_owner_ext(self, mesh_r, mesh_c):
        decomp = make_decomp(mesh_r, mesh_c)
        for t in decomp.tiles:
            for p in t.probes:
                w = decomp.scan.window_of(p).clip(decomp.bounds)
                assert t.ext.contains(w)


class TestCommFuzz:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # src
                st.integers(0, 3),  # dst
                st.integers(0, 4),  # tag
                st.integers(1, 16),  # payload size
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_fifo_per_edge_under_random_traffic(self, traffic):
        """Random send sequences: receives drain each (src,dst,tag) edge
        in FIFO order and conservation holds."""
        from collections import defaultdict, deque

        from repro.parallel.comm import VirtualComm

        comm = VirtualComm(4)
        expected = defaultdict(deque)
        sent = 0
        for i, (src, dst, tag, size) in enumerate(traffic):
            if src == dst:
                continue
            payload = np.full(size, i, dtype=np.float64)
            comm.send(payload, src, dst, tag)
            expected[(src, dst, tag)].append(i)
            sent += 1
        assert comm.sent_messages == sent
        for (src, dst, tag), order in expected.items():
            for marker in order:
                received = comm.recv(dst, src, tag)
                assert received[0] == marker
        assert comm.pending_messages() == 0
