"""Tile decomposition: structure, probe ownership, halos, constraints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import (
    ScalabilityError,
    decompose_gradient,
    decompose_halo_exchange,
)
from repro.parallel.topology import MeshLayout
from repro.physics.scan import RasterScan, ScanSpec
from repro.utils.geometry import Rect


def make_scan(grid=(6, 6), step=4.0, window=12):
    return RasterScan(ScanSpec(grid=grid, step_px=step), probe_window_px=window)


def fov_for(scan, margin=2):
    r, c = scan.required_fov()
    return (r + margin, c + margin)


class TestGradientDecomposition:
    @pytest.fixture(scope="class")
    def decomp(self):
        scan = make_scan()
        return decompose_gradient(scan, fov_for(scan), mesh=MeshLayout(2, 3))

    def test_partition_exact(self, decomp):
        assert sum(t.core.area for t in decomp.tiles) == decomp.bounds.area

    def test_all_probes_owned_once(self, decomp):
        owned = sorted(p for t in decomp.tiles for p in t.probes)
        assert owned == list(range(decomp.scan.n_positions))

    def test_no_extras(self, decomp):
        assert all(t.extra_probes == () for t in decomp.tiles)

    def test_exact_halo_covers_own_windows(self, decomp):
        for t in decomp.tiles:
            for p in t.probes:
                w = decomp.scan.window_of(p).clip(decomp.bounds)
                assert t.ext.contains(w)

    def test_ext_contains_core(self, decomp):
        assert all(t.ext.contains(t.core) for t in decomp.tiles)

    def test_overlap_symmetric(self, decomp):
        for a in range(decomp.n_ranks):
            for b in range(decomp.n_ranks):
                assert decomp.overlap(a, b) == decomp.overlap(b, a)

    def test_mesh_accessors(self, decomp):
        t = decomp.tile_at(1, 2)
        assert t.rank == decomp.mesh.rank_of(1, 2)
        assert decomp.tile(t.rank) is t

    def test_fixed_halo_width(self):
        scan = make_scan()
        d = decompose_gradient(
            scan, fov_for(scan), mesh=MeshLayout(2, 2), halo=3
        )
        for t in d.tiles:
            # Interior sides extend exactly 3 px (image edges clip).
            if t.core.r0 > d.bounds.r0:
                assert t.core.r0 - t.ext.r0 == 3
            if t.core.r1 < d.bounds.r1:
                assert t.ext.r1 - t.core.r1 == 3

    def test_halo_mode_validation(self):
        scan = make_scan()
        with pytest.raises(ValueError):
            decompose_gradient(
                scan, fov_for(scan), mesh=MeshLayout(2, 2), halo="weird"
            )
        with pytest.raises(ValueError):
            decompose_gradient(
                scan, fov_for(scan), mesh=MeshLayout(2, 2), halo=-1
            )

    def test_mesh_xor_n_ranks(self):
        scan = make_scan()
        with pytest.raises(ValueError):
            decompose_gradient(scan, fov_for(scan))
        with pytest.raises(ValueError):
            decompose_gradient(
                scan, fov_for(scan), mesh=MeshLayout(2, 2), n_ranks=4
            )

    def test_n_ranks_auto_mesh(self):
        scan = make_scan()
        d = decompose_gradient(scan, fov_for(scan), n_ranks=6)
        assert d.n_ranks == 6

    def test_partition_scan_balances_probes(self):
        """Scan-balanced splits give near-equal probe counts."""
        scan = make_scan(grid=(8, 8))
        d = decompose_gradient(
            scan, fov_for(scan, margin=20), mesh=MeshLayout(2, 2),
            partition="scan",
        )
        counts = [len(t.probes) for t in d.tiles]
        assert max(counts) - min(counts) <= 8

    def test_partition_uniform_splits_evenly_in_pixels(self):
        scan = make_scan()
        d = decompose_gradient(
            scan, fov_for(scan), mesh=MeshLayout(2, 2), partition="uniform"
        )
        heights = {t.core.height for t in d.tiles}
        assert max(heights) - min(heights) <= 1

    def test_partition_validation(self):
        scan = make_scan()
        with pytest.raises(ValueError):
            decompose_gradient(
                scan, fov_for(scan), mesh=MeshLayout(2, 2), partition="zigzag"
            )

    def test_single_rank(self):
        scan = make_scan()
        d = decompose_gradient(scan, fov_for(scan), n_ranks=1)
        assert d.tiles[0].core == d.bounds
        assert len(d.tiles[0].probes) == scan.n_positions

    def test_reporting_helpers(self, decomp):
        assert decomp.max_probes_per_rank() >= 1
        assert 0.0 <= decomp.mean_halo_fraction() < 1.0


class TestHaloExchangeDecomposition:
    @pytest.fixture(scope="class")
    def decomp(self):
        scan = make_scan()
        return decompose_halo_exchange(
            scan, fov_for(scan), mesh=MeshLayout(2, 3), extra_rows=1,
            enforce_tile_constraint=False,
        )

    def test_extras_disjoint_from_own(self, decomp):
        for t in decomp.tiles:
            assert not set(t.probes) & set(t.extra_probes)

    def test_extras_are_nearby(self, decomp):
        """Extra probes' centers lie within the reach ring of the core."""
        reach = int(np.ceil(1 * decomp.scan.spec.step_px))
        for t in decomp.tiles:
            ring = t.core.expand(reach)
            for p in t.extra_probes:
                r, c = decomp.scan.centers[p]
                assert ring.contains_point(int(r), int(c))

    def test_interior_tiles_have_extras(self, decomp):
        """With overlapping scans every tile borders foreign probes."""
        assert all(len(t.extra_probes) > 0 for t in decomp.tiles)

    def test_halo_covers_extras_windows(self, decomp):
        for t in decomp.tiles:
            for p in t.all_probes:
                w = decomp.scan.window_of(p).clip(decomp.bounds)
                assert t.ext.contains(w)

    def test_more_extra_rows_more_probes(self):
        scan = make_scan()
        d1 = decompose_halo_exchange(
            scan, fov_for(scan), mesh=MeshLayout(2, 2), extra_rows=1,
            enforce_tile_constraint=False,
        )
        d2 = decompose_halo_exchange(
            scan, fov_for(scan), mesh=MeshLayout(2, 2), extra_rows=2,
            enforce_tile_constraint=False,
        )
        for t1, t2 in zip(d1.tiles, d2.tiles):
            assert len(t2.extra_probes) >= len(t1.extra_probes)

    def test_memory_redundancy_vs_gradient(self, decomp):
        """HVE assigns strictly more probes per rank than GD — the paper's
        memory argument (Sec. II-C)."""
        scan = decomp.scan
        gd = decompose_gradient(
            scan, (decomp.bounds.r1, decomp.bounds.c1), mesh=decomp.mesh
        )
        hve_total = sum(len(t.all_probes) for t in decomp.tiles)
        gd_total = sum(len(t.all_probes) for t in gd.tiles)
        assert hve_total > gd_total
        assert gd_total == scan.n_positions

    def test_tile_constraint_raises_for_tiny_tiles(self):
        """Small tiles + wide halos = the paper's NA regime."""
        scan = make_scan(grid=(8, 8), step=3.0, window=16)
        with pytest.raises(ScalabilityError):
            decompose_halo_exchange(
                scan,
                fov_for(scan),
                mesh=MeshLayout(6, 6),
                extra_rows=2,
                halo=20,
            )

    def test_extra_rows_validation(self):
        scan = make_scan()
        with pytest.raises(ValueError):
            decompose_halo_exchange(
                scan, fov_for(scan), mesh=MeshLayout(2, 2), extra_rows=-1
            )

    def test_zero_extra_rows_equals_gradient_probes(self):
        scan = make_scan()
        d = decompose_halo_exchange(
            scan, fov_for(scan), mesh=MeshLayout(2, 2), extra_rows=0,
            enforce_tile_constraint=False,
        )
        g = decompose_gradient(scan, fov_for(scan), mesh=MeshLayout(2, 2))
        for th, tg in zip(d.tiles, g.tiles):
            assert th.probes == tg.probes
            assert th.extra_probes == ()


class TestOrderingInvariant:
    """The ordered-interval property the pass proof needs (DESIGN.md 3)."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(2, 7),
        st.integers(1, 6),
        st.integers(6, 14),
    )
    def test_random_geometries_validate(
        self, mesh_r, mesh_c, grid, step, window
    ):
        scan = make_scan(grid=(grid, grid), step=float(step), window=window)
        fov = fov_for(scan, margin=3)
        decomp = decompose_gradient(
            scan, fov, mesh=MeshLayout(mesh_r, mesh_c)
        )
        # validate() ran inside the builder; re-run explicitly.
        decomp.validate()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 8))
    def test_fixed_halo_geometries_validate(self, mesh_r, mesh_c, halo):
        scan = make_scan(grid=(5, 5), step=3.0, window=10)
        decomp = decompose_gradient(
            scan, fov_for(scan, 3), mesh=MeshLayout(mesh_r, mesh_c), halo=halo
        )
        decomp.validate()


class TestFullScaleGeometry:
    """The paper's full-size decompositions stay cheap and balanced."""

    def test_large_4158_ranks(self):
        from repro.physics.dataset import large_pbtio3_spec

        spec = large_pbtio3_spec()
        scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
        d = decompose_gradient(
            scan, spec.object_shape, mesh=MeshLayout(63, 66), halo=60
        )
        counts = [len(t.probes) for t in d.tiles]
        assert sum(counts) == 16632
        assert min(counts) == max(counts) == 4  # perfectly balanced


class TestMeanHaloFraction:
    """Degenerate-geometry guards: no ZeroDivisionError, ever."""

    def test_regular_geometry_in_unit_interval(self):
        scan = make_scan()
        decomp = decompose_gradient(scan, fov_for(scan), mesh=MeshLayout(2, 2))
        assert 0.0 <= decomp.mean_halo_fraction() < 1.0

    def test_zero_area_extended_tile_contributes_zero(self):
        """A degenerate zero-area extended tile used to divide by zero;
        it has no halo, so its fraction is 0."""
        from repro.core.decomposition import Decomposition, RankTile

        scan = make_scan(grid=(2, 2))
        bounds = Rect(0, 20, 0, 20)
        empty = Rect(0, 0, 0, 0)
        tiles = [
            RankTile(rank=0, core=empty, ext=empty, probes=()),
            RankTile(
                rank=1, core=Rect(0, 20, 0, 20),
                ext=Rect(0, 20, 0, 20),
                probes=tuple(range(scan.n_positions)),
            ),
        ]
        decomp = Decomposition(
            mesh=MeshLayout(1, 2), bounds=bounds, tiles=tiles, scan=scan
        )
        assert decomp.mean_halo_fraction() == 0.0

    def test_empty_tile_list_is_zero(self):
        from repro.core.decomposition import Decomposition

        scan = make_scan(grid=(2, 2))
        decomp = Decomposition(
            mesh=MeshLayout(1, 1),
            bounds=Rect(0, 4, 0, 4),
            tiles=[],
            scan=scan,
        )
        assert decomp.mean_halo_fraction() == 0.0

    def test_single_coverage_tile_has_zero_fraction(self):
        """halo == ext - core == 0 when one tile covers everything."""
        scan = make_scan(grid=(2, 2), step=3.0, window=8)
        decomp = decompose_gradient(scan, fov_for(scan), n_ranks=1)
        assert decomp.mean_halo_fraction() == 0.0
