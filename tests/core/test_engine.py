"""Numeric engine: op handlers, message discipline, memory accounting."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_gradient
from repro.core.engine import NumericEngine
from repro.core.passes import build_appp_passes
from repro.parallel.topology import MeshLayout
from repro.schedule.ops import (
    ApplyBufferUpdate,
    BufferExchange,
    ComputeGradients,
    ResetBuffer,
    Schedule,
    VoxelPaste,
)


@pytest.fixture()
def engine(tiny_dataset, tiny_lr):
    decomp = decompose_gradient(
        tiny_dataset.scan, tiny_dataset.object_shape, mesh=MeshLayout(2, 2)
    )
    return NumericEngine(tiny_dataset, decomp, lr=tiny_lr)


class TestSetup:
    def test_rank_states_shapes(self, engine):
        for state, tile in zip(engine.states, engine.decomp.tiles):
            expected = (
                engine.n_slices,
                tile.ext.height,
                tile.ext.width,
            )
            assert state.volume.shape == expected
            assert state.accbuf.shape == expected

    def test_initial_volume_is_vacuum(self, engine):
        for state in engine.states:
            np.testing.assert_array_equal(
                state.volume, np.ones_like(state.volume)
            )

    def test_measurements_distributed(self, engine, tiny_dataset):
        held = sorted(
            i for s in engine.states for i in s.measurements.keys()
        )
        assert held == list(range(tiny_dataset.n_probes))

    def test_memory_registered(self, engine):
        for rank in range(engine.decomp.n_ranks):
            breakdown = engine.memory.breakdown(rank)
            assert {"volume", "accbuf", "measurements", "probe"} <= set(
                breakdown
            )
            assert breakdown["volume"] > 0


class TestComputeOp:
    def test_accumulates_gradient_and_cost(self, engine):
        state = engine.states[0]
        probes = engine.decomp.tiles[0].probes
        sched = Schedule(engine.decomp.n_ranks)
        sched.add(
            ComputeGradients(rank=0, probe_indices=probes, local_update=False)
        )
        engine.execute(sched)
        assert np.abs(state.accbuf).max() > 0
        assert engine.iteration_cost() > 0
        # Volume untouched without local updates.
        np.testing.assert_array_equal(
            state.volume, np.ones_like(state.volume)
        )

    def test_local_update_moves_volume(self, engine):
        probes = engine.decomp.tiles[0].probes
        sched = Schedule(engine.decomp.n_ranks)
        sched.add(
            ComputeGradients(rank=0, probe_indices=probes, local_update=True)
        )
        engine.execute(sched)
        state = engine.states[0]
        assert not np.allclose(state.volume, 1.0)

    def test_iteration_cost_resets(self, engine):
        probes = engine.decomp.tiles[0].probes
        sched = Schedule(engine.decomp.n_ranks)
        sched.add(
            ComputeGradients(rank=0, probe_indices=probes, local_update=False)
        )
        engine.execute(sched)
        assert engine.iteration_cost() > 0
        assert engine.iteration_cost() == 0.0


class TestExchangeOps:
    def test_exchange_moves_bytes_through_comm(self, engine):
        decomp = engine.decomp
        region = decomp.overlap(0, 1)
        assert region is not None
        sched = Schedule(decomp.n_ranks)
        sched.add(BufferExchange(src=0, dst=1, region=region, mode="add"))
        engine.states[0].accbuf[...] = 1.0
        engine.execute(sched)
        assert engine.comm.sent_messages == 1
        assert engine.comm.sent_bytes > 0
        assert engine.comm.pending_messages() == 0

    def test_add_and_replace_semantics(self, engine):
        decomp = engine.decomp
        region = decomp.overlap(0, 1)
        src_sl = region.slices_in(decomp.tiles[0].ext)
        dst_sl = region.slices_in(decomp.tiles[1].ext)
        engine.states[0].accbuf[:, src_sl[0], src_sl[1]] = 2.0
        engine.states[1].accbuf[:, dst_sl[0], dst_sl[1]] = 3.0

        sched = Schedule(decomp.n_ranks)
        sched.add(BufferExchange(src=0, dst=1, region=region, mode="add"))
        engine.execute(sched)
        np.testing.assert_allclose(
            engine.states[1].accbuf[:, dst_sl[0], dst_sl[1]], 5.0
        )

        sched2 = Schedule(decomp.n_ranks)
        sched2.add(
            BufferExchange(src=0, dst=1, region=region, mode="replace")
        )
        engine.execute(sched2)
        np.testing.assert_allclose(
            engine.states[1].accbuf[:, dst_sl[0], dst_sl[1]], 2.0
        )

    def test_voxel_paste_copies_volume(self, engine):
        decomp = engine.decomp
        src_tile, dst_tile = decomp.tiles[0], decomp.tiles[1]
        region = src_tile.core.intersect(dst_tile.ext)
        assert region is not None
        src_sl = region.slices_in(src_tile.ext)
        engine.states[0].volume[:, src_sl[0], src_sl[1]] = 7.0
        sched = Schedule(decomp.n_ranks)
        sched.add(VoxelPaste(src=0, dst=1, region=region))
        engine.execute(sched)
        dst_sl = region.slices_in(dst_tile.ext)
        np.testing.assert_allclose(
            engine.states[1].volume[:, dst_sl[0], dst_sl[1]], 7.0
        )


class TestUpdateOps:
    def test_apply_buffer_update(self, engine):
        engine.states[0].accbuf[...] = 1.0 + 0j
        sched = Schedule(engine.decomp.n_ranks)
        sched.add(ApplyBufferUpdate(rank=0, lr=0.5))
        engine.execute(sched)
        np.testing.assert_allclose(engine.states[0].volume, 0.5 + 0j)

    def test_reset_buffer(self, engine):
        engine.states[0].accbuf[...] = 9.0
        sched = Schedule(engine.decomp.n_ranks)
        sched.add(ResetBuffer(rank=0))
        engine.execute(sched)
        np.testing.assert_allclose(engine.states[0].accbuf, 0.0)


class TestGradientTruncation:
    def test_fixed_halo_reads_vacuum_outside(self, tiny_dataset, tiny_lr):
        """With a tight halo, windows poke outside the extended tile; the
        engine pads with vacuum and truncates gradients, without error."""
        decomp = decompose_gradient(
            tiny_dataset.scan,
            tiny_dataset.object_shape,
            mesh=MeshLayout(2, 2),
            halo=2,
        )
        engine = NumericEngine(tiny_dataset, decomp, lr=tiny_lr)
        sched = Schedule(decomp.n_ranks)
        for rank, tile in enumerate(decomp.tiles):
            if tile.probes:
                sched.add(
                    ComputeGradients(
                        rank=rank,
                        probe_indices=tile.probes,
                        local_update=True,
                    )
                )
        engine.execute(sched)
        for state in engine.states:
            assert np.isfinite(state.volume).all()

    def test_truncated_memory_smaller(self, tiny_dataset, tiny_lr):
        exact = NumericEngine(
            tiny_dataset,
            decompose_gradient(
                tiny_dataset.scan,
                tiny_dataset.object_shape,
                mesh=MeshLayout(2, 2),
                halo="exact",
            ),
            lr=tiny_lr,
        )
        tight = NumericEngine(
            tiny_dataset,
            decompose_gradient(
                tiny_dataset.scan,
                tiny_dataset.object_shape,
                mesh=MeshLayout(2, 2),
                halo=2,
            ),
            lr=tiny_lr,
        )
        assert (
            tight.memory.peak_bytes_mean() < exact.memory.peak_bytes_mean()
        )


class TestCompensateLocal:
    def test_localbuf_allocated_and_used(self, tiny_dataset, tiny_lr):
        decomp = decompose_gradient(
            tiny_dataset.scan, tiny_dataset.object_shape, mesh=MeshLayout(1, 2)
        )
        engine = NumericEngine(
            tiny_dataset, decomp, lr=tiny_lr, compensate_local=True
        )
        assert all(s.localbuf is not None for s in engine.states)
        probes = decomp.tiles[0].probes
        sched = Schedule(decomp.n_ranks)
        sched.add(
            ComputeGradients(rank=0, probe_indices=probes, local_update=True)
        )
        sched.add(ApplyBufferUpdate(rank=0, lr=tiny_lr))
        engine.execute(sched)
        # With no passes, accbuf == localbuf, so the buffer update is a
        # no-op beyond the already-applied local updates.
        state = engine.states[0]
        np.testing.assert_allclose(state.accbuf, state.localbuf)
