"""Fig. 5 (APPP pipeline) and Fig. 6 (example image) regenerations."""

import numpy as np
import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.parallel.topology import MeshLayout


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5()

    def test_cross_direction_pipelining(self, result):
        """The defining property of the paper's Fig. 5: horizontal-pass
        activity starts before the vertical passes have globally
        finished."""
        assert result.cross_direction_pipelining()

    def test_gantt_renders_every_rank(self, result):
        text = result.format()
        for rank in range(1, 10):
            assert f"GPU {rank}:" in text

    def test_compute_precedes_passes(self, result):
        """Per rank, compute activity ends before its first pass op."""
        for rank in range(result.mesh.n_ranks):
            compute_end = max(
                (e.end_s for e in result.trace
                 if e.rank == rank and e.kind == "compute"),
                default=0.0,
            )
            first_pass = min(
                (e.start_s for e in result.trace
                 if e.rank == rank and e.kind in ("send", "recv")),
                default=float("inf"),
            )
            assert compute_end <= first_pass + 1e-9

    def test_every_exchange_classified(self, result):
        kinds = {result.direction_of.get(e.uid) for e in result.trace
                 if e.kind in ("send", "recv")}
        assert kinds <= {"vertical", "horizontal"}
        assert "vertical" in kinds and "horizontal" in kinds

    def test_custom_mesh(self):
        result = run_fig5(mesh=MeshLayout(2, 2))
        assert result.mesh.n_ranks == 4
        assert result.makespan_s > 0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(shape=(128, 128))

    def test_atomic_columns_found(self, result):
        assert len(result.atom_columns) >= 4

    def test_lattice_spacing_matches_pbtio3(self, result):
        """Columns sit ~390 pm apart — the perovskite a-axis."""
        assert result.lattice_matches()
        assert result.lattice_spacing_px == pytest.approx(39.0, rel=0.15)

    def test_ascii_render_has_bright_spots(self, result):
        art = result.ascii_render()
        assert "@" in art or "%" in art or "#" in art

    def test_format_mentions_spacing(self, result):
        assert "lattice spacing" in result.format()

    def test_phase_image_finite(self, result):
        assert np.isfinite(result.phase_image).all()
