"""Experiment harness: every paper artifact regenerates with the paper's
qualitative shape.  (Full-size scaled-down variants keep this fast.)"""

import numpy as np
import pytest

from repro.experiments import (
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
)
from repro.parallel.topology import MeshLayout


class TestTable1:
    def test_matches_paper_exactly(self):
        result = run_table1()
        assert result.matches_paper()

    def test_format_contains_both_datasets(self):
        text = run_table1().format()
        assert "pbtio3-small" in text
        assert "pbtio3-large" in text
        assert "16632" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_gd_rows_complete(self, result):
        assert [r.gpus for r in result.gd_rows] == [6, 24, 54, 126, 198, 462]
        assert all(r.feasible for r in result.gd_rows)

    def test_hve_na_row(self, result):
        by_gpus = {r.gpus: r for r in result.hve_rows}
        assert not by_gpus[126].feasible

    def test_format_shows_paper_columns(self, result):
        text = result.format()
        assert "Table II(a)" in text
        assert "Table II(b)" in text
        assert "NA" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3()

    def test_headline_factors(self, result):
        assert result.scalability_factor() == pytest.approx(9.0, rel=0.01)
        assert result.memory_reduction_factor() > 25
        assert result.speed_factor() > 10

    def test_format(self, result):
        assert "Table III(a)" in result.format()


class TestFig7a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7a()

    def test_two_series(self, result):
        assert {s.label for s in result.series} == {
            "small Lead Titanate",
            "large Lead Titanate",
        }

    def test_superlinear_region_large(self, result):
        pts = result.superlinear_points("large Lead Titanate")
        assert 54 in pts and 462 in pts

    def test_ideal_line_anchored(self, result):
        s = result.series[0]
        assert s.ideal_runtime_min()[0] == pytest.approx(s.runtime_min[0])

    def test_format(self, result):
        assert "Fig. 7a" in result.format()


class TestFig7b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7b(gpu_counts=(24, 198, 462))

    def test_both_planners_present(self, result):
        planners = {r.planner for r in result.rows}
        assert planners == {"appp", "w/o appp"}

    def test_comm_ratio_at_462(self, result):
        """Paper: 16x less communication with APPP (ours is larger)."""
        assert result.comm_ratio(462) > 10.0

    def test_wait_decreases(self, result):
        waits = result.wait_series("appp")
        assert waits[462] < waits[24]

    def test_without_appp_comm_dominates_at_462(self, result):
        row = next(
            r
            for r in result.rows
            if r.gpus == 462 and r.planner == "w/o appp"
        )
        assert row.comm_min > row.compute_min

    def test_format(self, result):
        assert "Fig. 7b" in result.format()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # Smaller than the default experiment to keep CI fast.
        return run_fig8(mesh=MeshLayout(3, 3), iterations=8, inner_sweeps=8)

    def test_hve_has_seams(self, result):
        assert result.hve_has_seams

    def test_gd_seam_free(self, result):
        assert result.gd_seam_free

    def test_volumes_returned(self, result):
        assert result.volume_gd.shape == result.volume_hve.shape
        assert np.isfinite(result.volume_gd).all()

    def test_format(self, result):
        text = result.format()
        assert "Halo Voxel Exchange" in text
        assert "Gradient Decomposition" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(mesh=MeshLayout(3, 3), iterations=6)

    def test_three_frequencies(self, result):
        assert set(result.histories) == {
            "every probe location",
            "twice per iteration",
            "once per iteration",
        }

    def test_all_converge(self, result):
        for history in result.histories.values():
            assert history[-1] < history[0]

    def test_reduced_frequency_wins(self, result):
        assert result.reduced_frequency_wins()

    def test_communication_savings(self, result):
        assert result.communication_savings() > 2.0

    def test_format(self, result):
        assert "Fig. 9" in result.format()
