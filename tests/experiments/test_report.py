"""Report formatting helpers."""

import pytest

from repro.experiments.report import fmt, format_table


class TestFmt:
    def test_floats_rounded(self):
        assert fmt(3.14159) == "3.14"
        assert fmt(3.14159, digits=4) == "3.1416"

    def test_large_numbers_grouped(self):
        assert fmt(5543.0) == "5,543"

    def test_nan_dashed(self):
        assert fmt(float("nan")) == "-"

    def test_strings_pass_through(self):
        assert fmt("NA") == "NA"

    def test_ints_pass_through(self):
        assert fmt(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="t"
        )
        lines = text.split("\n")
        assert lines[0] == "t"
        # All data lines share the header width.
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = format_table(
            ["gpus", "mem", "status"],
            [[6, 2.53, "ok"], [126, "NA", "NA"]],
        )
        assert "2.53" in text
        assert "NA" in text
