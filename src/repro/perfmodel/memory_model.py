"""Analytic per-rank memory model.

Accounts the allocations a rank holds, mirroring what the numeric engine
actually allocates (the test suite cross-validates the two):

=================  =====================================================
component          bytes
=================  =====================================================
measurements       ``n_probes(rank) * det^2 * meas_itemsize``
volume (ext tile)  ``ext.area * n_slices * volume_itemsize``
gradient buffer    same as volume (Gradient Decomposition only)
probe              ``M * det^2 * volume_itemsize`` (``M`` = probe modes;
                   1 for scalar runs)
workspace          ``M * machine.workspace_bytes(det)`` (FFT scratch at
                   the machine's ``workspace_dtype`` width; every mode
                   sweeps through it)
fixed overhead     framework/context constant
=================  =====================================================

Every bytes-per-element factor is parameterized: measurement width from
the spec's ``measurement_dtype``, volume width from the spec's
``volume_dtype`` (or an explicit precision policy / itemsize override),
workspace width from the machine's ``workspace_dtype``.  Full-size
defaults (float16 measurements, complex64 volume) follow the paper's
implementation constraints: the large dataset at 6 GPUs must fit
measurements + tile + buffer in ~9 GB (Table III), which float32
measurements would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

import numpy as np

from repro.backend.base import PrecisionPolicy
from repro.core.decomposition import Decomposition
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.physics.dataset import DatasetSpec

__all__ = ["MemoryBreakdown", "MemoryModel"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-rank byte breakdown."""

    measurements: float
    volume: float
    gradient_buffer: float
    probe: float
    workspace: float
    fixed: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return (
            self.measurements
            + self.volume
            + self.gradient_buffer
            + self.probe
            + self.workspace
            + self.fixed
        )

    def as_dict(self) -> Dict[str, float]:
        """Component dictionary (reports/tests)."""
        return {
            "measurements": self.measurements,
            "volume": self.volume,
            "gradient_buffer": self.gradient_buffer,
            "probe": self.probe,
            "workspace": self.workspace,
            "fixed": self.fixed,
        }


class MemoryModel:
    """Evaluates :class:`MemoryBreakdown` over a decomposition.

    Parameters
    ----------
    spec:
        Dataset description (detector size, slices, measurement dtype).
    machine:
        Supplies workspace/fixed-overhead constants.
    measurement_itemsize / volume_itemsize:
        Override storage precision per element; by default both derive
        from the spec (``measurement_dtype`` / ``volume_dtype``).  Tests
        comparing against the numeric engine pass engine-matching
        itemsizes (the engine's compute precision defaults to
        complex128).
    precision:
        A :class:`repro.backend.PrecisionPolicy` (or its name) deriving
        ``volume_itemsize`` instead of the spec's storage dtype —
        convenient for "what does this run cost at complex64?"
        questions.  Mutually exclusive with ``volume_itemsize``.
    include_fixed:
        Disable to model *algorithmic* memory only (used when comparing
        against the numeric engine, which has no framework overhead).
    probe_modes:
        Number of incoherent probe modes (``None``/1 = scalar probe).
        A mixed-state rank holds an ``(M, w, w)`` probe and gradient
        and sweeps every mode through the FFT scratch, so the probe
        and workspace terms scale by ``M``.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        machine: MachineSpec = SUMMIT,
        measurement_itemsize: int | None = None,
        volume_itemsize: int | None = None,
        include_fixed: bool = True,
        needs_gradient_buffer: bool = True,
        precision: Union[str, PrecisionPolicy, None] = None,
        probe_modes: int | None = None,
    ) -> None:
        self.spec = spec
        self.machine = machine
        self.meas_itemsize = (
            measurement_itemsize
            if measurement_itemsize is not None
            else np.dtype(spec.measurement_dtype).itemsize
        )
        if volume_itemsize is not None and precision is not None:
            raise ValueError(
                "pass volume_itemsize or precision, not both"
            )
        if volume_itemsize is not None:
            self.volume_itemsize = volume_itemsize
        elif precision is not None:
            self.volume_itemsize = PrecisionPolicy.from_name(
                precision
            ).complex_itemsize
        else:
            self.volume_itemsize = np.dtype(spec.volume_dtype).itemsize
        self.include_fixed = include_fixed
        self.needs_gradient_buffer = needs_gradient_buffer
        self.probe_modes = 1 if probe_modes is None else int(probe_modes)
        if self.probe_modes < 1:
            raise ValueError("probe_modes must be positive")

    # ------------------------------------------------------------------
    def rank_breakdown(self, decomp: Decomposition, rank: int) -> MemoryBreakdown:
        """Bytes held by one rank under ``decomp``."""
        tile = decomp.tile(rank)
        det2 = self.spec.detector_px**2
        slices = self.spec.n_slices
        volume = tile.ext.area * slices * self.volume_itemsize
        return MemoryBreakdown(
            measurements=len(tile.all_probes) * det2 * self.meas_itemsize,
            volume=volume,
            gradient_buffer=volume if self.needs_gradient_buffer else 0.0,
            probe=self.probe_modes * det2 * self.volume_itemsize,
            workspace=self.probe_modes
            * self.machine.workspace_bytes(self.spec.detector_px),
            fixed=self.machine.fixed_overhead_bytes if self.include_fixed else 0.0,
        )

    def per_rank_totals(self, decomp: Decomposition) -> List[float]:
        """Total bytes for every rank."""
        return [
            self.rank_breakdown(decomp, r).total for r in range(decomp.n_ranks)
        ]

    def mean_bytes(self, decomp: Decomposition) -> float:
        """Average per-rank bytes — the paper's Tables II/III metric."""
        return float(np.mean(self.per_rank_totals(decomp)))

    def max_bytes(self, decomp: Decomposition) -> float:
        """Worst rank (must fit the GPU)."""
        return float(np.max(self.per_rank_totals(decomp)))

    def working_set_bytes(self, decomp: Decomposition, rank: int) -> float:
        """Bytes the compute kernels actively touch (drives the
        memory-pressure factor): everything except the fixed overhead."""
        b = self.rank_breakdown(decomp, rank)
        return b.total - b.fixed
