"""Machine description and calibration constants.

The defaults model the paper's platform (Summit: 6x V100 per node, NVLink
intra-node, EDR InfiniBand inter-node) *as driven by the paper's software
stack* — an eager-mode Python/PyTorch multislice code with MPI.  Effective
throughputs of such stacks sit far below hardware peaks, so two calibrated
constants anchor the model to the paper's measurements:

* ``effective_flops`` — sustained flop rate of one multislice
  cost+gradient evaluation (calibrated to Table III's 6-GPU runtime:
  ~0.23 s per 1024^2 x 100-slice probe evaluation).
* link bandwidths — NVLink/InfiniBand line rates (contiguous staged
  buffers; the paper's pipelines stage regions before sending).

The **memory-pressure factor** reproduces the paper's super-linear strong
scaling (Sec. VI-C: L1 hit rate and memory throughput improve as per-GPU
working sets shrink; allocator pressure near the 16 GB limit compounds
it).  It multiplies compute time by ``1 + B * sigmoid((occupancy - theta)
/ width)`` where occupancy = working set / GPU memory; the constants are
fitted to the per-probe times implied by Tables II(a)/III(a) at 6 GPUs
vs. 4158 GPUs.

Per-rank **speed jitter** (+-20%, deterministic per rank) models the
real-world rank-speed heterogeneity responsible for the GPU waiting times
of Fig. 7b; waiting then shrinks proportionally with per-rank work, which
is the figure's observed trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.parallel.network import LinkSpec

__all__ = ["MachineSpec", "SUMMIT"]


@dataclass(frozen=True)
class MachineSpec:
    """Calibrated machine + software-stack model."""

    name: str = "summit-v100"
    gpus_per_node: int = 6
    gpu_memory_bytes: float = 16e9
    #: Sustained flop rate of the multislice kernels (calibrated).
    effective_flops: float = 2.2e11
    #: Fixed per-probe software overhead (kernel launches, bookkeeping).
    probe_overhead_s: float = 2e-3
    #: Device memory bandwidth for pointwise buffer ops.
    memory_bandwidth: float = 600e9
    #: MPI point-to-point bandwidth, intra-node (NVLink, 50 GB/s one-way).
    intra_node_bw: float = 50e9
    intra_node_latency_s: float = 2e-6
    #: Same, inter-node (EDR InfiniBand, 12.5 GB/s).
    inter_node_bw: float = 12.5e9
    inter_node_latency_s: float = 5e-6
    #: Effective collective (all-reduce) bandwidth per ring step; large
    #: multi-GB all-reduces in the paper's stack sustain well below line
    #: rate (calibrated so the non-APPP mode is communication-dominated
    #: at 462 GPUs, as Fig. 7b reports).
    collective_bw: float = 1.0e9
    collective_latency_s: float = 5e-6
    #: Memory-pressure factor parameters (see module docstring).
    pressure_amplitude: float = 4.4
    pressure_threshold: float = 0.35
    pressure_width: float = 0.08
    #: Deterministic per-rank speed spread (fraction, +-).
    speed_jitter: float = 0.18
    #: Fixed framework overhead resident on every GPU (context, plans).
    fixed_overhead_bytes: float = 60e6
    #: FFT workspace: this many detector-sized complex buffers, at
    #: ``workspace_dtype`` width.
    workspace_buffers: int = 4
    #: Element type of the FFT scratch buffers.  The paper's stack
    #: transforms at double precision even though the volume is *stored*
    #: complex64, hence the complex128 default; a complex64 compute
    #: policy (see :class:`repro.backend.PrecisionPolicy`) halves this.
    workspace_dtype: str = "complex128"

    def __post_init__(self) -> None:
        if self.effective_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("throughputs must be positive")
        if self.gpu_memory_bytes <= 0:
            raise ValueError("gpu_memory_bytes must be positive")
        if not (0.0 <= self.speed_jitter < 1.0):
            raise ValueError("speed_jitter must be in [0, 1)")
        if np.dtype(self.workspace_dtype).kind != "c":
            raise ValueError(
                f"workspace_dtype must be complex, got {self.workspace_dtype!r}"
            )

    # ------------------------------------------------------------------
    def intra_link(self) -> LinkSpec:
        """Intra-node link (effective NVLink)."""
        return LinkSpec(self.intra_node_latency_s, self.intra_node_bw)

    def inter_link(self) -> LinkSpec:
        """Inter-node link (effective InfiniBand)."""
        return LinkSpec(self.inter_node_latency_s, self.inter_node_bw)

    def collective_link(self) -> LinkSpec:
        """Effective all-reduce link (see ``collective_bw``)."""
        return LinkSpec(self.collective_latency_s, self.collective_bw)

    def workspace_bytes(self, detector_px: int) -> float:
        """FFT scratch bytes for one rank (``workspace_buffers``
        detector-sized buffers at ``workspace_dtype`` width)."""
        itemsize = np.dtype(self.workspace_dtype).itemsize
        return float(self.workspace_buffers * detector_px**2 * itemsize)

    def pressure_factor(self, working_set_bytes: float) -> float:
        """Compute-time multiplier from memory/cache pressure."""
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        occ = working_set_bytes / self.gpu_memory_bytes
        z = (occ - self.pressure_threshold) / self.pressure_width
        return 1.0 + self.pressure_amplitude / (1.0 + math.exp(-z))

    def speed_factor(self, rank: int) -> float:
        """Deterministic per-rank relative speed in
        ``[1 - jitter, 1 + jitter]`` (splitmix-style hash)."""
        x = (rank + 1) * 0x9E3779B97F4A7C15
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        u = ((x ^ (x >> 31)) & 0xFFFFFFFF) / 0xFFFFFFFF
        return 1.0 + self.speed_jitter * (2.0 * u - 1.0)


#: The paper's platform with calibrated software-stack constants.
SUMMIT = MachineSpec()
