"""Full-scale table/figure predictor.

Combines the exact full-size decomposition geometry, the analytic memory
model, and the event-simulated timing of the *actual* iteration schedules
to regenerate the paper's Tables II/III and Fig. 7 series.

Halo Voxel Exchange scalability handling (see EXPERIMENTS.md for the
fidelity discussion):

The probe-location reach a tile must duplicate is
``halo_needed = extra_rows * step + probe_radius`` (the paper's 890 pm
setting covers exactly this).  As tiles shrink toward that reach:

* **relay regime** (``min tile dim < halo_needed``) — a tile's core can no
  longer fill its neighbours' halos in one paste; boundary voxels must be
  relayed through multiple hops, multiplying paste traffic and requiring
  boundary re-solves.  This is the communication-and-redundancy driven
  runtime degradation the paper reports at 462 GPUs on the large dataset
  (Sec. VI-B) and between 24 and 54 GPUs on the small one.
* **hard NA** (``min tile dim < NA_FRACTION * halo_needed``) — relaying
  cannot restore consistency at all: the paper's "NA" rows (beyond 54
  GPUs on the small dataset).  ``NA_FRACTION = 0.56`` is calibrated to the
  paper's observed NA boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.core.decomposition import (
    Decomposition,
    ScalabilityError,
    decompose_gradient,
    decompose_halo_exchange,
)
from repro.core.reconstructor import GradientDecompositionReconstructor
from repro.parallel.event_sim import EventSimulator, SimReport
from repro.parallel.network import NetworkModel
from repro.parallel.topology import ClusterTopology, MeshLayout, choose_mesh
from repro.perfmodel.cost_model import SummitCostModel
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.memory_model import MemoryModel
from repro.physics.dataset import DatasetSpec
from repro.physics.probe import ProbeSpec
from repro.physics.scan import RasterScan

__all__ = ["NA", "ScalingRow", "PerformancePredictor"]

#: Sentinel for infeasible configurations (paper's "NA" table entries).
NA = "NA"

#: Minimum core-tile dimension, as a fraction of the probe-location reach
#: (``extra_rows * step + probe_radius``), below which Halo Voxel Exchange
#: cannot tile at all.  Calibrated to the paper's NA boundary (small
#: dataset feasible at 54 GPUs, NA at 126).
NA_FRACTION = 0.56


@dataclass
class ScalingRow:
    """One column of the paper's Tables II/III."""

    nodes: int
    gpus: int
    memory_gb: Union[float, str]
    runtime_min: Union[float, str]
    efficiency_pct: Union[float, str]
    compute_min: Union[float, str] = NA
    wait_min: Union[float, str] = NA
    comm_min: Union[float, str] = NA

    @property
    def feasible(self) -> bool:
        """False for the NA rows."""
        return self.runtime_min != NA


class PerformancePredictor:
    """Predicts memory/runtime/efficiency at the paper's full scale.

    Parameters
    ----------
    spec:
        Full-size dataset description (Table I column).
    machine:
        Calibrated machine model.
    iterations:
        The fixed iteration count of the paper's runtime tables (100).
    gd_halo_px / hve_halo_px:
        The paper's halo widths: 600 pm and 890 pm at 10 pm pixels.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        machine: MachineSpec = SUMMIT,
        iterations: int = 100,
        gd_halo_px: int = 60,
        hve_halo_px: int = 89,
    ) -> None:
        self.spec = spec
        self.machine = machine
        self.iterations = iterations
        self.gd_halo_px = gd_halo_px
        self.hve_halo_px = hve_halo_px
        self.scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
        probe_spec = spec.probe_spec
        self.probe_diameter_px = 2.0 * probe_spec.nominal_radius_px

    # ------------------------------------------------------------------
    def mesh_for(self, n_gpus: int) -> MeshLayout:
        """Mesh matching the image aspect for ``n_gpus``."""
        rows, cols = choose_mesh(
            n_gpus, aspect=self.spec.object_shape[0] / self.spec.object_shape[1]
        )
        return MeshLayout(rows, cols)

    def _simulator(self, n_gpus: int, costs: SummitCostModel) -> EventSimulator:
        topo = ClusterTopology(n_gpus, self.machine.gpus_per_node)
        network = NetworkModel(
            topo,
            intra_node=self.machine.intra_link(),
            inter_node=self.machine.inter_link(),
            collective=self.machine.collective_link(),
        )
        return EventSimulator(network, costs)

    # ------------------------------------------------------------------
    # Gradient Decomposition
    # ------------------------------------------------------------------
    def gd_decomposition(self, n_gpus: int) -> Decomposition:
        """Full-size Gradient Decomposition geometry for ``n_gpus``."""
        return decompose_gradient(
            self.scan,
            self.spec.object_shape,
            mesh=self.mesh_for(n_gpus),
            halo=self.gd_halo_px,
            partition="scan",
        )

    def gd_report(
        self, n_gpus: int, planner: str = "appp", sync_period: Union[str, int] = "iteration"
    ) -> SimReport:
        """Event-simulated timing of one GD iteration at ``n_gpus``."""
        decomp = self.gd_decomposition(n_gpus)
        recon = GradientDecompositionReconstructor(
            mesh=decomp.mesh,
            iterations=1,
            planner=planner,
            sync_period=sync_period,
            halo=self.gd_halo_px,
        )
        schedule = recon.build_iteration_schedule(decomp)
        costs = SummitCostModel(self.spec, decomp, self.machine)
        return self._simulator(n_gpus, costs).run(schedule)

    def gd_row(self, n_gpus: int, planner: str = "appp") -> ScalingRow:
        """One Table II(a)/III(a) column."""
        decomp = self.gd_decomposition(n_gpus)
        memory = MemoryModel(self.spec, self.machine).mean_bytes(decomp)
        report = self.gd_report(n_gpus, planner=planner)
        scale = self.iterations / 60.0
        return ScalingRow(
            nodes=ClusterTopology(n_gpus, self.machine.gpus_per_node).n_nodes,
            gpus=n_gpus,
            memory_gb=memory / 1e9,
            runtime_min=report.makespan_s * scale,
            efficiency_pct=NA,  # filled in by sweep()
            compute_min=report.mean("compute_s") * scale,
            wait_min=report.mean("wait_s") * scale,
            comm_min=report.mean("comm_s") * scale,
        )

    # ------------------------------------------------------------------
    # Halo Voxel Exchange
    # ------------------------------------------------------------------
    def hve_feasibility(self, n_gpus: int) -> Dict[str, Union[bool, float, int]]:
        """Tile-size feasibility analysis at ``n_gpus``.

        Returns ``feasible`` plus the paste relay ``hops`` (1 = direct
        neighbours suffice; >1 = the penalized relay regime that precedes
        NA — see the module docstring).
        """
        mesh = self.mesh_for(n_gpus)
        centers = self.scan.centers
        scanned_rows = float(centers[:, 0].max() - centers[:, 0].min()) + 1.0
        scanned_cols = float(centers[:, 1].max() - centers[:, 1].min()) + 1.0
        min_dim = min(scanned_rows / mesh.rows, scanned_cols / mesh.cols)
        reach = (
            2.0 * self.scan.spec.step_px
            + self.spec.probe_spec.nominal_radius_px
        )
        feasible = min_dim >= NA_FRACTION * reach
        hops = max(1, math.ceil(reach / max(min_dim, 1.0)))
        return {
            "feasible": feasible,
            "min_tile_dim": min_dim,
            "halo_needed_px": reach,
            "hops": hops,
        }

    def hve_decomposition(self, n_gpus: int) -> Decomposition:
        """Full-size Halo Voxel Exchange geometry."""
        return decompose_halo_exchange(
            self.scan,
            self.spec.object_shape,
            mesh=self.mesh_for(n_gpus),
            extra_rows=2,
            halo=self.hve_halo_px,
            partition="scan",
            # The predictor applies its own feasibility rule; the strict
            # geometric constraint would reject the relay regime outright.
            enforce_tile_constraint=False,
        )

    def hve_row(self, n_gpus: int) -> ScalingRow:
        """One Table II(b)/III(b) column, NA when infeasible."""
        nodes = ClusterTopology(n_gpus, self.machine.gpus_per_node).n_nodes
        feas = self.hve_feasibility(n_gpus)
        if not feas["feasible"]:
            return ScalingRow(
                nodes=nodes,
                gpus=n_gpus,
                memory_gb=NA,
                runtime_min=NA,
                efficiency_pct=NA,
            )
        decomp = self.hve_decomposition(n_gpus)
        mem_model = MemoryModel(
            self.spec, self.machine, needs_gradient_buffer=False
        )
        memory = mem_model.mean_bytes(decomp)
        recon = HaloExchangeReconstructor(
            mesh=decomp.mesh, iterations=1, halo=self.hve_halo_px
        )
        schedule = recon.build_iteration_schedule(decomp)
        # Relay regime: hops > 1 multiplies paste traffic and forces
        # boundary re-solves (modeled as extra local-solve rounds over the
        # relay-affected fraction of each tile).
        hops = int(feas["hops"])
        # Overflow fraction: how far the required reach pokes past what a
        # single paste can supply; drives the boundary re-solve cost.
        overflow = min(
            1.0,
            max(
                0.0,
                float(feas["halo_needed_px"]) / float(feas["min_tile_dim"])
                - 1.0,
            ),
        )
        compute_factor = 1.0 + (hops - 1) * 0.5 + overflow
        costs = SummitCostModel(
            self.spec,
            decomp,
            self.machine,
            memory_model=mem_model,
            comm_round_factor=float(hops),
            compute_round_factor=compute_factor,
        )
        report = self._simulator(n_gpus, costs).run(schedule)
        scale = self.iterations / 60.0
        return ScalingRow(
            nodes=nodes,
            gpus=n_gpus,
            memory_gb=memory / 1e9,
            runtime_min=report.makespan_s * scale,
            efficiency_pct=NA,
            compute_min=report.mean("compute_s") * scale,
            wait_min=report.mean("wait_s") * scale,
            comm_min=report.mean("comm_s") * scale,
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self, gpu_counts: Sequence[int], algorithm: str = "gd", planner: str = "appp"
    ) -> List[ScalingRow]:
        """Rows for a list of GPU counts, with strong-scaling efficiency
        filled in relative to the first feasible row."""
        if algorithm not in ("gd", "hve"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        rows = [
            self.gd_row(g, planner=planner) if algorithm == "gd" else self.hve_row(g)
            for g in gpu_counts
        ]
        base: Optional[ScalingRow] = next((r for r in rows if r.feasible), None)
        if base is not None:
            t0 = float(base.runtime_min) * base.gpus
            for r in rows:
                if r.feasible:
                    r.efficiency_pct = 100.0 * t0 / (float(r.runtime_min) * r.gpus)
        return rows
