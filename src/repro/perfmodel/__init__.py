"""Performance and memory models at the paper's full scale.

The numeric engine validates the algorithms at tractable sizes; this
package extrapolates to Summit scale (Tables II/III, Fig. 7) by combining

* the **exact full-size decomposition geometry** (probe assignment, halo
  rectangles, overlap regions — cheap to compute even at 4158 ranks),
* an **analytic memory model** cross-validated against the numeric
  engine's measured allocations,
* a **calibrated cost model** (FFT flop counts, memory-pressure factor,
  per-rank speed jitter, effective MPI bandwidth) feeding the same
  discrete-event simulation of the same schedules the numeric engine runs.

Calibration constants are documented in :mod:`repro.perfmodel.machine`;
see DESIGN.md and EXPERIMENTS.md for the fidelity contract (shape, not
absolute numbers).
"""

from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.cost_model import SummitCostModel
from repro.perfmodel.memory_model import MemoryModel, MemoryBreakdown
from repro.perfmodel.predictor import (
    PerformancePredictor,
    ScalingRow,
    NA,
)

__all__ = [
    "MachineSpec",
    "SUMMIT",
    "SummitCostModel",
    "MemoryModel",
    "MemoryBreakdown",
    "PerformancePredictor",
    "ScalingRow",
    "NA",
]
