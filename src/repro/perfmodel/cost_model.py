"""Calibrated cost model implementing the event simulator's
:class:`~repro.parallel.event_sim.CostProvider` protocol.

Per-probe compute time:

``t = (overhead + flops(G) / effective_flops) * pressure(working_set)
      * speed(rank)``

* ``flops(G)`` — analytic flop count of one multislice cost+gradient
  evaluation (FFT-dominated, ``O(S * n^2 log n)``; Sec. VI-C of the paper).
* ``pressure`` — the memory/cache-pressure factor of
  :class:`~repro.perfmodel.machine.MachineSpec`, responsible for the
  super-linear strong scaling: large per-GPU working sets at low GPU
  counts run each probe several times slower.
* ``speed`` — deterministic per-rank heterogeneity, the source of the
  GPU waiting times of Fig. 7b.

Message sizes are complex64 region bytes per the paper's implementation;
the all-reduce buffer (non-APPP mode) is the *full* gradient volume, which
is exactly why the paper rejects it (Sec. V).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.decomposition import Decomposition
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.memory_model import MemoryModel
from repro.physics.dataset import DatasetSpec

__all__ = ["SummitCostModel", "multislice_flops"]


def multislice_flops(detector_px: int, n_slices: int) -> float:
    """Analytic flop count of one cost+gradient evaluation.

    Mirrors :meth:`repro.physics.multislice.MultisliceModel.flops_per_probe`
    without instantiating the model (no arrays needed at 1024^2 x 100).
    """
    n2 = float(detector_px * detector_px)
    ffts = 2 * (2 * (n_slices - 1) + 1) + 2
    fft_flops = 5.0 * n2 * math.log2(max(n2, 2.0))
    pointwise = 12.0 * n_slices * n2
    return ffts * fft_flops + pointwise


class SummitCostModel:
    """Durations and message sizes for one (dataset, decomposition) pair.

    Parameters
    ----------
    spec / decomp:
        The acquisition and its tile decomposition.
    machine:
        Calibrated machine model.
    memory_model:
        Supplies per-rank working sets; constructed with full-scale
        storage dtypes when omitted.
    comm_round_factor / compute_round_factor:
        Multipliers on message bytes and gradient compute for
        communication-constrained regimes (Halo Voxel Exchange near its
        tile-size limit needs multi-hop relays and boundary re-solves;
        see :mod:`repro.perfmodel.predictor`).  1.0 = normal.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        decomp: Decomposition,
        machine: MachineSpec = SUMMIT,
        memory_model: Optional[MemoryModel] = None,
        comm_round_factor: float = 1.0,
        compute_round_factor: float = 1.0,
    ) -> None:
        if comm_round_factor < 1.0 or compute_round_factor < 1.0:
            raise ValueError("round factors must be >= 1")
        self.spec = spec
        self.decomp = decomp
        self.machine = machine
        self.memory = (
            memory_model if memory_model is not None else MemoryModel(spec, machine)
        )
        self.comm_round_factor = comm_round_factor
        self.compute_round_factor = compute_round_factor
        self._base_probe_s = (
            machine.probe_overhead_s
            + multislice_flops(spec.detector_px, spec.n_slices)
            / machine.effective_flops
        )
        # Working sets are static per decomposition: precompute factors.
        self._rank_factor = [
            machine.pressure_factor(self.memory.working_set_bytes(decomp, r))
            * machine.speed_factor(r)
            for r in range(decomp.n_ranks)
        ]

    # ------------------------------------------------------------------
    # CostProvider protocol
    # ------------------------------------------------------------------
    def gradient_seconds(self, rank: int, n_probes: int) -> float:
        """Time for ``n_probes`` gradient evaluations on ``rank``."""
        return (
            n_probes
            * self._base_probe_s
            * self._rank_factor[rank]
            * self.compute_round_factor
        )

    def exchange_bytes(self, region_area: int) -> float:
        """Message bytes of a buffer/voxel region (complex64 volume)."""
        return (
            region_area * self.spec.n_slices * 8.0 * self.comm_round_factor
        )

    def apply_seconds(self, region_area: int) -> float:
        """Pointwise add/replace of a received region (bandwidth bound:
        read remote + read/write local)."""
        nbytes = region_area * self.spec.n_slices * 8.0
        return 3.0 * nbytes / self.machine.memory_bandwidth

    def update_seconds(self, rank: int) -> float:
        """Tile update ``V -= lr * AccBuf`` (read buf, read+write V)."""
        ext = self.decomp.tile(rank).ext
        nbytes = ext.area * self.spec.n_slices * 8.0
        return 3.0 * nbytes / self.machine.memory_bandwidth

    def allreduce_bytes(self) -> float:
        """Full gradient volume — the non-APPP all-reduce payload."""
        rows, cols = self.spec.object_shape
        return rows * cols * self.spec.n_slices * 8.0

    def probe_bytes(self) -> float:
        """Size of the probe array (complex64) — the ProbeSync payload."""
        return self.spec.detector_px**2 * 8.0

    def probe_update_seconds(self, rank: int) -> float:
        """Pointwise probe update (bandwidth bound)."""
        return 3.0 * self.probe_bytes() / self.machine.memory_bandwidth

    # ------------------------------------------------------------------
    def probe_seconds(self, rank: int) -> float:
        """Modeled single-probe evaluation time on ``rank`` (diagnostic)."""
        return self._base_probe_s * self._rank_factor[rank]
