"""Decomposition and schedule diagnostics.

Production tooling for sizing runs before launching them: per-rank load
balance, the communication matrix, and the schedule's critical path.  The
CLI's ``predict`` subcommand and the examples build on these; tests pin
their arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.decomposition import Decomposition
from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    ApplyProbeUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    LocalSolve,
    ProbeSync,
    Schedule,
    VoxelPaste,
)

__all__ = [
    "LoadBalanceReport",
    "load_balance",
    "communication_matrix",
    "critical_path_length",
]


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-rank probe and pixel distribution statistics."""

    probes_min: int
    probes_max: int
    probes_mean: float
    pixels_min: int
    pixels_max: int
    pixels_mean: float

    @property
    def probe_imbalance(self) -> float:
        """max/mean probe count (1.0 = perfectly balanced); the waiting-
        time driver at the pass synchronization points."""
        if self.probes_mean == 0:
            return 1.0
        return self.probes_max / self.probes_mean

    @property
    def pixel_imbalance(self) -> float:
        """max/mean extended-tile pixels (memory balance)."""
        if self.pixels_mean == 0:
            return 1.0
        return self.pixels_max / self.pixels_mean

    def format(self) -> str:
        return (
            f"probes/rank: min={self.probes_min} mean={self.probes_mean:.1f} "
            f"max={self.probes_max} (imbalance {self.probe_imbalance:.2f}x)\n"
            f"ext pixels/rank: min={self.pixels_min} "
            f"mean={self.pixels_mean:.0f} max={self.pixels_max} "
            f"(imbalance {self.pixel_imbalance:.2f}x)"
        )


def load_balance(decomp: Decomposition) -> LoadBalanceReport:
    """Compute the load-balance statistics of a decomposition."""
    probes = [len(t.all_probes) for t in decomp.tiles]
    pixels = [t.ext.area for t in decomp.tiles]
    return LoadBalanceReport(
        probes_min=min(probes),
        probes_max=max(probes),
        probes_mean=float(np.mean(probes)),
        pixels_min=min(pixels),
        pixels_max=max(pixels),
        pixels_mean=float(np.mean(pixels)),
    )


def communication_matrix(
    schedule: Schedule, pixels_to_bytes: float = 1.0
) -> np.ndarray:
    """``(n_ranks, n_ranks)`` matrix of point-to-point traffic (bytes with
    ``pixels_to_bytes`` = itemsize x slices; region pixels otherwise).

    Collectives are not included — use
    :meth:`repro.schedule.Schedule.counts` to spot them.
    """
    matrix = np.zeros((schedule.n_ranks, schedule.n_ranks))
    for op in schedule:
        if isinstance(op, (BufferExchange, VoxelPaste)):
            matrix[op.src, op.dst] += op.region.area * pixels_to_bytes
    return matrix


#: Abstract op weights for the critical-path estimate: compute ops cost
#: their probe count, point-to-point ops cost ``EXCHANGE_WEIGHT``.
EXCHANGE_WEIGHT = 0.05


def critical_path_length(schedule: Schedule) -> float:
    """Longest dependency chain through the schedule, in abstract units
    (probes computed serially + weighted exchanges).

    The ratio ``total_work / (n_ranks * critical_path)`` bounds achievable
    parallel efficiency independent of any machine model — a quick sanity
    check that a planner has not accidentally serialized the iteration.
    """

    def weight(op) -> float:
        if isinstance(op, (ComputeGradients, LocalSolve)):
            return float(len(op.probe_indices))
        if isinstance(op, (BufferExchange, VoxelPaste)):
            return EXCHANGE_WEIGHT
        if isinstance(op, (AllReduceGradient, ProbeSync, Barrier)):
            return EXCHANGE_WEIGHT
        if isinstance(op, (ApplyBufferUpdate, ApplyProbeUpdate)):
            return EXCHANGE_WEIGHT
        return 0.0

    # Longest path over the DAG given by deps + per-rank program order.
    finish: Dict[int, float] = {}
    rank_last: Dict[int, float] = {}
    for op in schedule:
        start = 0.0
        for dep in op.deps:
            start = max(start, finish.get(dep, 0.0))
        for rank in op.ranks():
            start = max(start, rank_last.get(rank, 0.0))
        end = start + weight(op)
        finish[op.uid] = end
        for rank in op.ranks():
            rank_last[rank] = end
    return max(finish.values(), default=0.0)
