"""Tile decomposition of the image, the halos, and probe assignment.

Both algorithms start the same way (paper Fig. 2(b) / Fig. 3(b)): the image
is split into a ``mesh.rows x mesh.cols`` grid of contiguous **core tiles**
(one per GPU), each probe location is owned by the tile containing its scan
center, and every tile is extended with a **halo** so it covers the probe
windows it must evaluate.

The two algorithms differ in what gets assigned beyond that:

* **Gradient Decomposition** assigns *only* the tile's own probes; the halo
  is just wide enough to cover their windows (or a fixed physical width, as
  in the paper's 600 pm setting).  Overlap-region consistency comes from
  gradient accumulation passes, not data duplication.
* **Halo Voxel Exchange** additionally assigns ``extra_rows`` rings of
  *neighbouring* probe locations (the paper uses two extra rows) and grows
  the halo to cover those too — the redundant measurements and augmented
  halos that cost it memory and scalability (paper Figs. 2(d)-(e)).

The decomposition also validates the **ordered-interval property** the
forward/backward passes rely on (see DESIGN.md Sec. 3): along each mesh
axis, extended-tile intervals must be monotonically ordered so that overlap
accumulation is transitive along chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.parallel.topology import MeshLayout, choose_mesh
from repro.physics.scan import RasterScan
from repro.utils.geometry import Rect, union_rects

__all__ = [
    "RankTile",
    "Decomposition",
    "ScalabilityError",
    "decompose_gradient",
    "decompose_halo_exchange",
]


class ScalabilityError(RuntimeError):
    """Raised when a decomposition violates an algorithmic constraint —
    notably the Halo Voxel Exchange tile-size constraint that produces the
    "NA" entries of the paper's Table II(b)."""


@dataclass(frozen=True)
class RankTile:
    """One rank's share of the problem.

    Attributes
    ----------
    rank:
        Mesh rank (row-major).
    core:
        The owned tile; core tiles partition the image exactly.
    ext:
        The halo-extended tile actually allocated and updated.
    probes:
        Global indices of probe locations owned by this tile.
    extra_probes:
        Neighbour probes additionally assigned (Halo Voxel Exchange only;
        empty for Gradient Decomposition).
    """

    rank: int
    core: Rect
    ext: Rect
    probes: Tuple[int, ...]
    extra_probes: Tuple[int, ...] = ()

    @property
    def all_probes(self) -> Tuple[int, ...]:
        """Own + extra probes, the set this rank computes gradients for."""
        return self.probes + self.extra_probes

    @property
    def halo_pixels(self) -> int:
        """Pixels in the halo ring (ext minus core)."""
        return self.ext.area - self.core.area


def _split_points(total: int, parts: int) -> List[int]:
    """Balanced 1-D partition boundaries: ``parts+1`` cut points."""
    base, rem = divmod(total, parts)
    points = [0]
    for i in range(parts):
        points.append(points[-1] + base + (1 if i < rem else 0))
    return points


@dataclass
class Decomposition:
    """The full decomposition: mesh, tiles, and overlap geometry."""

    mesh: MeshLayout
    bounds: Rect
    tiles: List[RankTile]
    scan: RasterScan = field(repr=False)
    halo_mode: Union[str, int] = "exact"

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of ranks/tiles."""
        return self.mesh.n_ranks

    def tile(self, rank: int) -> RankTile:
        """Tile of ``rank``."""
        return self.tiles[rank]

    def tile_at(self, row: int, col: int) -> RankTile:
        """Tile at mesh coordinate ``(row, col)``."""
        return self.tiles[self.mesh.rank_of(row, col)]

    def overlap(self, a: int, b: int) -> Optional[Rect]:
        """Extended-tile overlap region between ranks ``a`` and ``b``."""
        return self.tiles[a].ext.intersect(self.tiles[b].ext)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert every structural invariant; raises on violation."""
        self._validate_partition()
        self._validate_probe_cover()
        self._validate_ordering()

    def _validate_partition(self) -> None:
        total = sum(t.core.area for t in self.tiles)
        if total != self.bounds.area:
            raise ValueError(
                f"core tiles cover {total} px, image has {self.bounds.area}"
            )
        for t in self.tiles:
            if not self.bounds.contains(t.core):
                raise ValueError(f"core of rank {t.rank} escapes the image")
            if not self.bounds.contains(t.ext):
                raise ValueError(f"ext of rank {t.rank} escapes the image")
            if not t.ext.contains(t.core):
                raise ValueError(f"ext of rank {t.rank} does not contain core")

    def _validate_probe_cover(self) -> None:
        seen = np.zeros(self.scan.n_positions, dtype=np.int64)
        for t in self.tiles:
            for p in t.probes:
                seen[p] += 1
        missing = np.flatnonzero(seen == 0)
        dup = np.flatnonzero(seen > 1)
        if missing.size or dup.size:
            raise ValueError(
                f"probe ownership broken: missing={missing[:5].tolist()} "
                f"duplicated={dup[:5].tolist()}"
            )

    def _validate_ordering(self) -> None:
        """Ordered-interval property along both mesh axes (required for
        transitive chain accumulation — DESIGN.md Sec. 3)."""
        for c in range(self.mesh.cols):
            tiles = [self.tile_at(r, c) for r in range(self.mesh.rows)]
            for a, b in zip(tiles, tiles[1:]):
                if a.ext.r0 > b.ext.r0 or a.ext.r1 > b.ext.r1:
                    raise ValueError(
                        f"row intervals unordered in column {c}: "
                        f"{a.ext} then {b.ext}"
                    )
        for r in range(self.mesh.rows):
            tiles = [self.tile_at(r, c) for c in range(self.mesh.cols)]
            for a, b in zip(tiles, tiles[1:]):
                if a.ext.c0 > b.ext.c0 or a.ext.c1 > b.ext.c1:
                    raise ValueError(
                        f"column intervals unordered in row {r}: "
                        f"{a.ext} then {b.ext}"
                    )

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def max_probes_per_rank(self) -> int:
        """Largest per-rank probe count (load-balance diagnostic)."""
        return max(len(t.all_probes) for t in self.tiles)

    def mean_halo_fraction(self) -> float:
        """Average halo-to-extended-area ratio (redundancy diagnostic).

        Degenerate geometry is reported, not crashed on: a zero-area
        extended tile contributes a zero fraction (it has no halo), and
        an empty tile list averages to 0.0.
        """
        if not self.tiles:
            return 0.0
        fractions = [
            (t.halo_pixels / t.ext.area) if t.ext.area > 0 else 0.0
            for t in self.tiles
        ]
        return float(np.mean(fractions))


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _enforce_ordering(
    exts: List[Rect], mesh: MeshLayout, bounds: Rect
) -> List[Rect]:
    """Grow extended tiles into **product form** with ordered intervals.

    The directional-pass correctness proof (DESIGN.md Sec. 3) needs two
    geometric properties of the extended tiles:

    1. *product form*: the row interval of ``ext(r, c)`` depends only on
       the mesh row ``r`` and the column interval only on ``c`` — this
       makes every pixel's covering-tile set a product of index ranges, so
       the vertical and horizontal passes separate exactly;
    2. *ordering*: those per-axis intervals are monotone along the mesh,
       making chain accumulation transitive.

    With a uniform raster scan both hold automatically; tiles owning few
    or no probes (tiny scans, extreme meshes) can break them.  Growing an
    extension is always safe — it only enlarges buffer coverage — so we
    repair by taking per-mesh-row / per-mesh-column interval unions and
    then enforcing monotonicity.
    """

    def idx(r: int, c: int) -> int:
        return mesh.rank_of(r, c)

    row_lo = [
        min(exts[idx(r, c)].r0 for c in range(mesh.cols))
        for r in range(mesh.rows)
    ]
    row_hi = [
        max(exts[idx(r, c)].r1 for c in range(mesh.cols))
        for r in range(mesh.rows)
    ]
    col_lo = [
        min(exts[idx(r, c)].c0 for r in range(mesh.rows))
        for c in range(mesh.cols)
    ]
    col_hi = [
        max(exts[idx(r, c)].c1 for r in range(mesh.rows))
        for c in range(mesh.cols)
    ]
    # Monotone repair: lower bounds non-decreasing (sweep backwards),
    # upper bounds non-decreasing (sweep forwards).
    for seq_lo, seq_hi in ((row_lo, row_hi), (col_lo, col_hi)):
        for i in range(len(seq_lo) - 2, -1, -1):
            seq_lo[i] = min(seq_lo[i], seq_lo[i + 1])
        for i in range(1, len(seq_hi)):
            seq_hi[i] = max(seq_hi[i], seq_hi[i - 1])

    out = []
    for r in range(mesh.rows):
        for c in range(mesh.cols):
            out.append(
                Rect(row_lo[r], row_hi[r], col_lo[c], col_hi[c]).clip(bounds)
            )
    return out


def _axis_splits(
    lo: int, hi: int, parts: int, center_lo: float, center_hi: float
) -> np.ndarray:
    """Split points along one axis, load-balanced over the scanned extent.

    Interior boundaries divide the probe-center bounding interval
    ``[center_lo, center_hi]`` evenly (so tiles own ~equal probe counts —
    each GPU gets "a tile and a probe location circle", paper Fig. 2(b));
    the first/last tiles absorb the un-scanned image border, which only
    probe-window tails touch.
    """
    if parts == 1:
        return np.asarray([lo, hi], dtype=np.int64)
    span = max(center_hi - center_lo, 1.0)
    interior = center_lo + span * np.arange(1, parts) / parts
    interior = np.clip(np.round(interior).astype(np.int64), lo + 1, hi - 1)
    # Enforce strict monotonicity for degenerate spans.
    for i in range(1, len(interior)):
        if interior[i] <= interior[i - 1]:
            interior[i] = interior[i - 1] + 1
    if interior[-1] >= hi:
        raise ValueError(
            f"cannot split axis [{lo},{hi}) into {parts} non-empty tiles"
        )
    return np.concatenate([[lo], interior, [hi]]).astype(np.int64)


def _core_tiles(
    bounds: Rect, mesh: MeshLayout, scan: RasterScan, partition: str = "scan"
) -> Tuple[List[Rect], np.ndarray, np.ndarray]:
    """Core tiles plus the row/col split points (for vectorized probe
    lookup).

    ``partition="scan"`` balances interior boundaries over the scanned
    region (equal probes per tile — the Gradient Decomposition layout);
    ``partition="uniform"`` splits the full image evenly (the voxel-centric
    layout of the original Halo Voxel Exchange implementations).
    """
    if partition == "uniform":
        rows = np.asarray(_split_points(bounds.height, mesh.rows)) + bounds.r0
        cols = np.asarray(_split_points(bounds.width, mesh.cols)) + bounds.c0
    elif partition == "scan":
        centers = scan.centers
        rows = _axis_splits(
            bounds.r0,
            bounds.r1,
            mesh.rows,
            float(centers[:, 0].min()),
            float(centers[:, 0].max()) + 1.0,
        )
        cols = _axis_splits(
            bounds.c0,
            bounds.c1,
            mesh.cols,
            float(centers[:, 1].min()),
            float(centers[:, 1].max()) + 1.0,
        )
    else:
        raise ValueError(f"unknown partition {partition!r}")
    tiles = []
    for r in range(mesh.rows):
        for c in range(mesh.cols):
            tiles.append(
                Rect(int(rows[r]), int(rows[r + 1]), int(cols[c]), int(cols[c + 1]))
            )
    return tiles, rows, cols


def _assign_probes(
    scan: RasterScan,
    mesh: MeshLayout,
    row_splits: np.ndarray,
    col_splits: np.ndarray,
    bounds: Rect,
) -> List[List[int]]:
    """Owner of each probe = tile containing its scan center (clamped to
    the image so edge probes always find an owner).

    Vectorized with ``searchsorted`` over the split points so full-scale
    geometries (16632 probes on a 63x66 mesh) decompose in milliseconds.
    """
    centers = scan.centers
    r = np.clip(centers[:, 0].astype(np.int64), bounds.r0, bounds.r1 - 1)
    c = np.clip(centers[:, 1].astype(np.int64), bounds.c0, bounds.c1 - 1)
    tile_r = np.searchsorted(row_splits, r, side="right") - 1
    tile_c = np.searchsorted(col_splits, c, side="right") - 1
    tile_r = np.clip(tile_r, 0, mesh.rows - 1)
    tile_c = np.clip(tile_c, 0, mesh.cols - 1)
    owner = tile_r * mesh.cols + tile_c
    owners: List[List[int]] = [[] for _ in range(mesh.n_ranks)]
    order = np.argsort(owner, kind="stable")
    for idx in order:
        owners[owner[idx]].append(int(idx))
    return owners


def _extended(
    core: Rect,
    probe_windows: Sequence[Rect],
    bounds: Rect,
    halo_mode: Union[str, int],
) -> Rect:
    if halo_mode == "exact":
        ext = core
        for w in probe_windows:
            ext = ext.union_bbox(w)
        return ext.clip(bounds)
    if isinstance(halo_mode, int):
        if halo_mode < 0:
            raise ValueError("fixed halo width must be non-negative")
        return core.expand(halo_mode).clip(bounds)
    raise ValueError(f"unknown halo mode {halo_mode!r}")


def decompose_gradient(
    scan: RasterScan,
    object_shape: Tuple[int, int],
    mesh: Optional[MeshLayout] = None,
    n_ranks: Optional[int] = None,
    halo: Union[str, int] = "exact",
    partition: str = "scan",
) -> Decomposition:
    """Gradient Decomposition tiling (paper Sec. III).

    Parameters
    ----------
    scan:
        The raster scan (probe windows drive halo sizing).
    object_shape:
        ``(rows, cols)`` of the reconstruction.
    mesh / n_ranks:
        Give the mesh explicitly or a rank count (mesh chosen to match the
        image aspect).  Exactly one must be provided.
    halo:
        ``"exact"`` extends each tile to cover its own probes' windows
        (exact gradients, used by correctness tests); an integer is a fixed
        halo width in pixels (the paper's 600 pm = 60 px mode — gradients
        outside the halo are truncated, which is the approximation the
        paper's memory numbers rest on).
    partition:
        Tile-boundary placement; see ``_core_tiles``.
    """
    mesh = _resolve_mesh(mesh, n_ranks, object_shape)
    bounds = Rect(0, object_shape[0], 0, object_shape[1])
    cores, row_splits, col_splits = _core_tiles(bounds, mesh, scan, partition)
    owners = _assign_probes(scan, mesh, row_splits, col_splits, bounds)

    exts = []
    for core, probe_ids in zip(cores, owners):
        windows = [scan.window_of(i) for i in probe_ids]
        exts.append(_extended(core, windows, bounds, halo))
    exts = _enforce_ordering(exts, mesh, bounds)
    tiles = [
        RankTile(rank=rank, core=core, ext=ext, probes=tuple(probe_ids))
        for rank, (core, ext, probe_ids) in enumerate(
            zip(cores, exts, owners)
        )
    ]
    decomp = Decomposition(
        mesh=mesh, bounds=bounds, tiles=tiles, scan=scan, halo_mode=halo
    )
    decomp.validate()
    return decomp


def decompose_halo_exchange(
    scan: RasterScan,
    object_shape: Tuple[int, int],
    mesh: Optional[MeshLayout] = None,
    n_ranks: Optional[int] = None,
    extra_rows: int = 2,
    halo: Union[str, int] = "exact",
    enforce_tile_constraint: bool = True,
    partition: str = "scan",
) -> Decomposition:
    """Halo Voxel Exchange tiling (paper Sec. II-C).

    Besides its own probes each tile receives every probe within
    ``extra_rows`` scan rows/columns of its core (the neighbouring circles
    of Figs. 2(d)-(e)), and its halo grows to cover them.

    Raises
    ------
    ScalabilityError
        When ``enforce_tile_constraint`` and a core tile is smaller than
        the halo it must fill at its neighbours — the algorithmic limit
        that makes the paper report "NA" beyond 54 GPUs on the small
        dataset (Sec. VI-B).
    """
    if extra_rows < 0:
        raise ValueError("extra_rows must be non-negative")
    mesh = _resolve_mesh(mesh, n_ranks, object_shape)
    bounds = Rect(0, object_shape[0], 0, object_shape[1])
    cores, row_splits, col_splits = _core_tiles(bounds, mesh, scan, partition)
    owners = _assign_probes(scan, mesh, row_splits, col_splits, bounds)

    # Extra probes: centers within extra_rows scan steps of the core
    # (vectorized rectangle membership per tile).
    reach = int(np.ceil(extra_rows * scan.spec.step_px))
    centers_r = scan.centers[:, 0]
    centers_c = scan.centers[:, 1]
    exts = []
    extras_per_rank = []
    for core, probe_ids in zip(cores, owners):
        own = np.zeros(scan.n_positions, dtype=bool)
        own[list(probe_ids)] = True
        reach_rect = core.expand(reach)
        inside = (
            (centers_r >= reach_rect.r0)
            & (centers_r < reach_rect.r1)
            & (centers_c >= reach_rect.c0)
            & (centers_c < reach_rect.c1)
        )
        extras = [int(i) for i in np.flatnonzero(inside & ~own)]
        extras_per_rank.append(extras)
        windows = [scan.window_of(i) for i in list(probe_ids) + extras]
        exts.append(_extended(core, windows, bounds, halo))
    exts = _enforce_ordering(exts, mesh, bounds)
    tiles = [
        RankTile(
            rank=rank,
            core=core,
            ext=ext,
            probes=tuple(probe_ids),
            extra_probes=tuple(extras),
        )
        for rank, (core, ext, probe_ids, extras) in enumerate(
            zip(cores, exts, owners, extras_per_rank)
        )
    ]

    decomp = Decomposition(
        mesh=mesh, bounds=bounds, tiles=tiles, scan=scan, halo_mode=halo
    )
    decomp.validate()

    if enforce_tile_constraint:
        _check_tile_constraint(decomp)
    return decomp


def _check_tile_constraint(decomp: Decomposition) -> None:
    """Each tile must be able to fill its neighbours' halos with its own
    core voxels: the core must be at least as large as the halo width it
    faces (paper Sec. VI-B, the "NA" constraint)."""
    for t in decomp.tiles:
        halo_top = t.core.r0 - t.ext.r0
        halo_bottom = t.ext.r1 - t.core.r1
        halo_left = t.core.c0 - t.ext.c0
        halo_right = t.ext.c1 - t.core.c1
        needed = max(halo_top, halo_bottom, halo_left, halo_right)
        if t.core.height < needed or t.core.width < needed:
            raise ScalabilityError(
                f"Halo Voxel Exchange tile-size constraint violated at rank "
                f"{t.rank}: core {t.core.shape} smaller than halo width "
                f"{needed}; cannot scale to {decomp.n_ranks} ranks (the "
                f"paper's 'NA' regime)"
            )


def _resolve_mesh(
    mesh: Optional[MeshLayout],
    n_ranks: Optional[int],
    object_shape: Tuple[int, int],
) -> MeshLayout:
    if (mesh is None) == (n_ranks is None):
        raise ValueError("provide exactly one of mesh= or n_ranks=")
    if mesh is not None:
        return mesh
    rows, cols = choose_mesh(
        int(n_ranks), aspect=object_shape[0] / object_shape[1]
    )
    return MeshLayout(rows=rows, cols=cols)
