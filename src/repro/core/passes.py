"""Forward/backward gradient-accumulation passes and their planners.

This module emits the communication phase of a round into a
:class:`~repro.schedule.Schedule`:

* :func:`build_appp_passes` — the paper's APPP (Sec. V): vertical forward,
  vertical backward, horizontal forward, horizontal backward chains of
  asynchronous point-to-point :class:`BufferExchange` ops, emitted so each
  rank's program order allows cross-direction pipelining (a bottom-row rank
  starts its horizontal pass while upper rows still run the vertical
  backward pass — Fig. 5).
* :func:`build_barrier_passes` — the same directional passes but with a
  global :class:`Barrier` between phases (no pipelining; ablation).
* :func:`build_allreduce_sync` — the rejected alternative (Sec. V): one
  global all-reduce of the full gradient volume.
* :func:`build_neighbor_exchanges` — the *direct-neighbour only*
  accumulation of Sec. III, sufficient for low probe overlap but provably
  wrong for high overlap (tests demonstrate the failure the paper's
  Fig. 3(c)-(d) describes, motivating the directional passes).

Semantics of a pass step over overlap region ``R`` between ranks ``a -> b``:
forward ``AccBuf_b[R] += AccBuf_a[R]`` (mode ``add``), backward
``AccBuf_b[R] = AccBuf_a[R]`` (mode ``replace``).  After all four phases
every rank's buffer equals the global gradient restricted to its extended
tile (the invariant tested property-based in
``tests/core/test_passes_invariant.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.decomposition import Decomposition
from repro.schedule.ops import (
    AllReduceGradient,
    Barrier,
    BufferExchange,
    Op,
    Schedule,
)

__all__ = [
    "build_appp_passes",
    "build_barrier_passes",
    "build_allreduce_sync",
    "build_neighbor_exchanges",
]

#: Tag namespaces keep vertical/horizontal message streams distinct.
TAG_VERTICAL = 100
TAG_HORIZONTAL = 200
TAG_NEIGHBOR = 300


class _DepTracker:
    """Tracks the last op uid per rank so exchanges depend on the producer
    ops of both endpoints (for DAG analyses; engines rely on order)."""

    def __init__(self, last: Optional[Dict[int, int]] = None) -> None:
        self.last: Dict[int, int] = dict(last or {})

    def deps_for(self, *ranks: int) -> List[int]:
        return sorted({self.last[r] for r in ranks if r in self.last})

    def record(self, op_uid: int, *ranks: int) -> None:
        for r in ranks:
            self.last[r] = op_uid


def _chain(
    schedule: Schedule,
    decomp: Decomposition,
    ranks: Sequence[int],
    mode: str,
    tag: int,
    tracker: _DepTracker,
) -> None:
    """Emit one directional chain: rank[i] -> rank[i+1] exchanges in order.

    ``ranks`` must already be ordered in the pass direction (forward passes
    pass the natural order, backward passes the reverse).
    """
    for a, b in zip(ranks, ranks[1:]):
        region = decomp.overlap(a, b)
        if region is None:
            continue
        op = BufferExchange(src=a, dst=b, region=region, mode=mode, tag=tag)
        uid = schedule.add(op, deps=tracker.deps_for(a, b))
        tracker.record(uid, a, b)


def build_appp_passes(
    schedule: Schedule,
    decomp: Decomposition,
    tracker_state: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Emit the APPP pass sequence (Sec. IV + V).

    Phases are emitted back to back with *no* barriers; per-rank program
    order plus message availability is the only synchronization, exactly
    like the paper's asynchronous isend/irecv pipelines.  Returns the
    last-op-per-rank map so callers can chain further ops.
    """
    mesh = decomp.mesh
    tracker = _DepTracker(tracker_state)

    # Vertical forward: top row -> bottom row, per column (Fig. 4(a)).
    for col in range(mesh.cols):
        _chain(
            schedule, decomp, mesh.column_ranks(col), "add", TAG_VERTICAL, tracker
        )
    # Vertical backward: bottom -> top, replace (Fig. 4(b)).
    for col in range(mesh.cols):
        _chain(
            schedule,
            decomp,
            list(reversed(mesh.column_ranks(col))),
            "replace",
            TAG_VERTICAL + 1,
            tracker,
        )
    # Horizontal forward: left -> right, per row (Fig. 4(c)).
    for row in range(mesh.rows):
        _chain(
            schedule, decomp, mesh.row_ranks(row), "add", TAG_HORIZONTAL, tracker
        )
    # Horizontal backward: right -> left, replace (Fig. 4(d)).
    for row in range(mesh.rows):
        _chain(
            schedule,
            decomp,
            list(reversed(mesh.row_ranks(row))),
            "replace",
            TAG_HORIZONTAL + 1,
            tracker,
        )
    return tracker.last


def build_barrier_passes(
    schedule: Schedule,
    decomp: Decomposition,
    tracker_state: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Directional passes with a global barrier after each phase —
    identical numerics to APPP, strictly worse pipelining (ablation for
    Fig. 7b)."""
    mesh = decomp.mesh
    tracker = _DepTracker(tracker_state)

    def barrier() -> None:
        uid = schedule.add(
            Barrier(n_ranks=decomp.n_ranks),
            deps=tracker.deps_for(*range(decomp.n_ranks)),
        )
        tracker.record(uid, *range(decomp.n_ranks))

    for col in range(mesh.cols):
        _chain(schedule, decomp, mesh.column_ranks(col), "add", TAG_VERTICAL, tracker)
    barrier()
    for col in range(mesh.cols):
        _chain(
            schedule,
            decomp,
            list(reversed(mesh.column_ranks(col))),
            "replace",
            TAG_VERTICAL + 1,
            tracker,
        )
    barrier()
    for row in range(mesh.rows):
        _chain(schedule, decomp, mesh.row_ranks(row), "add", TAG_HORIZONTAL, tracker)
    barrier()
    for row in range(mesh.rows):
        _chain(
            schedule,
            decomp,
            list(reversed(mesh.row_ranks(row))),
            "replace",
            TAG_HORIZONTAL + 1,
            tracker,
        )
    barrier()
    return tracker.last


def build_allreduce_sync(
    schedule: Schedule,
    decomp: Decomposition,
    tracker_state: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """The "natural choice" the paper rejects (Sec. V): synchronize
    buffers with one global all-reduce of the full gradient volume.
    Numerically equivalent to the passes; communication cost scales with
    the whole volume instead of the overlap regions."""
    tracker = _DepTracker(tracker_state)
    uid = schedule.add(
        AllReduceGradient(n_ranks=decomp.n_ranks),
        deps=tracker.deps_for(*range(decomp.n_ranks)),
    )
    tracker.record(uid, *range(decomp.n_ranks))
    return tracker.last


def build_neighbor_exchanges(
    schedule: Schedule,
    decomp: Decomposition,
    tracker_state: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Direct-neighbour gradient accumulation only (Sec. III).

    Every ordered pair of 8-connected mesh neighbours adds its buffer into
    the other's over their overlap.  Correct when probe circles only
    overlap direct neighbours (low overlap); for high overlap, indirect
    tiles never hear from each other — the failure mode of Fig. 3(d) that
    motivates the directional passes.  Kept as an ablation planner.
    """
    tracker = _DepTracker(tracker_state)
    n = decomp.n_ranks
    # Each pair exchanges symmetrically; stage the adds on a snapshot
    # semantic: emit A->B and B->A using pre-exchange values.  The numeric
    # engine snapshots payloads at send time, so emitting all sends of a
    # pair adjacently is NOT order-safe (the second send would include the
    # first add).  We therefore emit sends in two sweeps: all lower->higher
    # first, recording payload snapshots, then higher->lower — but a
    # snapshot of the higher rank taken after its add would double-count.
    # The engine resolves this by honoring the ``snapshot`` tag: sends
    # tagged TAG_NEIGHBOR use the rank's pre-round buffer copy.
    for a in range(n):
        for b in decomp.mesh.neighbors8(a):
            region = decomp.overlap(a, b)
            if region is None:
                continue
            op = BufferExchange(
                src=a, dst=b, region=region, mode="add", tag=TAG_NEIGHBOR
            )
            uid = schedule.add(op, deps=tracker.deps_for(a, b))
            tracker.record(uid, a, b)
    return tracker.last
