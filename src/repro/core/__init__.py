"""The paper's primary contribution: gradient-decomposed reconstruction.

* :mod:`repro.core.decomposition` — tile grid, halos, probe assignment,
  overlap geometry (paper Sec. III).
* :mod:`repro.core.passes` — forward/backward directional gradient passes
  and the APPP / all-reduce / barrier planners (Secs. IV-V).
* :mod:`repro.core.engine` — the numeric interpreter executing schedules on
  real arrays through the virtual communicator.
* :mod:`repro.core.reconstructor` — the public
  :class:`GradientDecompositionReconstructor` (Alg. 1).
* :mod:`repro.core.stitching` — halo discard + tile stitching.
* :mod:`repro.core.observers` — the :class:`IterationEvent` observer API
  shared by every reconstructor (re-exported via :mod:`repro.api`).
"""

from repro.core.decomposition import (
    Decomposition,
    RankTile,
    decompose_gradient,
    decompose_halo_exchange,
    ScalabilityError,
)
from repro.core.passes import (
    build_appp_passes,
    build_barrier_passes,
    build_allreduce_sync,
    build_neighbor_exchanges,
)
from repro.core.engine import NumericEngine
from repro.core.observers import IterationEvent, Observer, dispatch
from repro.core.reconstructor import (
    GradientDecompositionReconstructor,
    ReconstructionResult,
)
from repro.core.stitching import stitch
from repro.core.diagnostics import (
    LoadBalanceReport,
    communication_matrix,
    critical_path_length,
    load_balance,
)

__all__ = [
    "Decomposition",
    "RankTile",
    "decompose_gradient",
    "decompose_halo_exchange",
    "ScalabilityError",
    "build_appp_passes",
    "build_barrier_passes",
    "build_allreduce_sync",
    "build_neighbor_exchanges",
    "NumericEngine",
    "IterationEvent",
    "Observer",
    "dispatch",
    "GradientDecompositionReconstructor",
    "ReconstructionResult",
    "stitch",
    "LoadBalanceReport",
    "load_balance",
    "communication_matrix",
    "critical_path_length",
]
