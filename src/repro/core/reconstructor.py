"""Public gradient-decomposition reconstructor (paper Algorithm 1).

:class:`GradientDecompositionReconstructor` orchestrates everything:

1. decompose the image into tiles with minimal halos (Sec. III);
2. per iteration, build the round structure implied by the delayed
   accumulation period ``T`` (Alg. 1 line 9) — gradient computation,
   forward/backward passes, buffer update, buffer reset;
3. execute it on the numeric engine (real arrays, virtual communicator);
4. stitch the non-halo tiles into the final volume (line 20).

Modes
-----
``mode="alg1"`` is the paper's Algorithm 1 verbatim: each probe does an
immediate local SGD step (line 8) *and* accumulates into the buffer
(line 7); every ``T`` probes the passes run and the accumulated buffer is
applied as a second update (lines 10-16).

``mode="synchronous"`` is the textbook-exact variant this library adds as a
correctness anchor: no local updates, one buffer update per round — with
exact halos it reproduces serial full-batch gradient descent to floating
point roundoff at any rank count (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.decomposition import Decomposition, decompose_gradient
from repro.core.engine import NumericEngine
from repro.obs import telemetry as _obs
from repro.core.observers import (
    IterationEmitter,
    Observer,
    warn_legacy_callback,
)
from repro.core.passes import (
    build_allreduce_sync,
    build_appp_passes,
    build_barrier_passes,
    build_neighbor_exchanges,
)
from repro.core.stitching import stitch
from repro.data.batching import resolve_positions
from repro.parallel.topology import MeshLayout
from repro.runtime.executor import EnginePlan, resolve_executor
from repro.physics.dataset import PtychoDataset
from repro.schedule.ops import (
    ApplyBufferUpdate,
    ApplyProbeUpdate,
    ComputeGradients,
    OrthogonalizeProbe,
    ProbeSync,
    ResetBuffer,
    Schedule,
)

__all__ = ["GradientDecompositionReconstructor", "ReconstructionResult"]

_PLANNERS: Dict[str, Callable] = {
    "appp": build_appp_passes,
    "barrier": build_barrier_passes,
    "allreduce": build_allreduce_sync,
    "neighbor": build_neighbor_exchanges,
}


@dataclass
class ReconstructionResult:
    """Outcome of a distributed reconstruction.

    Attributes
    ----------
    volume:
        Stitched ``(n_slices, rows, cols)`` complex reconstruction.
    history:
        Per-iteration sweep cost (sum of ``f_i`` evaluated during the
        iteration) — the convergence signal of the paper's Fig. 9.
    messages / message_bytes:
        Total point-to-point traffic measured by the virtual communicator.
    peak_memory_per_rank:
        Measured peak bytes per rank (numeric-engine allocations).
    decomposition:
        The tile decomposition used.
    probe:
        Final probe estimate (None unless probe refinement was enabled).
    telemetry:
        Aggregated telemetry summary (``repro.obs`` schema) when the run
        recorded one; ``None`` for telemetry-disabled runs.  Attached
        after the run by :func:`repro.api.reconstruct` and persisted in
        result archives.
    """

    volume: np.ndarray
    history: List[float]
    messages: int
    message_bytes: int
    peak_memory_per_rank: List[int]
    decomposition: Decomposition = field(repr=False)
    probe: Optional[np.ndarray] = field(default=None, repr=False)
    telemetry: Optional[Dict] = field(default=None, repr=False)

    @property
    def n_iterations(self) -> int:
        """Iterations actually run."""
        return len(self.history)

    @property
    def final_cost(self) -> float:
        """Last recorded sweep cost."""
        return self.history[-1] if self.history else float("nan")

    @property
    def peak_memory_mean(self) -> float:
        """Average per-rank peak bytes (the paper's memory metric)."""
        return float(np.mean(self.peak_memory_per_rank))


def _round_chunks(
    probe_lists: List[Tuple[int, ...]], period: Union[str, int]
) -> List[List[Tuple[int, ...]]]:
    """Split each rank's probe list into per-round chunks.

    Returns ``rounds[j][rank]`` = tuple of probe indices rank evaluates in
    round ``j``.  ``period`` is the Alg. 1 parameter ``T``: an int (probes
    between passes) or one of ``"iteration"`` (one round), ``"half"``
    (two rounds), ``"probe"`` (a round per probe, T=1).
    """
    max_local = max((len(p) for p in probe_lists), default=0)
    if period == "iteration":
        t = max(max_local, 1)
    elif period == "half":
        t = max(-(-max_local // 2), 1)
    elif period == "probe":
        t = 1
    elif isinstance(period, int):
        if period <= 0:
            raise ValueError("sync period T must be positive")
        t = period
    else:
        raise ValueError(f"unknown sync period {period!r}")

    n_rounds = max(-(-len(p) // t) for p in probe_lists) if max_local else 1
    rounds: List[List[Tuple[int, ...]]] = []
    for j in range(n_rounds):
        rounds.append([tuple(p[j * t : (j + 1) * t]) for p in probe_lists])
    return rounds


class GradientDecompositionReconstructor:
    """Distributed multislice ptychography via gradient decomposition.

    Parameters
    ----------
    n_ranks / mesh:
        Cluster size (mesh chosen automatically) or an explicit
        :class:`~repro.parallel.topology.MeshLayout`.
    iterations:
        Number of full sweeps over all probe locations.
    lr:
        Gradient step size.
    mode:
        ``"alg1"`` (paper) or ``"synchronous"`` (exact; see module doc).
    sync_period:
        Alg. 1 ``T``: ``"iteration"``, ``"half"``, ``"probe"`` or an int.
    planner:
        ``"appp"`` (paper), ``"barrier"``, ``"allreduce"`` or
        ``"neighbor"`` (Sec. III direct-neighbour ablation).
    halo:
        ``"exact"`` or a fixed halo width in pixels (see
        :func:`repro.core.decomposition.decompose_gradient`).
    compensate_local:
        Subtract already-applied local gradients from the buffer update
        (ablation; the paper's Alg. 1 re-applies them).
    refine_probe / probe_lr:
        Jointly refine the probe (extension beyond the paper): per-rank
        probe gradients are accumulated during compute, all-reduced once
        per iteration (the probe is one small global array, so the
        all-reduce the paper rejects for the *volume* is the right tool
        here), and applied with step ``probe_lr``.
    backend / dtype:
        Compute backend name (or instance) and precision policy for the
        numeric engine — see :mod:`repro.backend`.  ``None`` resolves
        the ambient defaults (``numpy``/``complex128`` unless the
        ``REPRO_BACKEND``/``REPRO_DTYPE`` environment says otherwise).
    executor / runtime_workers:
        *Where* the rank programs run — see :mod:`repro.runtime`.
        ``"serial"`` hosts every rank in this process (the bit-exact
        reference); ``"process"`` runs each rank block in its own worker
        process with tile state in shared memory (``runtime_workers``
        bounds the pool).  ``None`` resolves the ambient default
        (``REPRO_EXECUTOR`` environment, else ``serial``); an explicit
        value is never overridden by the environment.  On the numpy
        backend the ``process`` executor reproduces the ``serial``
        result bit-for-bit.
    data_source / batch_size / prefetch:
        Measurement source and batching (see :mod:`repro.data`):
        ``None``/``"memory"`` pins each rank's measurement shard in RAM
        (the historical behaviour, bit for bit); a path streams lazily
        from a chunked on-disk store (``prefetch=True`` overlaps the
        next chunk's I/O with compute).  ``batch_size`` probes run
        through each multislice sweep as one FFT batch where order
        permits (``mode="synchronous"``); Alg. 1's per-probe local
        updates are order-dependent and always evaluate per position.
        ``None`` resolves ``REPRO_BATCH_SIZE``, else 1; every setting
        is fingerprint-identical to the per-position reference.
    positions:
        Restrict sweeps to this scan-position subset (``None`` = the
        full scan).  The streaming driver plans each epoch over a
        coverage snapshot this way; the decomposition stays on the full
        scan, so a restricted run is exactly the full run with the
        missing probes' gradient terms skipped.
    probe_modes:
        Number of incoherent probe modes (mixed-state reconstruction,
        see :mod:`repro.physics.probe`).  ``None``/1 is the scalar path,
        bit-identical to the historical behaviour; ``M > 1`` carries an
        ``(M, w, w)`` mode stack through the engine and schedules an
        :class:`OrthogonalizeProbe` pass after each probe update when
        ``refine_probe=True``.
    """

    def __init__(
        self,
        n_ranks: Optional[int] = None,
        mesh: Optional[MeshLayout] = None,
        iterations: int = 10,
        lr: float = 0.5,
        mode: str = "alg1",
        sync_period: Union[str, int] = "iteration",
        planner: str = "appp",
        halo: Union[str, int] = "exact",
        compensate_local: bool = False,
        refine_probe: bool = False,
        probe_lr: Optional[float] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        executor: Optional[str] = None,
        runtime_workers: Optional[int] = None,
        data_source: Optional[str] = None,
        batch_size: Optional[int] = None,
        prefetch: bool = False,
        positions: Optional[Sequence[int]] = None,
        probe_modes: Optional[int] = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if mode not in ("alg1", "synchronous"):
            raise ValueError(f"unknown mode {mode!r}")
        if planner not in _PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose from {sorted(_PLANNERS)}"
            )
        if refine_probe and probe_lr is not None and probe_lr <= 0:
            raise ValueError("probe_lr must be positive")
        if runtime_workers is not None and runtime_workers <= 0:
            raise ValueError("runtime_workers must be positive")
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if probe_modes is not None and probe_modes <= 0:
            raise ValueError("probe_modes must be positive")
        self.n_ranks = n_ranks
        self.mesh = mesh
        self.iterations = iterations
        self.lr = float(lr)
        self.mode = mode
        self.sync_period = sync_period
        self.planner = planner
        self.halo = halo
        self.compensate_local = compensate_local
        self.refine_probe = refine_probe
        self.probe_lr = probe_lr
        self.backend = backend
        self.dtype = dtype
        self.executor = executor
        self.runtime_workers = runtime_workers
        self.data_source = data_source
        self.batch_size = batch_size
        self.prefetch = bool(prefetch)
        self.positions = positions
        self.probe_modes = probe_modes

    # ------------------------------------------------------------------
    def decompose(self, dataset: PtychoDataset) -> Decomposition:
        """Build the tile decomposition for ``dataset``."""
        return decompose_gradient(
            dataset.scan,
            dataset.object_shape,
            mesh=self.mesh,
            n_ranks=self.n_ranks if self.mesh is None else None,
            halo=self.halo,
        )

    def build_iteration_schedule(self, decomp: Decomposition) -> Schedule:
        """Compile one iteration (a full sweep over all probes) to ops.

        Shared by the numeric run and the performance model's event
        simulation, which is what keeps the timing results faithful to the
        executed algorithm.
        """
        schedule = Schedule(decomp.n_ranks)
        pass_builder = _PLANNERS[self.planner]
        local_update = self.mode == "alg1"
        probe_lists = [t.probes for t in decomp.tiles]
        # A positions restriction (streaming coverage snapshot) narrows
        # each tile's sweep to the covered probes in the tile's own
        # order; the decomposition, buffer exchanges and apply steps
        # stay on the full scan.
        active = resolve_positions(self.positions, decomp.scan.n_positions)
        if active is not None:
            member = frozenset(active)
            probe_lists = [
                tuple(p for p in probes if p in member)
                for probes in probe_lists
            ]
        rounds = _round_chunks(probe_lists, self.sync_period)

        last: Dict[int, int] = {}
        for round_chunks in rounds:
            for rank, chunk in enumerate(round_chunks):
                if not chunk:
                    continue
                uid = schedule.add(
                    ComputeGradients(
                        rank=rank,
                        probe_indices=chunk,
                        local_update=local_update,
                    ),
                    deps=[last[rank]] if rank in last else [],
                )
                last[rank] = uid
            last = pass_builder(schedule, decomp, last)
            for rank in range(decomp.n_ranks):
                uid = schedule.add(
                    ApplyBufferUpdate(rank=rank, lr=self.lr),
                    deps=[last[rank]] if rank in last else [],
                )
                last[rank] = uid
                uid = schedule.add(ResetBuffer(rank=rank), deps=[uid])
                last[rank] = uid
        if self.refine_probe:
            # One probe all-reduce + update per iteration (after the
            # volume work; the probe is a single small global array).
            uid = schedule.add(
                ProbeSync(n_ranks=decomp.n_ranks),
                deps=sorted(set(last.values())),
            )
            multi_mode = self.probe_modes is not None and self.probe_modes > 1
            for rank in range(decomp.n_ranks):
                last[rank] = schedule.add(
                    ApplyProbeUpdate(
                        rank=rank, lr=self._resolved_probe_lr(decomp)
                    ),
                    deps=[uid],
                )
                if multi_mode:
                    # Mixed-state runs re-orthogonalize the mode stack
                    # after every probe step; never scheduled at M=1 so
                    # single-mode schedules stay identical to scalar ones.
                    last[rank] = schedule.add(
                        OrthogonalizeProbe(rank=rank), deps=[last[rank]]
                    )
        schedule.validate()
        return schedule

    def _resolved_probe_lr(self, decomp: Decomposition) -> float:
        """Probe step size: explicit, or ``0.5 / N``.

        The probe gradient is preconditioned by the *object* magnitude
        (|O| ~ 1 for a transmission function), not the probe intensity, so
        the object step's ``1/max|p|^2`` factor must not leak in; the sum
        over all ``N`` probe locations supplies the remaining scale.
        """
        if self.probe_lr is not None:
            return self.probe_lr
        return 0.5 / max(decomp.scan.n_positions, 1)

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        dataset: PtychoDataset,
        callback: Optional[Callable[[int, float, NumericEngine], None]] = None,
        initial_probe: Optional[np.ndarray] = None,
        initial_volume: Optional[np.ndarray] = None,
        *,
        observers: Sequence[Observer] = (),
    ) -> ReconstructionResult:
        """Run the full reconstruction.

        Parameters
        ----------
        dataset:
            The acquisition.
        observers:
            Per-iteration hooks, each receiving a structured
            :class:`~repro.core.observers.IterationEvent` (iteration,
            cost, elapsed time, traffic/memory counters, and a lazy
            ``snapshot()`` materializing the current state as a
            :class:`ReconstructionResult`) — used by the convergence
            experiments and :class:`repro.api.CheckpointPolicy`.
        callback:
            **Deprecated** pre-observer hook ``callback(iteration, cost,
            engine)``; still honoured (with a :class:`DeprecationWarning`)
            alongside any observers.  Migrate with
            ``observers=[lambda ev: old(ev.iteration, ev.cost, ...)]``.
        initial_probe:
            Starting probe estimate (defaults to the dataset's probe; pass
            a perturbed probe together with ``refine_probe=True`` for
            joint probe/object recovery).
        initial_volume:
            Warm-start volume (checkpoint restart); defaults to vacuum.
        """
        executor_spec = self.executor
        if callback is not None:
            warn_legacy_callback(type(self).__name__)
            if executor_spec is None:
                # The legacy hook hands the caller the in-process engine,
                # which only the serial executor has; ambient resolution
                # (REPRO_EXECUTOR) must not break pre-runtime call sites,
                # so they pin serial.  An *explicitly* requested
                # distributed executor still errors below.
                executor_spec = "serial"
        decomp = self.decompose(dataset)
        schedule = self.build_iteration_schedule(decomp)
        tel = _obs.current()
        session = resolve_executor(
            executor_spec, workers=self.runtime_workers
        ).launch(
            EnginePlan(
                dataset=dataset,
                decomp=decomp,
                schedule=schedule,
                lr=self.lr,
                compensate_local=self.compensate_local,
                initial_probe=initial_probe,
                refine_probe=self.refine_probe,
                initial_volume=initial_volume,
                backend=self.backend,
                dtype=self.dtype,
                data_source=self.data_source,
                batch_size=self.batch_size,
                prefetch=self.prefetch,
                probe_modes=self.probe_modes,
                telemetry=tel.enabled,
            )
        )
        if callback is not None and session.engine is None:
            session.close()
            raise ValueError(
                "the deprecated callback= hook needs in-process engine "
                "access and only works with the serial executor; migrate "
                "to observers="
            )

        def result_snapshot(history: List[float]) -> ReconstructionResult:
            return ReconstructionResult(
                volume=stitch(decomp, session.volumes(), dataset.n_slices),
                history=list(history),
                messages=session.messages,
                message_bytes=session.message_bytes,
                peak_memory_per_rank=session.per_rank_peaks,
                decomposition=decomp,
                probe=session.probe(),
            )

        history: List[float] = []
        emitter = IterationEmitter("gd", self.iterations, observers)
        try:
            for it in range(self.iterations):
                if tel.enabled:
                    with tel.span("run.iteration", iteration=it):
                        cost = session.step()
                else:
                    cost = session.step()
                history.append(cost)
                if callback is not None:
                    callback(it, cost, session.engine)
                emitter.emit(
                    it,
                    cost,
                    messages=session.messages,
                    message_bytes=session.message_bytes,
                    peak_memory_bytes=float(
                        np.mean(session.per_rank_peaks)
                    ),
                    # Materializes the session state *at call time*, so
                    # volume, counters and history always describe the
                    # same moment (history is read live, not frozen).
                    snapshot=lambda: result_snapshot(list(history)),
                )

            return result_snapshot(history)
        finally:
            session.close()
