"""The numeric interpreter: executes schedules on real NumPy arrays.

One :class:`NumericEngine` hosts the per-rank state of a distributed
reconstruction — extended-tile volume, gradient accumulation buffer, the
rank's own measurement shard — and executes schedule ops in order.  All
inter-rank data moves through a communicator (payloads are
snapshot-copied), so the executed communication pattern *is* the
algorithm's, and message/byte counts are measured.

The engine is **executor-agnostic**: by default it hosts *every* rank of
the decomposition behind an in-process
:class:`~repro.parallel.comm.VirtualComm` (the serial reference), but a
``ranks=`` subset turns it into one worker's share of a real multi-process
run — ops whose ranks are all elsewhere are skipped, point-to-point ops
execute only their hosted side, and collectives route through the
communicator (a :class:`~repro.runtime.process_comm.ProcessComm`, which
sets ``is_distributed``).  ``shared_arrays=`` lets the runtime place tile
volumes and gradient buffers in ``multiprocessing.shared_memory`` so the
parent process can stitch and all-reduce without copying.

Gradient truncation: with fixed-width halos (the paper's memory-efficient
configuration) a probe window can poke out of the extended tile.  The
engine then reads the missing object pixels as vacuum (1.0) and discards
gradient contributions outside the tile — exactly the approximation the
paper justifies by the gradients being "almost zero everywhere outside the
circle" (Sec. III).  With ``halo="exact"`` no truncation occurs and
synchronous-mode runs match the serial solver bit-for-bit (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.base import (
    ArrayBackend,
    PrecisionPolicy,
    resolve_backend,
    resolve_precision,
)
import time

from repro.core.decomposition import Decomposition
from repro.core.passes import TAG_NEIGHBOR
from repro.obs import telemetry as _obs
from repro.data import (
    BatchPlanner,
    DiffractionStore,
    InMemoryStore,
    open_store,
    resolve_batch_size,
)
from repro.parallel.comm import VirtualComm
from repro.parallel.memory import MemoryTracker
from repro.physics.dataset import PtychoDataset
from repro.physics.multislice import MultisliceModel
from repro.physics.probe import make_mode_stack, orthogonalize_modes
from repro.schedule.ops import (
    AllReduceGradient,
    ApplyBufferUpdate,
    ApplyProbeUpdate,
    Barrier,
    BufferExchange,
    ComputeGradients,
    LocalSolve,
    Op,
    OrthogonalizeProbe,
    ProbeSync,
    ResetBuffer,
    Schedule,
    VoxelPaste,
)
from repro.utils.geometry import Rect

__all__ = ["RankState", "NumericEngine"]

#: Telemetry span name per schedule op — the engine's phase vocabulary
#: (gradient compute, halo exchange, collectives, buffer accumulate),
#: matching the paper's per-phase timing decomposition.
_PHASE_OF = {
    ComputeGradients: "engine.compute",
    LocalSolve: "engine.local_solve",
    BufferExchange: "engine.exchange",
    AllReduceGradient: "engine.allreduce",
    ApplyBufferUpdate: "engine.apply",
    ResetBuffer: "engine.apply",
    VoxelPaste: "engine.paste",
    Barrier: "engine.barrier",
    ProbeSync: "engine.probe_sync",
    ApplyProbeUpdate: "engine.apply",
    OrthogonalizeProbe: "engine.orthogonalize",
}


@dataclass
class RankState:
    """Per-rank distributed state."""

    rank: int
    core: Rect
    ext: Rect
    volume: np.ndarray
    accbuf: np.ndarray
    localbuf: Optional[np.ndarray]
    measurements: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Snapshot used by direct-neighbour exchanges (see passes.py).
    neighbor_snapshot: Optional[np.ndarray] = None
    cost_accum: float = 0.0
    #: Per-rank probe copy + gradient buffer (probe refinement only).
    probe: Optional[np.ndarray] = None
    probe_grad: Optional[np.ndarray] = None


class NumericEngine:
    """Executes schedules over a dataset + decomposition (see module doc).

    Parameters
    ----------
    dataset:
        The acquisition to reconstruct.
    decomp:
        Tile decomposition (gradient or halo-exchange flavour).
    lr:
        Gradient-descent step size.
    comm / memory:
        Optional externally-supplied communicator and memory tracker
        (created internally when omitted).
    compensate_local:
        Ablation flag: subtract the already-applied local gradients from
        the buffer update (Alg. 1 as printed applies them twice; see
        DESIGN.md Sec. 6).
    initial_probe:
        Override the dataset's (true) probe as the reconstruction's probe
        estimate — the starting point for probe refinement.  Either a
        scalar ``(w, w)`` probe or an ``(M, w, w)`` mode stack matching
        ``probe_modes``; a scalar probe under ``probe_modes > 1`` is
        deterministically expanded (see
        :func:`repro.physics.probe.make_mode_stack`).
    probe_modes:
        Number of incoherent probe modes (mixed-state reconstruction).
        ``None``/1 keeps the scalar ``(w, w)`` representation and is
        bit-identical to the historical path; ``M > 1`` holds an
        ``(M, w, w)`` stack — the forward model sums intensity over
        modes, probe gradients/sync/updates are per-mode, and
        :class:`OrthogonalizeProbe` ops re-orthogonalize the stack.
    refine_probe:
        Allocate per-rank probe copies + gradient buffers and accumulate
        probe gradients during compute ops (consumed by
        :class:`ProbeSync`/:class:`ApplyProbeUpdate`).
    initial_volume:
        Warm-start the reconstruction from a full ``(slices, rows, cols)``
        volume (each rank receives its extended-tile restriction);
        defaults to vacuum.
    backend / dtype:
        Compute backend and precision policy (see :mod:`repro.backend`);
        ``None`` resolves the ambient defaults.  Every per-rank array —
        extended-tile volume, accumulation buffers, probe copies — is
        allocated at the policy's complex width, so the memory tracker
        measures the width actually in use; the default
        (``numpy``/``complex128``) is bit-identical to the historical
        hard-wired behaviour.
    ranks:
        The subset of decomposition ranks this engine hosts (``None`` =
        all of them, the serial reference).  With a subset, the supplied
        ``comm`` must be able to reach the other ranks' hosts.
    shared_arrays:
        Optional pre-allocated storage for per-rank tile arrays, keyed
        ``("volume", rank)`` / ``("accbuf", rank)`` — how the process
        runtime hands the engine views into shared-memory segments.  The
        engine initializes their contents; shapes and dtypes must match
        what it would have allocated itself.
    data_source:
        Where measured amplitudes come from (see :mod:`repro.data`):
        ``None``/``"memory"`` pins each rank's shard in RAM (the
        bit-identical historical behaviour), a path opens a chunked
        on-disk store read lazily per chunk, and a
        :class:`~repro.data.DiffractionStore` instance is used as-is
        (caller keeps ownership).  Stores never change numerics — only
        where the bytes live.
    batch_size:
        Probes evaluated per multislice sweep (``None`` resolves
        ``REPRO_BATCH_SIZE``, else 1).  Batching applies only to
        order-independent gradient accumulation (synchronous-mode
        ``ComputeGradients``); sequential-update ops (Alg. 1 local
        steps, halo-exchange local solves) always run per position
        because their semantics depend on the update interleaving.
        Batched execution is bit-identical to per-position execution
        (pinned by the ``tests/data`` parity suite).
    prefetch:
        Overlap the next chunk's I/O with compute (on-disk stores only).
    """

    def __init__(
        self,
        dataset: PtychoDataset,
        decomp: Decomposition,
        lr: float,
        comm: Optional[VirtualComm] = None,
        memory: Optional[MemoryTracker] = None,
        compensate_local: bool = False,
        initial_probe: Optional[np.ndarray] = None,
        refine_probe: bool = False,
        initial_volume: Optional[np.ndarray] = None,
        backend: Union[str, ArrayBackend, None] = None,
        dtype: Union[str, PrecisionPolicy, None] = None,
        ranks: Optional[Sequence[int]] = None,
        shared_arrays: Optional[Mapping[Tuple[str, int], np.ndarray]] = None,
        data_source: Union[str, DiffractionStore, None] = None,
        batch_size: Optional[int] = None,
        prefetch: bool = False,
        probe_modes: Optional[int] = None,
    ) -> None:
        self.dataset = dataset
        self.decomp = decomp
        self.lr = float(lr)
        self.batch_size = resolve_batch_size(batch_size)
        self._planner = BatchPlanner(self.batch_size)
        # open_store geometry-checks every source (paths, instances)
        # against the dataset.
        self.store, self._owns_store = open_store(
            data_source, dataset=dataset, prefetch=prefetch
        )
        #: In-memory stores pin each rank's shard (the reference
        #: behaviour and its byte accounting); out-of-core stores read
        #: through their bounded chunk cache instead.
        self._pin_measurements = isinstance(self.store, InMemoryStore)
        if ranks is None:
            self.hosted_ranks: Tuple[int, ...] = tuple(
                range(decomp.n_ranks)
            )
        else:
            self.hosted_ranks = tuple(sorted(set(int(r) for r in ranks)))
            for r in self.hosted_ranks:
                if not (0 <= r < decomp.n_ranks):
                    raise ValueError(
                        f"hosted rank {r} out of range "
                        f"[0,{decomp.n_ranks})"
                    )
            if not self.hosted_ranks:
                raise ValueError("ranks must name at least one rank")
        self._hosted_set = frozenset(self.hosted_ranks)
        self._hosts_all = len(self.hosted_ranks) == decomp.n_ranks
        self._shared = dict(shared_arrays) if shared_arrays else {}
        self.comm = comm if comm is not None else VirtualComm(decomp.n_ranks)
        self.memory = memory if memory is not None else MemoryTracker(decomp.n_ranks)
        self.compensate_local = compensate_local
        self.refine_probe = refine_probe
        if probe_modes is None:
            self.probe_modes = 1
        else:
            self.probe_modes = int(probe_modes)
            if self.probe_modes < 1:
                raise ValueError("probe_modes must be a positive integer")
        self.backend = resolve_backend(backend)
        self.precision = resolve_precision(dtype)
        self._cdtype = self.precision.complex_dtype
        self.model: MultisliceModel = dataset.multislice_model(
            backend=self.backend, dtype=self.precision
        )
        scalar_shape = dataset.probe.array.shape
        if self.probe_modes > 1:
            stack_shape = (self.probe_modes,) + scalar_shape
            if initial_probe is None:
                # Deterministic expansion of the dataset probe.
                self.probe = np.asarray(
                    make_mode_stack(dataset.probe.array, self.probe_modes),
                    dtype=self._cdtype,
                )
            elif initial_probe.shape == stack_shape:
                self.probe = np.asarray(initial_probe, dtype=self._cdtype)
            elif initial_probe.shape == scalar_shape:
                # Warm-starting a mixed-state run from a scalar probe
                # (e.g. a single-mode archive) expands it the same
                # deterministic way the cold start does.
                self.probe = np.asarray(
                    make_mode_stack(initial_probe, self.probe_modes),
                    dtype=self._cdtype,
                )
            else:
                raise ValueError(
                    f"initial probe shape {initial_probe.shape} != "
                    f"{stack_shape} (or scalar {scalar_shape})"
                )
        else:
            if initial_probe is not None:
                arr = np.asarray(initial_probe)
                if arr.ndim == 3 and arr.shape == (1,) + scalar_shape:
                    # A single-mode stack is the scalar probe: squeeze so
                    # the M=1 path stays bit-identical to the historical
                    # scalar representation everywhere downstream.
                    arr = arr[0]
                if arr.shape != scalar_shape:
                    raise ValueError(
                        f"initial probe shape {initial_probe.shape} != "
                        f"{scalar_shape}"
                    )
                self.probe = np.asarray(arr, dtype=self._cdtype)
            else:
                self.probe = np.asarray(
                    dataset.probe.array, dtype=self._cdtype
                )
        self.n_slices = dataset.n_slices
        if initial_volume is not None:
            expected = (self.n_slices, *dataset.object_shape)
            if initial_volume.shape != expected:
                raise ValueError(
                    f"initial volume shape {initial_volume.shape} != {expected}"
                )
        self._initial_volume = initial_volume
        self.states: List[RankState] = [
            self._init_rank(decomp.tiles[r]) for r in self.hosted_ranks
        ]
        self._state_by_rank: Dict[int, RankState] = {
            s.rank: s for s in self.states
        }
        # The ambient recorder at construction time: engines are built
        # inside the run's activation scope (serial executor, worker
        # main), so this binds the per-run/per-worker recorder once
        # instead of a thread-local lookup per op.
        self._obs = _obs.current()
        self._dispatch = {
            ComputeGradients: self._op_compute,
            LocalSolve: self._op_local_solve,
            BufferExchange: self._op_exchange,
            AllReduceGradient: self._op_allreduce,
            ApplyBufferUpdate: self._op_apply,
            ResetBuffer: self._op_reset,
            VoxelPaste: self._op_paste,
            Barrier: self._op_barrier,
            ProbeSync: self._op_probe_sync,
            ApplyProbeUpdate: self._op_probe_update,
            OrthogonalizeProbe: self._op_orthogonalize,
        }

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _tile_array(
        self, kind: str, rank: int, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """Storage for one per-rank tile array: a runtime-supplied
        (shared-memory) view when registered, a fresh allocation
        otherwise.  Contents are initialized by the caller."""
        arr = self._shared.get((kind, rank))
        if arr is None:
            return np.empty(shape, dtype=self._cdtype)
        if arr.shape != shape or arr.dtype != self._cdtype:
            raise ValueError(
                f"shared {kind!r} array for rank {rank} is "
                f"{arr.shape}/{arr.dtype}, engine needs "
                f"{shape}/{self._cdtype}"
            )
        return arr

    def _init_rank(self, tile) -> RankState:
        shape = (self.n_slices, tile.ext.height, tile.ext.width)
        volume = self._tile_array("volume", tile.rank, shape)
        if self._initial_volume is not None:
            sl = tile.ext.slices_in(self.decomp.bounds)
            volume[...] = self._initial_volume[:, sl[0], sl[1]]
        else:
            volume[...] = 1.0
        accbuf = self._tile_array("accbuf", tile.rank, shape)
        accbuf[...] = 0.0
        localbuf = (
            np.zeros(shape, dtype=self._cdtype) if self.compensate_local else None
        )
        # Distribute the measurement shard: each rank holds only the
        # probes it evaluates (own + extras for the halo-exchange
        # flavour) — the distribution that drives the memory tables.
        # The in-memory reference pins the shard as views (the
        # historical behaviour, bit for bit); out-of-core stores read
        # on demand and account their bounded chunk cache instead.
        if self._pin_measurements:
            measurements = {
                i: np.asarray(self.store.read(i)) for i in tile.all_probes
            }
            meas_bytes = sum(int(m.nbytes) for m in measurements.values())
        else:
            measurements = {}
            meas_bytes = int(self.store.shard_nbytes(tile.all_probes))
        state = RankState(
            rank=tile.rank,
            core=tile.core,
            ext=tile.ext,
            volume=volume,
            accbuf=accbuf,
            localbuf=localbuf,
        )
        state.measurements = measurements
        self.memory.allocate_array(tile.rank, "volume", volume)
        self.memory.allocate_array(tile.rank, "accbuf", accbuf)
        self.memory.allocate(tile.rank, "measurements", meas_bytes)
        self.memory.allocate_typed(
            tile.rank, "probe", self.probe.shape, self.probe.dtype
        )
        if localbuf is not None:
            self.memory.allocate_array(tile.rank, "localbuf", localbuf)
        if self.refine_probe:
            state.probe = self.probe.copy()
            state.probe_grad = np.zeros_like(self.probe)
            self.memory.allocate_array(
                tile.rank, "probe_grad", state.probe_grad
            )
        return state

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, schedule: Schedule) -> None:
        """Run this engine's share of ``schedule`` in order.

        Hosting all ranks (the default), that is every op; hosting a
        subset, ops whose ranks are all elsewhere are skipped — the
        remaining sequence is exactly this worker's merged SPMD program.
        """
        tel = self._obs
        if not tel.enabled:
            for op in schedule:
                if not self._hosts_all and self._hosted_set.isdisjoint(
                    op.ranks()
                ):
                    continue
                handler = self._dispatch.get(type(op))
                if handler is None:  # pragma: no cover - future op types
                    raise TypeError(
                        f"numeric engine cannot run {type(op).__name__}"
                    )
                handler(op)
            return
        for op in schedule:
            op_ranks = self._hosted_set.intersection(op.ranks())
            if not self._hosts_all and not op_ranks:
                continue
            handler = self._dispatch.get(type(op))
            if handler is None:  # pragma: no cover - future op types
                raise TypeError(
                    f"numeric engine cannot run {type(op).__name__}"
                )
            # Attribute the span to the lowest hosted rank the op
            # touches — point-to-point ops appear on one timeline, not
            # both, which keeps per-rank rows readable.
            with tel.span(_PHASE_OF.get(type(op), "engine.op"),
                          rank=min(op_ranks)):
                handler(op)

    def iteration_cost(self) -> float:
        """Sum of per-probe data-fit values recorded since the last call
        (the sweep-cost convergence signal of Fig. 9)."""
        total = sum(s.cost_accum for s in self.states)
        for s in self.states:
            s.cost_accum = 0.0
        return total

    def iteration_costs(self) -> Dict[int, float]:
        """Per-hosted-rank sweep costs since the last call (and reset) —
        what a worker ships home so the parent can reproduce the serial
        rank-ordered summation bit-for-bit."""
        costs = {s.rank: s.cost_accum for s in self.states}
        for s in self.states:
            s.cost_accum = 0.0
        return costs

    def volumes(self) -> List[np.ndarray]:
        """Hosted extended-tile volumes (live references), rank order."""
        return [s.volume for s in self.states]

    def current_probe(self) -> Optional[np.ndarray]:
        """A copy of rank 0's probe estimate — ``None`` unless probe
        refinement is on and rank 0 is hosted here.  (All ranks hold the
        same probe after each :class:`ProbeSync`; rank 0's copy is the
        canonical result, matching the serial reference.)"""
        state = self._state_by_rank.get(0)
        if not self.refine_probe or state is None or state.probe is None:
            return None
        return state.probe.copy()

    def _state(self, rank: int) -> RankState:
        return self._state_by_rank[rank]

    def close(self) -> None:
        """Release the measurement store (when this engine opened it;
        caller-supplied store instances stay open).  Idempotent."""
        if self._owns_store and self.store is not None:
            self.store.close()
            self._owns_store = False

    def __enter__(self) -> "NumericEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Measurement reads (store-backed)
    # ------------------------------------------------------------------
    def _measured(self, state: RankState, idx: int) -> np.ndarray:
        """One measured amplitude at compute precision — from the pinned
        shard when present, else straight from the store."""
        frame = state.measurements.get(idx)
        if frame is None:
            if self._obs.enabled:
                t0 = time.perf_counter()
                frame = self.store.read(idx)
                self._obs.add({
                    "store.read.calls": 1,
                    "store.read.seconds": time.perf_counter() - t0,
                })
            else:
                frame = self.store.read(idx)
        return np.asarray(frame, dtype=self.precision.real_dtype)

    def _measured_batch(
        self, state: RankState, indices: Sequence[int]
    ) -> np.ndarray:
        """``(B, det, det)`` measured stack at compute precision.  The
        per-item conversion is elementwise, so values are bit-identical
        to ``B`` separate :meth:`_measured` reads."""
        if state.measurements:
            stack = np.stack([state.measurements[i] for i in indices])
        elif self._obs.enabled:
            t0 = time.perf_counter()
            stack = self.store.read_batch(indices)
            self._obs.add({
                "store.read.calls": 1,
                "store.read.frames": len(indices),
                "store.read.seconds": time.perf_counter() - t0,
            })
        else:
            stack = self.store.read_batch(indices)
        return np.asarray(stack, dtype=self.precision.real_dtype)

    # ------------------------------------------------------------------
    # Patch I/O with vacuum padding (gradient truncation support)
    # ------------------------------------------------------------------
    def _read_patch(self, state: RankState, window: Rect) -> np.ndarray:
        inner = window.intersect(state.ext)
        if inner == window:
            sl = window.slices_in(state.ext)
            return state.volume[:, sl[0], sl[1]]
        patch = np.ones(
            (self.n_slices, window.height, window.width), dtype=self._cdtype
        )
        if inner is not None:
            src = inner.slices_in(state.ext)
            dst = inner.slices_in(window)
            patch[:, dst[0], dst[1]] = state.volume[:, src[0], src[1]]
        return patch

    def _scatter(
        self,
        target: np.ndarray,
        state: RankState,
        window: Rect,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        inner = window.intersect(state.ext)
        if inner is None:
            return
        dst = inner.slices_in(state.ext)
        src = inner.slices_in(window)
        if scale == 1.0:
            target[:, dst[0], dst[1]] += values[:, src[0], src[1]]
        else:
            target[:, dst[0], dst[1]] += scale * values[:, src[0], src[1]]

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    def _rank_probe(self, state: RankState) -> np.ndarray:
        return state.probe if state.probe is not None else self.probe

    def _op_compute(self, op: ComputeGradients) -> None:
        state = self._state(op.rank)
        state.neighbor_snapshot = None  # buffers change: invalidate
        probe = self._rank_probe(state)
        # Batched execution is legal only when evaluations within the op
        # are order-independent: local updates (Alg. 1 line 8) mutate
        # the volume between probe reads, so they must stay sequential.
        if self.batch_size > 1 and not op.local_update:
            self._compute_batched(state, probe, op.probe_indices)
            return
        for idx in op.probe_indices:
            window = self.dataset.scan.window_of(idx)
            patch = self._read_patch(state, window)
            result = self.model.cost_and_gradient(
                probe, patch, self._measured(state, idx),
                compute_probe_grad=self.refine_probe,
            )
            state.cost_accum += result.cost
            self._scatter(state.accbuf, state, window, result.object_grad)
            if state.localbuf is not None:
                self._scatter(
                    state.localbuf, state, window, result.object_grad
                )
            if op.local_update:
                self._scatter(
                    state.volume, state, window, result.object_grad, -self.lr
                )
            if self.refine_probe and result.probe_grad is not None:
                state.probe_grad += result.probe_grad

    def _compute_batched(
        self,
        state: RankState,
        probe: np.ndarray,
        probe_indices: Sequence[int],
    ) -> None:
        """Synchronous-mode gradient accumulation, ``batch_size`` probes
        per multislice sweep.

        All patches of a batch are read before any scatter (no volume
        writes happen in this mode), the batched model runs the stack
        through each FFT once, and scatters/cost/probe-gradient
        accumulation happen per item *in probe order* — the same
        floating-point accumulation sequence as the per-position path,
        keeping the two bit-identical.
        """
        for chunk in self._planner.iter_batches(probe_indices):
            windows = [self.dataset.scan.window_of(i) for i in chunk]
            patches = np.stack(
                [self._read_patch(state, w) for w in windows]
            )
            result = self.model.cost_and_gradient_batch(
                probe,
                patches,
                self._measured_batch(state, chunk),
                compute_probe_grad=self.refine_probe,
            )
            for b, window in enumerate(windows):
                state.cost_accum += float(result.costs[b])
                grad = result.object_grads[b]
                self._scatter(state.accbuf, state, window, grad)
                if state.localbuf is not None:
                    self._scatter(state.localbuf, state, window, grad)
                if self.refine_probe and result.probe_grads is not None:
                    if result.probe_grads.ndim == 4:
                        # Mixed-state stack: (M, B, w, w), item b is [:, b].
                        state.probe_grad += result.probe_grads[:, b]
                    else:
                        state.probe_grad += result.probe_grads[b]

    def _op_local_solve(self, op: LocalSolve) -> None:
        """Halo Voxel Exchange local phase: plain SGD on the extended tile
        over own + extra probes, no buffer involvement.  Always per
        position: each SGD step changes the volume the next probe reads,
        so batching would change the algorithm (see ``batch_size`` doc)."""
        state = self._state(op.rank)
        probe = self._rank_probe(state)
        for idx in op.probe_indices:
            window = self.dataset.scan.window_of(idx)
            patch = self._read_patch(state, window)
            result = self.model.cost_and_gradient(
                probe, patch, self._measured(state, idx)
            )
            state.cost_accum += result.cost
            self._scatter(
                state.volume, state, window, result.object_grad, -op.lr
            )

    def _op_exchange(self, op: BufferExchange) -> None:
        # Each side runs on the worker hosting it; a serial engine hosts
        # both and performs the send and the (immediately satisfied)
        # receive back-to-back, exactly as before.
        src_state = self._state_by_rank.get(op.src)
        dst_state = self._state_by_rank.get(op.dst)
        if op.tag == TAG_NEIGHBOR:
            # Direct-neighbour planner: pairwise symmetric adds must use
            # pre-exchange values (see passes.build_neighbor_exchanges).
            # Snapshot each hosted endpoint before its buffer is first
            # read *or* written within the exchange phase — the snapshot
            # depends only on rank-local state, so per-rank program order
            # reproduces the serial content exactly.
            if src_state is not None and src_state.neighbor_snapshot is None:
                src_state.neighbor_snapshot = src_state.accbuf.copy()
            if dst_state is not None and dst_state.neighbor_snapshot is None:
                dst_state.neighbor_snapshot = dst_state.accbuf.copy()
        if src_state is not None:
            source_buffer = (
                src_state.neighbor_snapshot
                if op.tag == TAG_NEIGHBOR
                else src_state.accbuf
            )
            src_sl = op.region.slices_in(src_state.ext)
            payload = source_buffer[:, src_sl[0], src_sl[1]]
            self.comm.send(payload, op.src, op.dst, tag=op.tag)
        if dst_state is not None:
            received = self.comm.recv(op.dst, op.src, tag=op.tag)
            dst_sl = op.region.slices_in(dst_state.ext)
            if op.mode == "add":
                dst_state.accbuf[:, dst_sl[0], dst_sl[1]] += received
            else:  # replace
                dst_state.accbuf[:, dst_sl[0], dst_sl[1]] = received

    def _op_allreduce(self, op: AllReduceGradient) -> None:
        bounds = self.decomp.bounds
        frame_shape = (self.n_slices, bounds.height, bounds.width)
        if getattr(self.comm, "is_distributed", False):
            # Cross-process path: the comm reduces over the registered
            # shared-memory buffers in the same rank order, and records
            # the ring-allreduce accounting event the parent replays.
            self.comm.accbuf_allreduce(frame_shape)
            return
        if not self._hosts_all:  # pragma: no cover - misconfiguration
            raise RuntimeError(
                "AllReduceGradient on a subset-hosting engine requires a "
                "distributed communicator"
            )
        total = np.zeros(frame_shape, dtype=self._cdtype)
        for state in self.states:
            sl = state.ext.slices_in(bounds)
            total[:, sl[0], sl[1]] += state.accbuf
        nbytes = int(total.nbytes)
        for state in self.states:
            sl = state.ext.slices_in(bounds)
            state.accbuf[...] = total[:, sl[0], sl[1]]
        # Ring all-reduce accounting: each rank moves 2*(P-1)/P of the
        # buffer. (The data itself was combined in-process above.)
        p = self.decomp.n_ranks
        if p > 1:
            per_rank = int(2 * (p - 1) / p * nbytes)
            self.comm.sent_bytes += per_rank * p
            self.comm.sent_messages += 2 * (p - 1) * p
            self.comm.per_rank_sent_bytes += per_rank
            self.comm.allreduce_calls += 1

    def _op_apply(self, op: ApplyBufferUpdate) -> None:
        state = self._state(op.rank)
        if state.localbuf is not None:
            state.volume -= op.lr * (state.accbuf - state.localbuf)
        else:
            state.volume -= op.lr * state.accbuf

    def _op_reset(self, op: ResetBuffer) -> None:
        state = self._state(op.rank)
        state.accbuf[...] = 0.0
        if state.localbuf is not None:
            state.localbuf[...] = 0.0
        state.neighbor_snapshot = None

    def _op_paste(self, op: VoxelPaste) -> None:
        src_state = self._state_by_rank.get(op.src)
        dst_state = self._state_by_rank.get(op.dst)
        if src_state is not None:
            src_sl = op.region.slices_in(src_state.ext)
            payload = src_state.volume[:, src_sl[0], src_sl[1]]
            self.comm.send(payload, op.src, op.dst, tag=op.tag)
        if dst_state is not None:
            received = self.comm.recv(op.dst, op.src, tag=op.tag)
            dst_sl = op.region.slices_in(dst_state.ext)
            dst_state.volume[:, dst_sl[0], dst_sl[1]] = received

    def _op_barrier(self, op: Barrier) -> None:
        # In-process comms sequentialize anyway (their barrier is a
        # no-op); across workers this is a real synchronization point.
        self.comm.barrier()

    def _op_probe_sync(self, op: ProbeSync) -> None:
        """All-reduce the per-rank probe gradients (probe refinement).

        The comm receives one contribution per *hosted* rank: the
        ``VirtualComm`` (hosting all) sums in-process, a distributed comm
        completes the sum across workers — both in ascending rank order.
        """
        if not self.refine_probe:
            raise RuntimeError("ProbeSync without refine_probe=True")
        contributions = [s.probe_grad for s in self.states]
        total = self.comm.allreduce_sum(contributions)
        for state in self.states:
            state.probe_grad[...] = total

    def _op_probe_update(self, op: ApplyProbeUpdate) -> None:
        state = self._state(op.rank)
        if state.probe is None or state.probe_grad is None:
            raise RuntimeError("ApplyProbeUpdate without refine_probe=True")
        state.probe -= op.lr * state.probe_grad
        state.probe_grad[...] = 0.0

    def _op_orthogonalize(self, op: OrthogonalizeProbe) -> None:
        state = self._state(op.rank)
        if state.probe is None:
            raise RuntimeError("OrthogonalizeProbe without refine_probe=True")
        state.probe[...] = orthogonalize_modes(state.probe)
