"""Structured per-iteration observation of a running reconstruction.

Every reconstructor (gradient decomposition, halo exchange, serial) emits
one :class:`IterationEvent` per iteration to each observer passed via its
``reconstruct(..., observers=[...])`` parameter.  An observer is any
callable taking a single :class:`IterationEvent`; stateful observers
(e.g. :class:`repro.api.events.CheckpointPolicy`) are plain objects with
``__call__``.

This replaces the historical bare ``callback(iteration, cost, engine)``
hook, whose third argument differed per reconstructor (numeric engine for
the distributed solvers, raw volume for the serial one) and which exposed
none of the traffic/memory counters.  The old ``callback=`` keyword still
works but raises :class:`DeprecationWarning`; migrate with::

    # before
    recon.reconstruct(dataset, callback=lambda it, cost, eng: ...)
    # after
    recon.reconstruct(dataset, observers=[lambda ev: ... ev.iteration,
                                          ev.cost, ev.snapshot() ...])

The event carries a lazy ``snapshot`` thunk so expensive state
materialization (stitching tiles into a full volume) only happens for
observers that ask for it.

This module lives in :mod:`repro.core` so the reconstructors can import it
without depending on the higher-level :mod:`repro.api` package; the public
API re-exports everything here as ``repro.api.IterationEvent`` etc.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reconstructor import ReconstructionResult

__all__ = [
    "IterationEvent",
    "IterationEmitter",
    "Observer",
    "dispatch",
    "warn_legacy_callback",
]


@dataclass(frozen=True)
class IterationEvent:
    """One iteration of a reconstruction, as seen by observers.

    Attributes
    ----------
    solver:
        Registry name of the emitting solver (``"gd"``, ``"hve"``,
        ``"serial"``, or a third-party registration).
    iteration:
        0-based iteration index just completed.
    n_iterations:
        Total iterations the run will execute.
    cost:
        Sweep cost of this iteration (what ends up in
        ``ReconstructionResult.history``).
    elapsed_s:
        Wall-clock seconds since the reconstruction started.
    messages / message_bytes:
        Cumulative point-to-point traffic measured so far.
    peak_memory_bytes:
        Mean per-rank peak allocation measured so far.
    snapshot:
        Zero-argument callable materializing the reconstruction state as
        a :class:`~repro.core.reconstructor.ReconstructionResult`
        (stitched volume + history), always describing the state *at the
        moment it is called* — call it during observation for the
        per-iteration state.  Lazy: only observers that need state
        (checkpointing, live imaging) pay the stitching cost.
    coverage:
        Fraction of advertised scan positions whose frames had arrived
        when this iteration's sweep was planned, in (0, 1].  ``None``
        for static runs — only the streaming driver stamps it (see
        :mod:`repro.api.streaming`).
    """

    solver: str
    iteration: int
    n_iterations: int
    cost: float
    elapsed_s: float
    messages: int
    message_bytes: int
    peak_memory_bytes: float
    snapshot: Callable[[], "ReconstructionResult"] = field(
        repr=False, compare=False
    )
    coverage: Optional[float] = None

    @property
    def is_last(self) -> bool:
        """True on the final iteration of the run."""
        return self.iteration == self.n_iterations - 1


#: An observer is any callable consuming an :class:`IterationEvent`.
Observer = Callable[[IterationEvent], None]


def dispatch(observers: Iterable[Observer], event: IterationEvent) -> None:
    """Deliver ``event`` to every observer, in order.

    Observer exceptions propagate — a failing checkpoint writer should
    abort the run loudly, not corrupt a multi-hour reconstruction
    silently.
    """
    for observer in observers:
        observer(event)


class IterationEmitter:
    """Per-run event factory shared by all reconstructors.

    Owns the wall-clock origin and the run-constant event fields so each
    reconstructor's loop only supplies what varies per iteration.  A
    no-op (including the ``snapshot`` thunk, which is never called) when
    the observer list is empty.
    """

    def __init__(
        self,
        solver: str,
        n_iterations: int,
        observers: Sequence[Observer],
    ) -> None:
        self.solver = solver
        self.n_iterations = n_iterations
        self.observers = tuple(observers)
        self._start = time.perf_counter()

    def emit(
        self,
        iteration: int,
        cost: float,
        *,
        messages: int,
        message_bytes: int,
        peak_memory_bytes: float,
        snapshot: Callable[[], "ReconstructionResult"],
    ) -> None:
        """Build this iteration's event and deliver it to all observers."""
        if not self.observers:
            return
        dispatch(
            self.observers,
            IterationEvent(
                solver=self.solver,
                iteration=iteration,
                n_iterations=self.n_iterations,
                cost=cost,
                elapsed_s=time.perf_counter() - self._start,
                messages=messages,
                message_bytes=message_bytes,
                peak_memory_bytes=peak_memory_bytes,
                snapshot=snapshot,
            ),
        )


def warn_legacy_callback(owner: str) -> None:
    """Emit the deprecation warning for the pre-observer ``callback=``
    keyword (see module docstring for the migration recipe)."""
    warnings.warn(
        f"{owner}.reconstruct(callback=...) is deprecated; pass "
        "observers=[...] instead — each observer receives a structured "
        "IterationEvent (see repro.core.observers)",
        DeprecationWarning,
        stacklevel=3,
    )
