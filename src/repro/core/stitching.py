"""Final stitching: abandon halos, concatenate core tiles (Alg. 1 line 20)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.decomposition import Decomposition

__all__ = ["stitch"]


def stitch(
    decomp: Decomposition, volumes: Sequence[np.ndarray], n_slices: int
) -> np.ndarray:
    """Assemble the final reconstruction from per-rank extended tiles.

    Each rank contributes exactly its **core** region; halos are discarded.
    Because core tiles partition the image, every output voxel is written
    exactly once.

    Parameters
    ----------
    decomp:
        The decomposition the volumes were produced under.
    volumes:
        Per-rank arrays of shape ``(n_slices, ext.height, ext.width)``.
    n_slices:
        Multislice depth (validated against the volumes).
    """
    if len(volumes) != decomp.n_ranks:
        raise ValueError(
            f"got {len(volumes)} volumes for {decomp.n_ranks} ranks"
        )
    dtypes = sorted({str(v.dtype) for v in volumes})
    if len(dtypes) > 1:
        # Taking volumes[0].dtype would silently downcast (or upcast)
        # every other rank's tile — reachable since per-rank precision
        # policies exist, and never what the caller meant.
        raise ValueError(
            f"per-rank volumes carry mixed dtypes {dtypes}; all ranks "
            "must share one precision — reconstruct every tile under "
            "the same PrecisionPolicy before stitching"
        )
    bounds = decomp.bounds
    out = np.zeros(
        (n_slices, bounds.height, bounds.width), dtype=volumes[0].dtype
    )
    for tile, vol in zip(decomp.tiles, volumes):
        expected = (n_slices, tile.ext.height, tile.ext.width)
        if vol.shape != expected:
            raise ValueError(
                f"rank {tile.rank} volume shape {vol.shape} != {expected}"
            )
        src = tile.core.slices_in(tile.ext)
        dst = tile.core.slices_in(bounds)
        out[:, dst[0], dst[1]] = vol[:, src[0], src[1]]
    return out
