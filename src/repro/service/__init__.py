"""repro.service — reconstruction-as-a-service: async jobs over the
library's solver/backend/executor registries.

The pieces (one module each):

* :class:`ReconstructionService` / :class:`JobHandle` — the job system:
  a bounded worker pool draining a queue, with submit / status / cancel
  / pause / resume / result / list lifecycle and durable on-disk state
  (a restarted service over the same root picks up where it left off).
* :class:`JobQueue` — deterministic priority scheduling with aging-based
  FIFO fairness (no starvation).
* :class:`ProgressStream` / :class:`ProgressUpdate` /
  :func:`read_progress` — live per-iteration cost/rate/ETA, pollable
  in-process and mirrored to JSON for cross-process clients.
* :mod:`repro.service.jobs` — the job-directory format (records,
  datasets, checkpoints, control flags) and the leg-accounting that
  keeps cancel→resume jobs fingerprint-identical to uninterrupted runs.

Minimal use::

    from repro.api import ReconstructionConfig
    from repro.service import ReconstructionService

    with ReconstructionService("jobs_root", workers=2) as svc:
        handle = svc.submit("dataset.npz", ReconstructionConfig(
            solver="gd",
            solver_params={"n_ranks": 4, "iterations": 20, "lr": 0.02,
                           "mode": "synchronous"},
        ))
        handle.wait()
        archive = handle.result()
"""

from repro.service.jobs import (
    JobError,
    JobRecord,
    JobState,
    create_job,
    list_job_ids,
    load_record,
    prepare_resume,
    request_control,
)
from repro.service.progress import ProgressStream, ProgressUpdate, read_progress
from repro.service.queue import JobQueue, QueueClosedError
from repro.service.service import JobHandle, ReconstructionService

__all__ = [
    "ReconstructionService",
    "JobHandle",
    "JobQueue",
    "QueueClosedError",
    "JobError",
    "JobRecord",
    "JobState",
    "create_job",
    "list_job_ids",
    "load_record",
    "prepare_resume",
    "request_control",
    "ProgressStream",
    "ProgressUpdate",
    "read_progress",
]
