"""Priority + FIFO-fairness job queue for the reconstruction service.

The scheduling rule is deliberately simple and fully deterministic:

* the dequeued entry is the one with the highest **effective priority**,
  ties broken by submission order (FIFO);
* effective priority = submitted priority + ``passed_over // age_after``
  — every time an entry that arrived *earlier* than the winner is
  skipped, its ``passed_over`` count rises, so after ``age_after`` skips
  it gains one priority level.  A low-priority job therefore catches up
  with any finite stream of high-priority arrivals: no starvation,
  without timestamps (which would make scheduling order depend on
  wall-clock races between workers).

The queue stores opaque items (the service enqueues job ids); it knows
nothing about job records or states.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["JobQueue", "QueueClosedError"]


class QueueClosedError(RuntimeError):
    """put() after close() — the service is shutting down."""


@dataclass
class _Entry:
    priority: int
    seq: int
    item: Any
    #: Times this entry was skipped in favour of a later arrival.
    passed_over: int = field(default=0)
    #: perf_counter at enqueue — telemetry only, never scheduling
    #: (ordering stays timestamp-free by design, see module docstring).
    enqueued_at: float = field(default=0.0)

    def effective_priority(self, age_after: int) -> int:
        return self.priority + self.passed_over // age_after


class JobQueue:
    """Thread-safe priority queue with aging-based FIFO fairness.

    Parameters
    ----------
    age_after:
        Number of times an entry may be passed over before it gains one
        effective-priority level (smaller = fairer, larger = stricter
        priority ordering).
    """

    def __init__(self, age_after: int = 4) -> None:
        if age_after <= 0:
            raise ValueError("age_after must be positive")
        self.age_after = age_after
        self._cond = threading.Condition()
        self._entries: List[_Entry] = []
        self._seq = 0
        self._closed = False
        self._unfinished = 0
        # Lifetime wait-vs-run telemetry (see stats()).
        self._puts = 0
        self._gets = 0
        self._queued_seconds = 0.0

    def put(self, item: Any, priority: int = 0) -> None:
        """Enqueue ``item`` at ``priority`` (higher dequeues first)."""
        with self._cond:
            if self._closed:
                raise QueueClosedError("queue is closed")
            self._entries.append(
                _Entry(
                    int(priority), self._seq, item,
                    enqueued_at=time.perf_counter(),
                )
            )
            self._seq += 1
            self._puts += 1
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the best entry, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or once the queue is closed *and*
        empty (a closed queue still drains — jobs accepted before
        shutdown run to completion).

        A returned item counts as :attr:`in_flight` until the caller
        acknowledges it with :meth:`task_done` — so an observer summing
        ``len(queue) + queue.in_flight`` never sees a dequeued-but-not-
        yet-tracked item vanish.
        """
        with self._cond:
            while not self._entries:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            best = self._entries[0]
            for entry in self._entries[1:]:
                if entry.effective_priority(self.age_after) > \
                        best.effective_priority(self.age_after):
                    best = entry
            self._entries.remove(best)
            # Everything that arrived before the winner was just skipped
            # — age it so a steady high-priority stream cannot starve it.
            for entry in self._entries:
                if entry.seq < best.seq:
                    entry.passed_over += 1
            self._unfinished += 1
            self._gets += 1
            self._queued_seconds += time.perf_counter() - best.enqueued_at
            return best.item

    def task_done(self) -> None:
        """Acknowledge one item returned by :meth:`get` (see there)."""
        with self._cond:
            if self._unfinished <= 0:
                raise ValueError(
                    "task_done() called more times than get() returned items"
                )
            self._unfinished -= 1
            self._cond.notify_all()

    @property
    def in_flight(self) -> int:
        """Items handed out by :meth:`get` and not yet acknowledged."""
        with self._cond:
            return self._unfinished

    def close(self) -> None:
        """Refuse new entries and wake blocked getters; idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Lifetime wait-vs-run telemetry: items enqueued/dequeued and
        total seconds items sat queued before a worker picked them up
        (the queue-side half of the service's wait-vs-run split)."""
        with self._cond:
            return {
                "puts": self._puts,
                "gets": self._gets,
                "queued_seconds": self._queued_seconds,
            }

    def snapshot(self) -> List[Any]:
        """Queued items in current dequeue order (for status listings)."""
        with self._cond:
            entries = sorted(
                self._entries,
                key=lambda e: (-e.effective_priority(self.age_after), e.seq),
            )
            return [e.item for e in entries]
