"""The long-lived reconstruction service.

:class:`ReconstructionService` turns ``repro.reconstruct()`` — a
blocking library call — into an asynchronous job system:

* **submit** a :class:`~repro.api.config.ReconstructionConfig` + a
  data-source (a dataset archive path or an in-memory dataset) and get
  a :class:`JobHandle` back immediately;
* a bounded pool of worker threads drains a priority + FIFO-fairness
  :class:`~repro.service.queue.JobQueue`; each job runs through the
  ordinary ``repro.reconstruct`` entry point, so it resolves solvers,
  backends, executors and stores through the same registries as every
  other caller (and opens its *own* store handle — nothing is shared
  between concurrent jobs except the refcounted backend instance);
* **cancel/pause** stop a running job at the next iteration boundary,
  archiving an interrupt checkpoint first, so **resume** continues from
  exactly where the job stopped — for the exactly-resumable solvers
  (gd ``mode="synchronous"``, hve, serial) the final archive is
  fingerprint-identical to an uninterrupted run;
* a per-job :class:`~repro.service.progress.ProgressStream` serves live
  cost/rate/ETA to pollers and subscribers, mirrored to the job
  directory for cross-process clients.

All durable state lives in the job directory (see
:mod:`repro.service.jobs`), so a service restarted over the same root
recovers queued jobs and auto-requeues jobs a crashed predecessor left
``RUNNING`` — from their newest checkpoint, not from scratch.

Concurrency model: worker *threads*, not processes.  Numpy/scipy FFTs
release the GIL, the ``process`` executor moves rank programs out of
process anyway, and threads let one refcounted backend instance (plan
caches!) serve every concurrent job — the lifecycle the backend
registry's ``acquire_backend``/``release_backend`` pair exists for.
"""

from __future__ import annotations

import logging
import os
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

try:  # POSIX only; on other platforms the root lock degrades to advisory.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.api.config import ReconstructionConfig
from repro.api.events import CheckpointPolicy
from repro.api.reconstruct import reconstruct
from repro.backend.base import (
    acquire_backend,
    default_dtype_name,
    release_backend,
    resolve_backend,
)
from repro.core.observers import IterationEvent
from repro.core.reconstructor import ReconstructionResult
from repro.io.storage import ResultArchive, load_result, save_result
from repro.obs import telemetry as _obs
from repro.service import jobs as jobstore
from repro.service.jobs import JobError, JobRecord, JobState
from repro.service.progress import ProgressStream
from repro.service.queue import JobQueue
from repro.utils.atomicio import atomic_write_json

__all__ = ["ReconstructionService", "JobHandle"]

logger = logging.getLogger(__name__)


class _LegInterrupted(Exception):
    """Raised by the controller observer at an iteration boundary after
    archiving the interrupt checkpoint; unwinds the solver's run loop
    (which closes its session on the way out)."""

    def __init__(self, action: str, checkpoint: Path) -> None:
        super().__init__(action)
        self.action = action
        self.checkpoint = checkpoint


class _LegController:
    """Observer that stops a leg when a cancel/pause request lands.

    Requests arrive two ways: in-process (``service.cancel/pause``sets a
    flag under the service lock) and cross-process (``control.json`` in
    the job directory, written by the ``jobs`` CLI).  Both are checked
    at every iteration boundary; when one fires — immediately, or once
    ``at_iteration`` global iterations are banked — the controller
    archives the current state and raises :class:`_LegInterrupted`.
    """

    def __init__(
        self,
        service: "ReconstructionService",
        record: JobRecord,
        base_config: ReconstructionConfig,
        offset: int,
    ) -> None:
        self.service = service
        self.record = record
        self.base_config = base_config
        self.offset = offset

    def __call__(self, event: IterationEvent) -> None:
        request = self.service._pending_request(self.record.job_id)
        if request is None:
            request = jobstore.read_control(
                self.service.root, self.record.job_id
            )
        if request is None:
            return
        done = self.offset + event.iteration + 1
        at = request.get("at_iteration")
        if at is not None and done < at:
            return
        if done >= self.record.iterations_total:
            # The run is finishing this very iteration; completing wins.
            return
        directory = jobstore.checkpoints_dir(
            self.service.root, self.record.job_id
        )
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"interrupt_iter{event.iteration + 1:04d}.npz"
        save_result(path, event.snapshot(), config=self.base_config)
        raise _LegInterrupted(request.get("action", "cancel"), path)


class JobHandle:
    """Client-side view of one submitted job (thin: id + service ref)."""

    def __init__(self, service: "ReconstructionService", job_id: str) -> None:
        self.service = service
        self.job_id = job_id

    @property
    def state(self) -> str:
        return self.service.status(self.job_id)

    def record(self) -> JobRecord:
        return self.service.record(self.job_id)

    def progress(self) -> Optional[ProgressStream]:
        return self.service.progress(self.job_id)

    def cancel(self, at_iteration: Optional[int] = None) -> None:
        self.service.cancel(self.job_id, at_iteration=at_iteration)

    def pause(self, at_iteration: Optional[int] = None) -> None:
        self.service.pause(self.job_id, at_iteration=at_iteration)

    def resume(self) -> None:
        self.service.resume(self.job_id)

    def wait(self, timeout: Optional[float] = None) -> str:
        return self.service.wait(self.job_id, timeout=timeout)

    def result(self) -> ResultArchive:
        return self.service.result(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle({self.job_id!r}, state={self.state!r})"


class ReconstructionService:
    """Async reconstruction jobs over a bounded worker pool (see module
    docstring).

    Parameters
    ----------
    root:
        The job directory root; created if missing.  Everything durable
        lives here, and a later service over the same root recovers it.
    workers:
        Worker-thread pool width (concurrent jobs).
    checkpoint_every:
        Periodic checkpoint cadence in iterations (``None`` = interrupt
        checkpoints only).  Periodic checkpoints are what crash
        recovery resumes from.
    age_after:
        Queue fairness knob (see :class:`~repro.service.queue.JobQueue`).
    poll_interval:
        Worker dequeue timeout — the latency bound on noticing
        shutdown; requests themselves are event-driven.
    progress_cap:
        How many *settled* jobs keep their in-memory
        :class:`ProgressStream` (oldest evicted first).  Bounds a
        long-lived service's memory; ``progress.json`` in the job
        directory remains the durable record for evicted jobs.

    The service takes an exclusive ``flock`` on ``<root>/serve.lock``
    for its lifetime: exactly one service may drive a root at a time
    (a second one would re-queue — and double-run — the first one's
    live RUNNING jobs at its recovery scan).  Construction raises
    :class:`JobError` while another service holds the root.
    """

    def __init__(
        self,
        root: Union[str, Path],
        workers: int = 2,
        checkpoint_every: Optional[int] = None,
        age_after: int = 4,
        poll_interval: float = 0.1,
        progress_cap: int = 64,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if progress_cap < 0:
            raise ValueError("progress_cap must be >= 0")
        self.root = Path(root)
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.poll_interval = poll_interval
        self.progress_cap = progress_cap
        (self.root / "jobs").mkdir(parents=True, exist_ok=True)
        self._lock_file = None
        self._acquire_root_lock()

        self._queue = JobQueue(age_after=age_after)
        self._cond = threading.Condition()
        self._requests: Dict[str, Dict] = {}
        self._progress: Dict[str, ProgressStream] = {}
        self._settled_order: Deque[str] = deque()
        self._running: set = set()
        self._stats = {
            "submitted": 0, "recovered": 0, "done": 0,
            "failed": 0, "cancelled": 0, "paused": 0,
        }
        self._closed = False
        self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-service-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        logger.info(
            "service up: root=%s workers=%d checkpoint_every=%s",
            self.root, workers, checkpoint_every,
        )

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: Union[str, Path, "object"],
        config: Union[ReconstructionConfig, Dict],
        priority: int = 0,
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue a reconstruction; returns immediately with a handle."""
        if self._closed:
            raise JobError("service is closed")
        record = jobstore.create_job(
            self.root, dataset, config, priority=priority, job_id=job_id
        )
        with self._cond:
            self._stats["submitted"] += 1
        self._queue.put(record.job_id, priority=record.priority)
        logger.info(
            "job %s: submitted (solver=%s, priority=%d)",
            record.job_id, record.config.get("solver"), record.priority,
        )
        return JobHandle(self, record.job_id)

    def status(self, job_id: str) -> str:
        """The job's current state string."""
        return self.record(job_id).state

    def record(self, job_id: str) -> JobRecord:
        return jobstore.load_record(self.root, job_id)

    def list_jobs(self) -> List[JobRecord]:
        """Every job under the root, submission-ordered."""
        return [
            jobstore.load_record(self.root, jid)
            for jid in jobstore.list_job_ids(self.root)
        ]

    def progress(self, job_id: str) -> Optional[ProgressStream]:
        """The job's live progress stream (None before it first runs)."""
        with self._cond:
            return self._progress.get(job_id)

    def cancel(self, job_id: str, at_iteration: Optional[int] = None) -> None:
        """Stop the job at the next iteration boundary (or once
        ``at_iteration`` global iterations are banked), archiving a
        resumable checkpoint.  A job still in the queue is cancelled
        without running."""
        self._request(job_id, "cancel", at_iteration)

    def pause(self, job_id: str, at_iteration: Optional[int] = None) -> None:
        """Like cancel, but lands in ``PAUSED`` — the state that says
        "to be continued" rather than "abandoned"."""
        self._request(job_id, "pause", at_iteration)

    def _request(
        self, job_id: str, action: str, at_iteration: Optional[int]
    ) -> None:
        record = self.record(job_id)  # existence check
        if record.state in (JobState.DONE, JobState.FAILED):
            raise JobError(
                f"job {job_id!r} is already {record.state}; nothing to "
                f"{action}"
            )
        jobstore.request_control(self.root, job_id, action, at_iteration)
        with self._cond:
            self._requests[job_id] = {
                "action": action, "at_iteration": at_iteration,
            }
        logger.info(
            "job %s: %s requested (at_iteration=%s)",
            job_id, action, at_iteration,
        )

    def resume(self, job_id: str) -> JobHandle:
        """Requeue a ``PAUSED``/``CANCELLED``/``FAILED`` job from its
        consolidated checkpoint."""
        record = jobstore.prepare_resume(self.root, job_id)
        with self._cond:
            self._requests.pop(job_id, None)
        self._queue.put(record.job_id, priority=record.priority)
        logger.info(
            "job %s: resumed from iteration %d (leg %d)",
            job_id, record.iterations_done, record.resumes,
        )
        return JobHandle(self, job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> str:
        """Block until the job settles (DONE/FAILED/CANCELLED/PAUSED);
        returns the settled state (or the current one on timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                # The record read must stay under the condition: workers
                # notify under it, so reading outside would let a settle
                # fire between the state check and the wait (a missed
                # wake-up that hangs a timeout-less waiter forever).
                state = jobstore.load_record(  # repro-lint: allow[lock-blocking]
                    self.root, job_id
                ).state
                if state in JobState.SETTLED:
                    return state
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return state
                self._cond.wait(timeout=remaining)

    def result(self, job_id: str) -> ResultArchive:
        """The finished job's merged archive (raises unless DONE)."""
        record = self.record(job_id)
        if record.state != JobState.DONE:
            detail = f": {record.error}" if record.error else ""
            raise JobError(
                f"job {job_id!r} is {record.state}, not DONE{detail}"
            )
        return load_result(jobstore.job_dir(self.root, job_id) / "result.npz")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; True on success.

        The check reads the three stages in the order a job moves
        through them (queued → in-flight → running), so a job can
        never slip between two reads unobserved."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._queue) or self._queue.in_flight or self._running:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs, let running ones finish, join workers."""
        self._closed = True
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._release_root_lock()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters (submitted/recovered/done/failed/...)."""
        with self._cond:
            return dict(self._stats)

    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Root ownership
    # ------------------------------------------------------------------
    def _acquire_root_lock(self) -> None:
        """Take the exclusive ``serve.lock`` on the root (see class
        docstring); :class:`JobError` if another live service holds it.

        An OS-level ``flock`` is exactly the right primitive here: it
        is released automatically when the holder dies, so a crashed
        service never wedges its root, and the successor that takes the
        lock is by construction the only process whose recovery scan
        may re-queue RUNNING jobs."""
        # The lock file IS the synchronization primitive (flock target),
        # not durable data — tmp+rename would defeat it.
        self._lock_file = open(  # repro-lint: allow[atomic-write]
            self.root / "serve.lock", "a+"
        )
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._lock_file.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._lock_file.seek(0)
            holder = self._lock_file.read().strip() or "unknown pid"
            self._lock_file.close()
            self._lock_file = None
            raise JobError(
                f"another service ({holder}) is already serving "
                f"{self.root}; one service per job root — point this "
                "one at a different --root or stop the other first"
            ) from None
        self._lock_file.truncate(0)
        self._lock_file.seek(0)
        self._lock_file.write(f"pid {os.getpid()}\n")
        self._lock_file.flush()

    def _release_root_lock(self) -> None:
        if self._lock_file is None:
            return
        if fcntl is not None:
            fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_UN)
        self._lock_file.close()
        self._lock_file = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Scan the root: requeue QUEUED jobs (submitted while no server
        ran) and jobs a crashed predecessor left RUNNING (consolidating
        their newest checkpoint so they continue, not restart)."""
        for job_id in jobstore.list_job_ids(self.root):
            record = jobstore.load_record(self.root, job_id)
            if record.state == JobState.QUEUED:
                self._queue.put(job_id, priority=record.priority)
                with self._cond:
                    self._stats["recovered"] += 1
                logger.info("job %s: recovered from queue", job_id)
            elif record.state == JobState.RUNNING:
                stale = jobstore.latest_checkpoint(self.root, job_id)
                if stale is not None:
                    jobstore.consolidate_from_archive(
                        self.root, record, stale
                    )
                record.state = JobState.QUEUED
                record.resumes += 1
                jobstore.save_record(self.root, record)
                self._queue.put(job_id, priority=record.priority)
                with self._cond:
                    self._stats["recovered"] += 1
                logger.info(
                    "job %s: recovered RUNNING job from crashed "
                    "predecessor (checkpoint=%s)",
                    job_id, stale.name if stale is not None else None,
                )

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _pending_request(self, job_id: str) -> Optional[Dict]:
        with self._cond:
            return self._requests.get(job_id)

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get(timeout=self.poll_interval)
            if job_id is None:
                if self._closed and not len(self._queue):
                    return
                continue
            # The queue counts the job in-flight until it lands in
            # _running, so drain() never sees it in neither place.
            with self._cond:
                self._running.add(job_id)
            self._queue.task_done()
            try:
                self._run_job(job_id)
            except Exception:
                # _run_job settles every failure itself; this backstop
                # only fires on bugs in the settling path — and a worker
                # thread must never die, so settle FAILED best-effort
                # and keep serving.
                try:
                    record = jobstore.load_record(self.root, job_id)
                    record.error = traceback.format_exc(limit=8)
                    self._settle(record, JobState.FAILED, "failed")
                except Exception:  # pragma: no cover - root gone
                    pass
            finally:
                with self._cond:
                    self._running.discard(job_id)
                    self._cond.notify_all()

    def _settle(
        self,
        record: JobRecord,
        state: str,
        counter: str,
        tel: Optional["_obs.Telemetry"] = None,
    ) -> None:
        record.state = state
        # Record-keeping only (humans + the wait-vs-run telemetry
        # split); queue ordering stays monotonic/wall-clock-free — see
        # repro.service.queue.
        record.finished_at = time.time()  # repro-lint: allow[wall-clock]
        jobstore.save_record(self.root, record)
        # Before waiters are notified, so a client that saw the settled
        # state always finds telemetry.json in the job directory.
        self._write_job_telemetry(record, tel)
        if state == JobState.FAILED:
            logger.warning(
                "job %s: settled FAILED: %s",
                record.job_id,
                (record.error or "").strip().splitlines()[-1]
                if record.error else "unknown error",
            )
        else:
            logger.info("job %s: settled %s", record.job_id, state)
        with self._cond:
            self._requests.pop(record.job_id, None)
            self._stats[counter] += 1
            # Bound in-memory progress: remember the settle order and
            # evict the oldest settled jobs' streams past the cap (the
            # mirrored progress.json stays as the durable record).
            if record.job_id in self._progress:
                if record.job_id not in self._settled_order:
                    self._settled_order.append(record.job_id)
                while len(self._settled_order) > self.progress_cap:
                    evicted = self._settled_order.popleft()
                    self._progress.pop(evicted, None)
            self._cond.notify_all()

    def _run_job(self, job_id: str) -> None:
        from repro.io.storage import load_dataset

        record = jobstore.load_record(self.root, job_id)
        if record.state != JobState.QUEUED:
            return  # raced with an external state change; nothing to run
        request = self._pending_request(job_id) or jobstore.read_control(
            self.root, job_id
        )
        if (
            request is not None
            and request.get("action") == "cancel"
            and request.get("at_iteration") is None
        ):
            # Cancelled while still queued: settle without running.
            jobstore.clear_control(self.root, job_id)
            self._settle(record, JobState.CANCELLED, "cancelled")
            return

        record.state = JobState.RUNNING
        # Record-keeping only; see the monotonic-only rule note on
        # finished_at in _settle.
        record.started_at = time.time()  # repro-lint: allow[wall-clock]
        record.error = None
        jobstore.save_record(self.root, record)

        # Everything past the RUNNING write sits inside this try: a job
        # whose config references an unknown backend (possible — jobs
        # are submitted cross-process against the raw registry names)
        # must settle FAILED, never escape and kill the worker thread
        # while the record stays RUNNING on disk.
        directory = jobstore.job_dir(self.root, job_id)
        stream: Optional[ProgressStream] = None
        tel: Optional[_obs.Telemetry] = None
        try:
            base_config = record.reconstruction_config()
            # Pin ambient (None) backend/dtype to the concrete names
            # this leg actually runs under, durably.  Checkpoints and
            # the result archive then carry the *resolved* compute, so
            # a resume after the process default changed trips the
            # fingerprint check (ResumeMismatchError) instead of
            # silently continuing under different numerics — and resume
            # legs of this job keep running on what the first leg ran on.
            backend_name = (
                base_config.backend
                if base_config.backend is not None
                else resolve_backend(None).name
            )
            dtype_name = (
                base_config.dtype
                if base_config.dtype is not None
                else default_dtype_name()
            )
            if (base_config.backend, base_config.dtype) != (
                backend_name, dtype_name
            ):
                base_config = base_config.with_compute(
                    backend=backend_name, dtype=dtype_name
                )
                record.config = base_config.to_dict()
                jobstore.save_record(self.root, record)
            offset = record.iterations_done
            remaining = record.iterations_total - offset
            logger.info(
                "job %s: leg starting on %s/%s (iterations %d..%d of %d)",
                job_id, backend_name, dtype_name,
                offset + 1, record.iterations_total,
                record.iterations_total,
            )

            # One recorder per leg, activated for the whole reconstruct
            # call, so engine/store/runtime spans — including per-rank
            # spans shipped back from worker processes — land on this
            # job's timeline and nobody else's (the recorder is
            # thread-local; concurrent jobs on other worker threads
            # each get their own).
            if _obs.resolve_telemetry(base_config.telemetry):
                tel = _obs.Telemetry()
                # The queue-side half of wait-vs-run: how long the job
                # sat queued before this leg picked it up.
                tel.add({
                    "queue.wait.seconds": max(
                        record.started_at - record.submitted_at, 0.0
                    ),
                })

            stream = ProgressStream(
                job_id,
                record.iterations_total,
                offset=offset,
                mirror_path=directory / "progress.json",
                backend=backend_name,
                dtype=dtype_name,
            )
            with self._cond:
                self._progress[job_id] = stream
                if job_id in self._settled_order:  # resumed job: re-live
                    self._settled_order.remove(job_id)

            # The backend instance is shared across concurrent jobs;
            # hold a lease for the leg so another job settling cannot
            # close it mid-transform (the refcount in
            # repro.backend.base).
            acquire_backend(backend_name)
            try:
                leg_config = base_config.with_solver_params(
                    iterations=remaining
                )
                if record.seed is not None:
                    leg_config = leg_config.with_run_params(
                        resume=str(directory / record.seed)
                    )
                if base_config.scan_source is not None and offset > 0:
                    # A resumed streamed leg fast-forwards the feeder's
                    # sweep clock so the frame journal the interrupted
                    # leg had accumulated is rebuilt deterministically.
                    leg_config = leg_config.with_run_params(
                        stream_offset=offset
                    )
                observers = [stream]
                if self.checkpoint_every is not None:
                    observers.append(
                        CheckpointPolicy(
                            jobstore.checkpoints_dir(self.root, job_id),
                            every=self.checkpoint_every,
                            config=base_config,
                            keep_last=2,
                        )
                    )
                observers.append(
                    _LegController(self, record, base_config, offset)
                )
                dataset = load_dataset(
                    jobstore.dataset_path_of(self.root, record)
                )
                if tel is not None:
                    with _obs.activate(tel):
                        leg = reconstruct(
                            dataset, leg_config, observers=observers
                        )
                else:
                    leg = reconstruct(dataset, leg_config, observers=observers)
            finally:
                release_backend(backend_name)
        except _LegInterrupted as stop:
            logger.info(
                "job %s: leg interrupted (%s) at checkpoint %s",
                job_id, stop.action, stop.checkpoint.name,
            )
            jobstore.consolidate_from_archive(
                self.root, record, stop.checkpoint
            )
            jobstore.clear_control(self.root, job_id)
            if stop.action == "pause":
                self._settle(record, JobState.PAUSED, "paused", tel=tel)
            else:
                self._settle(record, JobState.CANCELLED, "cancelled", tel=tel)
        except Exception:
            record.error = traceback.format_exc(limit=8)
            self._settle(record, JobState.FAILED, "failed", tel=tel)
        else:
            final = self._merged_result(record, leg)
            save_result(
                directory / "result.npz", final, config=base_config
            )
            record.carry_history = [float(c) for c in final.history]
            record.carry_messages = int(final.messages)
            record.carry_message_bytes = int(final.message_bytes)
            record.carry_peaks = [
                int(p) for p in final.peak_memory_per_rank
            ]
            jobstore.clear_control(self.root, job_id)
            self._settle(record, JobState.DONE, "done", tel=tel)
        finally:
            if stream is not None:
                stream.close()

    def _write_job_telemetry(
        self, record: JobRecord, tel: Optional["_obs.Telemetry"]
    ) -> None:
        """Drop ``telemetry.json`` in the settled job's directory: the
        wait-vs-run split read from the record's own timestamps (always
        available, even for jobs cancelled while queued) plus the leg's
        aggregated span/counter summary when the leg was traced.  Best-
        effort — an unwritable job dir must not unsettle a settled job.
        """
        directory = jobstore.job_dir(self.root, record.job_id)
        wait_s = None
        run_s = None
        if record.started_at is not None:
            wait_s = max(record.started_at - record.submitted_at, 0.0)
            if record.finished_at is not None:
                run_s = max(record.finished_at - record.started_at, 0.0)
        elif record.finished_at is not None:
            # Never ran: the whole lifetime was queue wait.
            wait_s = max(record.finished_at - record.submitted_at, 0.0)
        payload = {
            "schema": "repro-job-telemetry/1",
            "job_id": record.job_id,
            "state": record.state,
            "queue": {"wait_s": wait_s, "run_s": run_s},
            "summary": tel.summary() if tel is not None else None,
        }
        try:
            atomic_write_json(
                directory / "telemetry.json", payload,
                indent=2, sort_keys=True,
            )
        except OSError:
            logger.debug(
                "job %s: telemetry.json write failed",
                record.job_id, exc_info=True,
            )

    @staticmethod
    def _merged_result(
        record: JobRecord, leg: ReconstructionResult
    ) -> ReconstructionResult:
        """The whole-job result: current state from the final leg,
        history/traffic banked across legs (additive), memory peaks as
        the high-water mark across legs."""
        peaks = [int(p) for p in leg.peak_memory_per_rank]
        if record.carry_peaks:
            peaks = [max(a, b) for a, b in zip(record.carry_peaks, peaks)]
        return ReconstructionResult(
            volume=leg.volume,
            history=list(record.carry_history) + list(leg.history),
            messages=record.carry_messages + leg.messages,
            message_bytes=record.carry_message_bytes + leg.message_bytes,
            peak_memory_per_rank=peaks,
            decomposition=leg.decomposition,
            probe=leg.probe,
            # Spans are per-leg wall-clock — only the final leg's are
            # attached (earlier legs' live on in their checkpoints'
            # telemetry.json, written at each settle).
            telemetry=leg.telemetry,
        )
