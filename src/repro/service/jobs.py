"""Filesystem-backed job records: the service's durable state.

One directory per job under ``<root>/jobs/<job_id>/``::

    job.json          the JobRecord (atomic tmp+rename writes)
    dataset.npz       the acquisition, when submitted in-memory
                      (path submissions reference the original file)
    checkpoints/      periodic + interrupt checkpoints of the active leg
    seed.npz          consolidated resume seed (volume/probe/config)
    result.npz        the final merged archive, once DONE
    progress.json     latest ProgressUpdate mirror (cross-process poll)
    control.json      pending cancel/pause request (cross-process)

The root itself holds one extra file, ``serve.lock`` — the exclusive
``flock`` a live service owns for its lifetime (one service per root;
see :class:`~repro.service.service.ReconstructionService`).

Everything an observer of the job directory needs survives process
restarts: a ``serve`` process that crashes mid-run is recovered from
``job.json`` + the newest checkpoint by the next ``serve`` (the dead
process's lock is released by the OS, so the successor takes over
without manual cleanup); a ``submit`` with no server running is picked
up whenever one starts.

**Leg accounting.**  A job runs as one or more *legs* (initial run, then
one per resume).  Checkpoints snapshot leg-local counters (history from
leg start, leg traffic), so the record banks the completed legs'
contribution in its ``carry_*`` fields; :func:`consolidate_from_archive`
folds a checkpoint into the carry and installs it as the next leg's
seed.  Cost history and message counters are exactly additive across
legs (per-iteration traffic is constant), which is what makes a
cancel→resume job's final archive fingerprint-identical to an
uninterrupted run for the exactly-resumable solvers (gd
``mode="synchronous"``, hve, serial).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.config import ReconstructionConfig
from repro.utils.atomicio import atomic_write_json

__all__ = [
    "JobState",
    "JobRecord",
    "JobError",
    "job_dir",
    "list_job_ids",
    "load_record",
    "save_record",
    "create_job",
    "request_control",
    "read_control",
    "clear_control",
    "consolidate_from_archive",
    "latest_checkpoint",
    "prepare_resume",
]


class JobError(RuntimeError):
    """A job-layer failure (missing job, illegal state transition, ...)."""


class JobState:
    """The job lifecycle (plain strings — they live in JSON).

    ``QUEUED → RUNNING → DONE | FAILED | CANCELLED | PAUSED``;
    ``PAUSED``/``CANCELLED``/``FAILED`` may transition back to
    ``QUEUED`` via resume (seeded from the consolidated checkpoint).
    """

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    PAUSED = "PAUSED"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    ALL = (QUEUED, RUNNING, PAUSED, DONE, FAILED, CANCELLED)
    #: States a worker is no longer driving.
    SETTLED = (PAUSED, DONE, FAILED, CANCELLED)
    #: States resume() may requeue from.
    RESUMABLE = (PAUSED, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """The durable description of one submitted reconstruction job."""

    job_id: str
    config: Dict[str, Any]
    dataset_path: str
    priority: int = 0
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Total iterations the job must run (across all legs).
    iterations_total: int = 0
    #: Banked contribution of completed legs (see module docstring).
    carry_history: List[float] = field(default_factory=list)
    carry_messages: int = 0
    carry_message_bytes: int = 0
    carry_peaks: List[int] = field(default_factory=list)
    #: Resume seed archive (path relative to the job dir), if any.
    seed: Optional[str] = None
    #: Completed resume cycles.
    resumes: int = 0

    @property
    def iterations_done(self) -> int:
        return len(self.carry_history)

    def reconstruction_config(self) -> ReconstructionConfig:
        """The submitted config as a live object."""
        return ReconstructionConfig.from_dict(self.config)


# ----------------------------------------------------------------------
# Paths + (de)serialization
# ----------------------------------------------------------------------
def job_dir(root: Union[str, Path], job_id: str) -> Path:
    return Path(root) / "jobs" / job_id


def list_job_ids(root: Union[str, Path]) -> List[str]:
    """Every job id under ``root``, submission-ordered (by record time)."""
    jobs = Path(root) / "jobs"
    if not jobs.is_dir():
        return []
    ids = [p.name for p in jobs.iterdir() if (p / "job.json").is_file()]
    return sorted(
        ids, key=lambda jid: (load_record(root, jid).submitted_at, jid)
    )


def load_record(root: Union[str, Path], job_id: str) -> JobRecord:
    path = job_dir(root, job_id) / "job.json"
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise JobError(f"no job {job_id!r} under {root} ({exc})") from None
    return JobRecord(**payload)


def save_record(root: Union[str, Path], record: JobRecord) -> None:
    """Atomic write (tmp+rename): readers in other processes never see a
    torn record, and a crash mid-write leaves the previous version."""
    directory = job_dir(root, record.job_id)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_json(directory / "job.json", asdict(record), indent=2)


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
def create_job(
    root: Union[str, Path],
    dataset: Union[str, Path, "object"],
    config: Union[ReconstructionConfig, Dict[str, Any]],
    priority: int = 0,
    job_id: Optional[str] = None,
) -> JobRecord:
    """Create a job directory + record (no server required).

    ``dataset`` is either the path of a saved acquisition archive
    (referenced in place) or an in-memory
    :class:`~repro.physics.dataset.PtychoDataset` (saved into the job
    directory so the job survives the submitting process).
    """
    if not isinstance(config, ReconstructionConfig):
        config = ReconstructionConfig.from_dict(config)
    iterations = config.solver_params.get("iterations")
    if not isinstance(iterations, int) or iterations <= 0:
        raise JobError(
            "service jobs must pin solver_params['iterations'] to a "
            "positive int (the job layer tracks progress against it)"
        )
    if config.run_params.get("resume") is not None:
        raise JobError(
            "service jobs manage resume themselves; submit a config "
            "without run_params['resume'] and use the service's "
            "cancel/resume lifecycle instead"
        )
    job_id = job_id or uuid.uuid4().hex[:12]
    directory = job_dir(root, job_id)
    if (directory / "job.json").exists():
        raise JobError(f"job {job_id!r} already exists under {root}")

    if isinstance(dataset, (str, Path)):
        dataset_path = str(Path(dataset).resolve())
        if not Path(dataset_path).is_file():
            raise JobError(f"dataset archive not found: {dataset_path}")
    else:
        from repro.io.storage import save_dataset

        directory.mkdir(parents=True, exist_ok=True)
        save_dataset(directory / "dataset.npz", dataset)
        dataset_path = "dataset.npz"

    record = JobRecord(
        job_id=job_id,
        config=config.to_dict(),
        dataset_path=dataset_path,
        priority=int(priority),
        # Record-keeping only: submitted_at is shown to humans and feeds
        # the wait-vs-run telemetry split, never queue ordering — the
        # JobQueue schedules by priority + aging, monotonic by design
        # (see repro.service.queue's wall-clock-free ordering contract).
        submitted_at=time.time(),  # repro-lint: allow[wall-clock]
        iterations_total=iterations,
    )
    save_record(root, record)
    return record


def dataset_path_of(root: Union[str, Path], record: JobRecord) -> Path:
    """Absolute path of the job's acquisition archive."""
    path = Path(record.dataset_path)
    if not path.is_absolute():
        path = job_dir(root, record.job_id) / path
    return path


# ----------------------------------------------------------------------
# Cross-process control (cancel/pause requests)
# ----------------------------------------------------------------------
def _control_path(root: Union[str, Path], job_id: str) -> Path:
    return job_dir(root, job_id) / "control.json"


def request_control(
    root: Union[str, Path],
    job_id: str,
    action: str,
    at_iteration: Optional[int] = None,
) -> None:
    """Ask the job to stop: ``action`` is ``"cancel"`` or ``"pause"``.

    ``at_iteration`` defers the stop until that many *global* iterations
    have completed (``None`` = at the next iteration boundary).  Written
    as a flag file so it works from any process; a running leg's
    controller observer reads it at every iteration boundary.
    """
    if action not in ("cancel", "pause"):
        raise ValueError(f"action must be 'cancel' or 'pause', got {action!r}")
    load_record(root, job_id)  # existence check with a clear error
    payload = {"action": action, "at_iteration": at_iteration}
    atomic_write_json(_control_path(root, job_id), payload)


def read_control(
    root: Union[str, Path], job_id: str
) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(_control_path(root, job_id).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def clear_control(root: Union[str, Path], job_id: str) -> None:
    _control_path(root, job_id).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Checkpoint consolidation + resume
# ----------------------------------------------------------------------
def checkpoints_dir(root: Union[str, Path], job_id: str) -> Path:
    return job_dir(root, job_id) / "checkpoints"


def latest_checkpoint(root: Union[str, Path], job_id: str) -> Optional[Path]:
    """Newest checkpoint archive of the active leg (by the iteration
    number encoded in the filename), or None."""
    directory = checkpoints_dir(root, job_id)
    if not directory.is_dir():
        return None

    def leg_iteration(path: Path) -> int:
        match = re.search(r"iter(\d+)", path.stem)
        return int(match.group(1)) if match else -1

    candidates = sorted(
        directory.glob("*.npz"), key=lambda p: (leg_iteration(p), p.name)
    )
    return candidates[-1] if candidates else None


def consolidate_from_archive(
    root: Union[str, Path], record: JobRecord, archive_path: Path
) -> None:
    """Fold a leg checkpoint into the record's carry and install it as
    the next leg's seed.

    The checkpoint's history/counters are leg-local, so the fold is a
    plain append/add; peak memory is a high-water mark, so it merges
    elementwise-max.  The archive is moved to ``seed.npz`` and the
    leg's other checkpoints are dropped (their iteration numbering is
    leg-local and would collide with the next leg's).
    """
    from repro.io.storage import load_result

    snap = load_result(archive_path)
    record.carry_history = record.carry_history + list(snap.history)
    record.carry_messages += int(snap.messages)
    record.carry_message_bytes += int(snap.message_bytes)
    peaks = [int(p) for p in snap.peak_memory_per_rank]
    if record.carry_peaks:
        record.carry_peaks = [
            max(a, b) for a, b in zip(record.carry_peaks, peaks)
        ]
    else:
        record.carry_peaks = peaks
    directory = job_dir(root, record.job_id)
    seed = directory / "seed.npz"
    os.replace(archive_path, seed)
    shutil.rmtree(checkpoints_dir(root, record.job_id), ignore_errors=True)
    record.seed = "seed.npz"


def prepare_resume(root: Union[str, Path], job_id: str) -> JobRecord:
    """Requeue a settled job (offline — no server required).

    ``PAUSED``/``CANCELLED`` jobs were consolidated by the worker that
    stopped them; a ``FAILED``/crashed job may still have un-folded leg
    checkpoints, so the newest one is consolidated here.  The record
    comes back ``QUEUED`` with its seed installed; a running ``serve``
    picks it up at its next recovery scan (or immediately when resumed
    through :meth:`ReconstructionService.resume`).
    """
    record = load_record(root, job_id)
    if record.state not in JobState.RESUMABLE:
        raise JobError(
            f"job {job_id!r} is {record.state}; only "
            f"{'/'.join(JobState.RESUMABLE)} jobs can be resumed"
        )
    if record.iterations_done >= record.iterations_total:
        raise JobError(
            f"job {job_id!r} already banked all "
            f"{record.iterations_total} iterations"
        )
    stale = latest_checkpoint(root, job_id)
    if stale is not None:
        # A crash (or failure) left leg checkpoints the stopping worker
        # never folded — bank the newest, drop the rest.
        consolidate_from_archive(root, record, stale)
    clear_control(root, job_id)
    record.state = JobState.QUEUED
    record.error = None
    record.resumes += 1
    save_record(root, record)
    return record
