"""Live progress streams fed by :class:`~repro.core.observers.IterationEvent`.

A :class:`ProgressStream` is an ordinary observer (pass it in a
reconstruction's ``observers=[...]`` list); each event becomes one
:class:`ProgressUpdate` — global iteration count, cost, measured
iteration rate and ETA — that clients can **poll** (:meth:`ProgressStream.
poll` returns the latest update without blocking) or **subscribe** to
(:meth:`ProgressStream.subscribe` yields every update as it arrives,
the live-plot-client shape).  The service additionally mirrors each
update to ``progress.json`` in the job directory so a *different
process* (the ``jobs`` CLI) can watch a run it does not host.

Updates count iterations **globally**: a resumed job leg passes the
iterations already banked by earlier legs as ``offset``, so a client
watching a cancel→resume job sees 1..N, not two runs of leg-local
counters.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.core.observers import IterationEvent
from repro.obs import telemetry as _obs
from repro.utils.atomicio import atomic_write_json

__all__ = ["ProgressUpdate", "ProgressStream", "read_progress"]


@dataclass(frozen=True)
class ProgressUpdate:
    """One iteration of a job, as seen by progress clients.

    ``iteration`` is 1-based and global across resumed legs;
    ``iter_per_s``/``eta_s`` are measured over the current leg (the only
    wall-clock this process observed).  ``backend``/``dtype`` echo the
    pinned compute stack of the job's config and ``phase`` is the most
    recent telemetry span label (``None`` when tracing is off) — all
    three default to ``None`` so pre-observability ``progress.json``
    mirrors still parse.
    """

    job_id: str
    iteration: int
    total: int
    cost: float
    elapsed_s: float
    iter_per_s: float
    eta_s: float
    backend: Optional[str] = None
    dtype: Optional[str] = None
    phase: Optional[str] = None
    #: Streamed-acquisition coverage fraction in (0, 1] (``None`` for
    #: static runs — only events from the streaming driver carry it).
    coverage: Optional[float] = None

    @property
    def fraction(self) -> float:
        """Completed fraction of the run, in [0, 1]."""
        return self.iteration / self.total if self.total else 1.0


class ProgressStream:
    """Observer turning iteration events into pollable/subscribable
    progress updates (see module docstring).

    Parameters
    ----------
    job_id:
        Identifier stamped on every update.
    total:
        Total iterations of the *job* (across all legs).
    offset:
        Iterations banked by earlier legs (0 for a fresh job).
    mirror_path:
        Optional JSON file updated atomically with the latest update,
        so other processes can poll the run.
    backend / dtype:
        Pinned compute stack stamped on every update (the service passes
        the job config's resolved names so ``jobs --watch`` can show
        *where* a run is computing without opening the archive).
    """

    def __init__(
        self,
        job_id: str,
        total: int,
        offset: int = 0,
        mirror_path: Optional[Union[str, Path]] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.total = total
        self.offset = offset
        self.mirror_path = Path(mirror_path) if mirror_path else None
        self.backend = backend
        self.dtype = dtype
        self._updates: List[ProgressUpdate] = []
        self._cond = threading.Condition()
        self._closed = False

    # -- observer side -------------------------------------------------
    def __call__(self, event: IterationEvent) -> None:
        leg_done = event.iteration + 1
        rate = leg_done / event.elapsed_s if event.elapsed_s > 0 else 0.0
        done = self.offset + leg_done
        remaining = max(self.total - done, 0)
        tel = _obs.current()
        update = ProgressUpdate(
            job_id=self.job_id,
            iteration=done,
            total=self.total,
            cost=float(event.cost),
            elapsed_s=float(event.elapsed_s),
            iter_per_s=rate,
            eta_s=remaining / rate if rate > 0 else float("inf"),
            backend=self.backend,
            dtype=self.dtype,
            phase=tel.phase_label() if tel.enabled else None,
            coverage=event.coverage,
        )
        with self._cond:
            self._updates.append(update)
            self._cond.notify_all()
        if self.mirror_path is not None:
            _write_json_atomic(self.mirror_path, _update_payload(update))

    def close(self) -> None:
        """End the stream: subscribers drain what is buffered and stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- client side ---------------------------------------------------
    def poll(self) -> Optional[ProgressUpdate]:
        """The latest update, or ``None`` before the first iteration."""
        with self._cond:
            return self._updates[-1] if self._updates else None

    def history(self) -> List[ProgressUpdate]:
        """Every update so far (a copy)."""
        with self._cond:
            return list(self._updates)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def subscribe(
        self, timeout: Optional[float] = None
    ) -> Iterator[ProgressUpdate]:
        """Yield every update in order as it arrives.

        The generator ends when the stream is closed and drained; with
        ``timeout`` it also ends after that many seconds without a new
        update (so a stalled run cannot hang a client forever).
        """
        cursor = 0
        while True:
            with self._cond:
                while cursor >= len(self._updates):
                    if self._closed:
                        return
                    if not self._cond.wait(timeout=timeout):
                        return
                update = self._updates[cursor]
            cursor += 1
            yield update


def _update_payload(update: ProgressUpdate) -> dict:
    payload = asdict(update)
    # JSON has no Infinity; spell an unknown ETA as null.
    if payload["eta_s"] == float("inf"):
        payload["eta_s"] = None
    return payload


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write ``payload`` via tmp+rename so concurrent readers never see
    a torn file (the CLI polls these from another process)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, payload, indent=2)


def read_progress(path: Union[str, Path]) -> Optional[ProgressUpdate]:
    """Read a mirrored ``progress.json`` (None if absent/unreadable) —
    the cross-process poll used by the ``jobs`` CLI."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("eta_s") is None:
        payload["eta_s"] = float("inf")
    try:
        return ProgressUpdate(**payload)
    except TypeError:
        return None
