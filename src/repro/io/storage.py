"""Persistence for acquisitions and reconstructions.

Single-file compressed ``.npz`` archives:

* **datasets** — measured amplitudes, probe wavefunction, the full
  :class:`~repro.physics.dataset.DatasetSpec` (as JSON), and optionally the
  ground-truth volume.  ``load_dataset`` reconstructs a fully functional
  :class:`PtychoDataset` (scan geometry is derived from the spec, so the
  archive stays compact).
* **results** — stitched volume, cost history, refined probe (if any),
  run metadata, and (when provided) the resolved
  :class:`~repro.api.config.ReconstructionConfig` that produced the run,
  so any archive can be replayed bit-for-bit.  Together with the
  reconstructors' ``initial_volume`` parameter this gives
  checkpoint/restart.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, List, Mapping, Optional, Union

import numpy as np

from repro.core.reconstructor import ReconstructionResult
from repro.utils.atomicio import atomic_output

if TYPE_CHECKING:  # pragma: no cover
    # Imported lazily at runtime: repro.api.events imports this module,
    # so a module-level import here would be circular.
    from repro.api.config import ReconstructionConfig
from repro.physics.dataset import DatasetSpec, PtychoDataset
from repro.physics.probe import Probe
from repro.physics.scan import RasterScan

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_result",
    "load_result",
    "ResultArchive",
]

_FORMAT_VERSION = 1


def _savez_atomic(path: Path, payload: Mapping[str, Any]) -> Path:
    """Compressed-npz write via tmp + ``os.replace``.

    Archives land in durable directories (service job dirs, checkpoint
    dirs); a crash mid-``savez`` must never leave a torn ``.npz`` that
    recovery later tries to consolidate.  Mirrors numpy's convention of
    appending ``.npz`` to suffix-less paths, and returns the path the
    archive actually landed at.
    """
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    with atomic_output(path) as tmp:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
    return path


def _spec_to_json(spec: DatasetSpec) -> str:
    return json.dumps(dataclasses.asdict(spec))


def _spec_from_json(payload: str) -> DatasetSpec:
    raw = json.loads(payload)
    raw["scan_grid"] = tuple(raw["scan_grid"])
    raw["object_shape"] = tuple(raw["object_shape"])
    return DatasetSpec(**raw)


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
def save_dataset(
    path: Union[str, Path],
    dataset: PtychoDataset,
    include_ground_truth: bool = True,
) -> Path:
    """Write ``dataset`` to a compressed npz archive; returns the path."""
    path = Path(path)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("dataset"),
        "spec_json": np.array(_spec_to_json(dataset.spec)),
        "amplitudes": dataset.amplitudes,
        "probe": dataset.probe.array,
    }
    if include_ground_truth and dataset.ground_truth is not None:
        payload["ground_truth"] = dataset.ground_truth
    return _savez_atomic(path, payload)


def load_dataset(path: Union[str, Path]) -> PtychoDataset:
    """Read an acquisition archive written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        _check_kind(archive, "dataset", path)
        spec = _spec_from_json(str(archive["spec_json"]))
        amplitudes = archive["amplitudes"]
        probe_array = archive["probe"]
        ground_truth = (
            archive["ground_truth"] if "ground_truth" in archive else None
        )
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
    if amplitudes.shape[0] != scan.n_positions:
        raise ValueError(
            f"archive holds {amplitudes.shape[0]} measurements but the spec "
            f"describes {scan.n_positions} probe locations"
        )
    return PtychoDataset(
        spec=spec,
        probe=Probe(array=probe_array, spec=spec.probe_spec),
        scan=scan,
        amplitudes=amplitudes,
        ground_truth=ground_truth,
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ResultArchive:
    """A reconstruction loaded from disk (decomposition geometry is not
    persisted — only what a downstream consumer needs)."""

    volume: np.ndarray
    history: List[float]
    messages: int
    message_bytes: int
    peak_memory_per_rank: List[int]
    n_ranks: int
    #: Refined probe estimate, when the run refined one.  Shape is the
    #: discriminator: ``(w, w)`` is a scalar (single-mode) probe —
    #: every legacy archive — and ``(M, w, w)`` is a mixed-state mode
    #: stack.  npz stores shapes exactly, so the two never collide and
    #: a resumed mixed-state run gets its stack back bit for bit.
    probe: Optional[np.ndarray] = None
    #: The resolved config the run was produced from, when the writer
    #: embedded one (``save_result(..., config=...)``); replay it with
    #: ``repro.reconstruct(dataset, archive.config)``.
    config: Optional["ReconstructionConfig"] = None
    #: Aggregated telemetry summary (``Telemetry.summary()``), when the
    #: archived run was traced; ``repro stats archive.npz`` reads it.
    telemetry: Optional[Mapping[str, Any]] = None

    @property
    def final_cost(self) -> float:
        """Last recorded sweep cost."""
        return self.history[-1] if self.history else float("nan")

    @property
    def n_iterations(self) -> int:
        """Iterations the archived run performed (mirrors
        :attr:`ReconstructionResult.n_iterations`, so archives and live
        results fingerprint interchangeably)."""
        return len(self.history)


def save_result(
    path: Union[str, Path],
    result: ReconstructionResult,
    config: Optional[Union["ReconstructionConfig", Mapping[str, Any]]] = None,
) -> Path:
    """Write a :class:`ReconstructionResult` to a compressed npz archive.

    ``config`` (a :class:`~repro.api.config.ReconstructionConfig` or its
    ``to_dict`` form) is embedded as JSON for provenance/replay.
    """
    path = Path(path)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("result"),
        "volume": result.volume,
        "history": np.asarray(result.history, dtype=np.float64),
        "messages": np.array(result.messages, dtype=np.int64),
        "message_bytes": np.array(result.message_bytes, dtype=np.int64),
        "peak_memory_per_rank": np.asarray(
            result.peak_memory_per_rank, dtype=np.int64
        ),
        "n_ranks": np.array(result.decomposition.n_ranks, dtype=np.int64),
    }
    if result.probe is not None:
        payload["probe"] = result.probe
    if config is not None:
        from repro.api.config import ReconstructionConfig

        if not isinstance(config, ReconstructionConfig):
            config = ReconstructionConfig.from_dict(config)
        payload["config_json"] = np.array(config.to_json())
    if getattr(result, "telemetry", None) is not None:
        payload["telemetry_json"] = np.array(
            json.dumps(result.telemetry, sort_keys=True)
        )
    return _savez_atomic(path, payload)


def load_result(path: Union[str, Path]) -> ResultArchive:
    """Read a reconstruction archive written by :func:`save_result`."""
    from repro.api.config import ReconstructionConfig

    with np.load(Path(path), allow_pickle=False) as archive:
        _check_kind(archive, "result", path)
        return ResultArchive(
            volume=archive["volume"],
            history=[float(x) for x in archive["history"]],
            messages=int(archive["messages"]),
            message_bytes=int(archive["message_bytes"]),
            peak_memory_per_rank=[
                int(x) for x in archive["peak_memory_per_rank"]
            ],
            n_ranks=int(archive["n_ranks"]),
            probe=archive["probe"] if "probe" in archive else None,
            config=(
                ReconstructionConfig.from_json(str(archive["config_json"]))
                if "config_json" in archive
                else None
            ),
            telemetry=(
                json.loads(str(archive["telemetry_json"]))
                if "telemetry_json" in archive
                else None
            ),
        )


def _check_kind(archive, expected: str, path) -> None:
    if "kind" not in archive:
        raise ValueError(f"{path} is not a repro archive")
    kind = str(archive["kind"])
    if kind != expected:
        raise ValueError(f"{path} holds a {kind!r} archive, not {expected!r}")
    version = int(archive["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(
            f"{path} uses format v{version}; this build reads <= v{_FORMAT_VERSION}"
        )
