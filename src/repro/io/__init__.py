"""Dataset and result persistence (compressed .npz archives)."""

from repro.io.storage import (
    ResultArchive,
    load_dataset,
    load_result,
    save_dataset,
    save_result,
)

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_result",
    "load_result",
    "ResultArchive",
]
