"""Command-line interface.

Four subcommands cover the simulate -> reconstruct -> analyze workflow:

.. code-block:: bash

    repro-ptycho simulate  --grid 8x8 --detector 24 --slices 2 --out ds.npz
    repro-ptycho store     --dataset ds.npz --chunk-size 32 --out ds_meas.npz
    repro-ptycho reconstruct --dataset ds.npz --ranks 9 --iterations 10 \
        --out rec.npz
    repro-ptycho reconstruct --dataset ds.npz --data-store ds_meas.npz \
        --batch-size 8 --out rec.npz
    repro-ptycho reconstruct --dataset ds.npz --config run.json --out rec.npz
    repro-ptycho predict   --dataset large --algorithm gd --gpus 6,54,462
    repro-ptycho experiment --name table1

Three more drive the async job layer (:mod:`repro.service`) against a
filesystem job root that survives restarts:

.. code-block:: bash

    repro-ptycho submit --root jobs/ --dataset ds.npz --config run.json
    repro-ptycho serve  --root jobs/ --workers 2 --drain
    repro-ptycho jobs   --root jobs/                  # list + live progress
    repro-ptycho jobs   --root jobs/ --watch          # poll until settled
    repro-ptycho jobs   --root jobs/ --cancel JOBID --at-iteration 5
    repro-ptycho jobs   --root jobs/ --resume JOBID   # requeue from checkpoint

Observability: ``reconstruct --trace out.json`` records tracing spans
and writes a Chrome trace (chrome://tracing / Perfetto), ``stats``
prints the aggregated phase breakdown of a traced archive or job
directory, and the top-level ``-v``/``--log-level`` flags opt into the
library's structured logs:

.. code-block:: bash

    repro-ptycho reconstruct --dataset ds.npz --trace trace.json --out rec.npz
    repro-ptycho stats rec.npz
    repro-ptycho stats jobs/jobs/<JOBID>      # service job directory
    repro-ptycho -v serve --root jobs/ --drain

``submit`` and ``jobs`` only touch the job directory, so they work with
or without a running server: submissions queue up for the next ``serve``,
cancel requests are honoured by a live server at the next iteration
boundary, and ``--resume`` requeues a settled job from its consolidated
checkpoint.

Reconstruction dispatches through the :mod:`repro.api` solver registry:
``--algorithm`` choices are whatever is registered (third-party solvers
included), ``--config`` runs a serialized
:class:`~repro.api.ReconstructionConfig` verbatim, and the resolved
config is embedded in the saved result archive — ``load_result(out).config``
replays the run exactly.

(Also runnable as ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import solver_names
from repro.backend import backend_names
from repro.experiments import experiment_names
from repro.runtime import executor_names

__all__ = ["main", "build_parser"]

#: One row per reconstruct solver flag: (config key, CLI flag, default).
#: The single source shared by build_parser, the config builder, and the
#: --config clash check.  A flag left at its default is simply omitted
#: from the config when the chosen solver does not accept it; an
#: explicitly-set flag the solver cannot honour is an error (never
#: silently dropped).  --lr's None default means "auto-resolve".
_REC_FLAG_SPECS = (
    ("n_ranks", "--ranks", 4),
    ("iterations", "--iterations", 10),
    ("lr", "--lr", None),
    ("mode", "--mode", "alg1"),
    ("planner", "--planner", "appp"),
    ("sync_period", "--sync-period", "iteration"),
    ("refine_probe", "--refine-probe", False),
)
_REC_DEFAULTS: Dict[str, object] = {
    key: default for key, _, default in _REC_FLAG_SPECS
}


def _solver_flag_values(args) -> List[tuple]:
    """``(key, flag, value, explicit)`` per solver flag; ``explicit``
    means the user moved the flag off its default."""
    values = {
        "n_ranks": args.ranks,
        "iterations": args.iterations,
        "lr": args.lr,
        "mode": args.mode,
        "planner": args.planner,
        "sync_period": args.sync_period,
        "refine_probe": args.refine_probe,
    }
    return [
        (key, flag, values[key], values[key] != default)
        for key, flag, default in _REC_FLAG_SPECS
    ]


def _parse_grid(text: str) -> tuple:
    try:
        rows, cols = text.lower().split("x")
        return (int(rows), int(cols))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"grid must look like 8x8, got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ptycho",
        description=(
            "Gradient-decomposed parallel ptychographic reconstruction "
            "(SC22 reproduction)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="library log verbosity: -v = INFO, -vv = DEBUG (default: "
             "REPRO_LOG env or warnings only)")
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="explicit logging level name or number (overrides -v and "
             "REPRO_LOG)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a PbTiO3 acquisition")
    sim.add_argument("--grid", type=_parse_grid, default=(8, 8))
    sim.add_argument("--detector", type=int, default=24)
    sim.add_argument("--slices", type=int, default=2)
    sim.add_argument("--overlap", type=float, default=0.72)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--dose", type=float, default=None,
                     help="Poisson dose (electrons/position); noiseless if omitted")
    sim.add_argument("--out", required=True)

    rec = sub.add_parser("reconstruct", help="reconstruct an acquisition")
    rec.add_argument("--dataset", required=True)
    rec.add_argument("--config", default=None,
                     help="JSON ReconstructionConfig file; replaces the "
                          "algorithm/solver flags below")
    rec.add_argument("--ranks", type=int, default=_REC_DEFAULTS["n_ranks"])
    rec.add_argument("--iterations", type=int,
                     default=_REC_DEFAULTS["iterations"])
    rec.add_argument("--lr", type=float, default=None,
                     help="step size (auto-preconditioned if omitted)")
    rec.add_argument("--mode", choices=["alg1", "synchronous"],
                     default=_REC_DEFAULTS["mode"])
    rec.add_argument(
        "--planner",
        choices=["appp", "barrier", "allreduce", "neighbor"],
        default=_REC_DEFAULTS["planner"],
    )
    rec.add_argument("--sync-period", default=_REC_DEFAULTS["sync_period"])
    rec.add_argument("--algorithm", choices=solver_names(), default="gd")
    rec.add_argument("--refine-probe", action="store_true")
    rec.add_argument("--backend", choices=backend_names(), default=None,
                     help="compute backend (default: REPRO_BACKEND env or "
                          "numpy); with --config, overrides the config's "
                          "backend for replay on different hardware")
    rec.add_argument("--dtype", choices=["complex64", "complex128"],
                     default=None,
                     help="compute precision (default: REPRO_DTYPE env or "
                          "complex128); complex64 halves memory")
    rec.add_argument("--executor", choices=executor_names(), default=None,
                     help="rank-program placement (default: REPRO_EXECUTOR "
                          "env or serial); 'process' runs each rank block "
                          "in its own worker process; with --config, "
                          "overrides the config's executor for replay")
    rec.add_argument("--runtime-workers", type=int, default=None,
                     help="worker-pool bound for --executor process "
                          "(default: one per rank, capped at CPU count)")
    rec.add_argument("--data-store", default=None,
                     help="measurement source: 'memory' (default) or the "
                          "path of an on-disk store written by the store "
                          "subcommand; with --config, overrides the "
                          "config's data_source for replay")
    rec.add_argument("--batch-size", type=int, default=None,
                     help="probes per batched multislice sweep (default: "
                          "REPRO_BATCH_SIZE env or 1 = per-position); "
                          "bit-identical at every setting")
    rec.add_argument("--prefetch", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="overlap on-disk chunk reads with compute "
                          "(on-disk --data-store only); --no-prefetch "
                          "overrides a config that pinned it on")
    rec.add_argument("--probe-modes", type=int, default=None,
                     help="incoherent probe modes for mixed-state "
                          "reconstruction (default 1 = scalar probe, "
                          "bit-identical to the historical path); with "
                          "--config, overrides the config's probe_modes")
    rec.add_argument("--resume", default=None,
                     help="warm-start from a saved result archive")
    rec.add_argument("--stream", action="store_true",
                     help="replay the dataset as a live acquisition "
                          "(frames arrive in waves while the solver runs; "
                          "default schedule: 4 contiguous waves)")
    rec.add_argument("--stream-schedule", metavar="JSON", default=None,
                     help="scan-source spec for --stream: inline JSON or a "
                          "path to a JSON file (implies --stream); see "
                          "repro.data.build_scan_source for the schema")
    rec.add_argument("--trace", metavar="PATH", default=None,
                     help="record telemetry and write a Chrome trace-event "
                          "JSON here (open in chrome://tracing or Perfetto); "
                          "also attaches the aggregated stats to --out")
    rec.add_argument("--out", required=True)

    sto = sub.add_parser(
        "store",
        help="export a dataset's measurements to a chunked on-disk store",
    )
    sto.add_argument("--dataset", required=True)
    sto.add_argument("--chunk-size", type=int, default=64,
                     help="probes per on-disk chunk (default 64)")
    sto.add_argument("--format", choices=["npz", "hdf5"], default=None,
                     help="store format (default: inferred from --out "
                          "extension; .h5/.hdf5 -> hdf5, else npz)")
    sto.add_argument("--out", required=True)

    pred = sub.add_parser(
        "predict", help="full-scale performance prediction (Tables II/III)"
    )
    pred.add_argument("--dataset", choices=["small", "large"], default="large")
    # Deliberately narrower than solver_names(): the paper's performance
    # model is calibrated for gd/hve only, so third-party solver
    # registrations have no prediction tables to draw from.
    pred.add_argument(
        "--algorithm", default="gd",
        choices=["gd", "hve"],  # repro-lint: allow[registry-reachable]
    )
    pred.add_argument("--gpus", default="6,54,198,462",
                      help="comma-separated GPU counts")
    pred.add_argument(
        "--planner", choices=["appp", "barrier", "allreduce"], default="appp"
    )

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("--name", required=True, choices=experiment_names())

    srv = sub.add_parser(
        "serve", help="run a reconstruction service over a job directory"
    )
    srv.add_argument("--root", required=True,
                     help="job directory (created if missing; durable "
                          "across restarts)")
    srv.add_argument("--workers", type=int, default=2,
                     help="concurrent jobs (default 2)")
    srv.add_argument("--checkpoint-every", type=int, default=None,
                     help="periodic checkpoint cadence in iterations "
                          "(crash recovery resumes from these)")
    srv.add_argument("--drain", action="store_true",
                     help="exit once every queued job has settled "
                          "instead of serving forever")

    smt = sub.add_parser(
        "submit", help="queue a reconstruction job in a job directory"
    )
    smt.add_argument("--root", required=True)
    smt.add_argument("--dataset", required=True,
                     help="dataset archive (referenced in place)")
    smt.add_argument("--config", required=True,
                     help="JSON ReconstructionConfig file")
    smt.add_argument("--priority", type=int, default=0,
                     help="higher dequeues first (default 0)")
    smt.add_argument("--job-id", default=None,
                     help="explicit job id (default: generated)")

    job = sub.add_parser(
        "jobs", help="list or control jobs in a job directory"
    )
    job.add_argument("--root", required=True)
    job.add_argument("--cancel", metavar="JOBID", default=None,
                     help="request cancellation (takes effect at the "
                          "next iteration boundary of a live server)")
    job.add_argument("--pause", metavar="JOBID", default=None,
                     help="like --cancel but the job lands in PAUSED")
    job.add_argument("--at-iteration", type=int, default=None,
                     help="with --cancel/--pause: defer until this many "
                          "global iterations are banked")
    job.add_argument("--resume", metavar="JOBID", default=None,
                     help="requeue a settled job from its checkpoint")
    job.add_argument("--watch", action="store_true",
                     help="re-render the listing every --interval seconds "
                          "until every job settles")
    job.add_argument("--interval", type=float, default=2.0,
                     help="polling period for --watch (default 2s)")
    job.add_argument("--watch-count", type=int, default=None,
                     help=argparse.SUPPRESS)  # bounded --watch, for tests/CI

    sts = sub.add_parser(
        "stats", help="show a traced run's phase breakdown and counters"
    )
    sts.add_argument("path",
                     help="a result archive (.npz with telemetry attached) "
                          "or a service job directory (telemetry.json)")
    sts.add_argument("--json", action="store_true",
                     help="print the raw summary JSON instead of the table")

    lnt = sub.add_parser(
        "lint",
        help="check the tree against the repo's correctness contracts "
             "(repro-lint; see `repro lint --list-rules`)",
        add_help=False,
    )
    lnt.add_argument("lint_args", nargs=argparse.REMAINDER,
                     help="arguments forwarded to repro.analysis "
                          "(--format, --rules, --baseline, paths, ...)")
    return parser


# ----------------------------------------------------------------------
def _cmd_simulate(args) -> int:
    from repro.io import save_dataset
    from repro.physics.dataset import scaled_pbtio3_spec, simulate_dataset

    spec = scaled_pbtio3_spec(
        scan_grid=args.grid,
        detector_px=args.detector,
        n_slices=args.slices,
        overlap_ratio=args.overlap,
    )
    dataset = simulate_dataset(spec, seed=args.seed, poisson_dose=args.dose)
    path = save_dataset(args.out, dataset)
    print(
        f"wrote {path} ({dataset.n_probes} probes, "
        f"object {spec.object_shape[0]}x{spec.object_shape[1]}x{spec.n_slices})"
    )
    return 0


def _config_from_flags(args, dataset) -> "ReconstructionConfig":
    """Translate reconstruct flags into a config for the chosen solver.

    Flags the solver accepts go into ``solver_params``; a flag left at
    its default is dropped silently, but an *explicitly set* flag the
    solver cannot honour is a hard error (the historical CLI silently
    dropped ``--refine-probe``/``--resume`` for ``hve``).
    """
    from repro.api import ReconstructionConfig, get_solver
    from repro.api.registry import SolverCapabilityError
    from repro.physics.dataset import suggest_lr

    accepted = get_solver(args.algorithm).accepted_params
    params = {}
    for key, flag, value, explicit in _solver_flag_values(args):
        if key == "lr":
            value = float(
                value if value is not None
                else suggest_lr(dataset, alpha=0.35)
            )
        elif key == "sync_period" and isinstance(value, str) and value.isdigit():
            value = int(value)
        if key in accepted:
            params[key] = value
        elif explicit:
            raise SolverCapabilityError(
                f"{flag} is not supported by solver "
                f"{args.algorithm!r} (accepted parameters: "
                f"{', '.join(sorted(accepted))})"
            )
    run_params = {"resume": args.resume} if args.resume is not None else {}
    from repro.backend import default_backend_name, default_dtype_name
    from repro.runtime import default_executor_name

    # Record the *resolved* compute/runtime configuration (flag, else
    # ambient default) so the embedded config replays on what actually
    # ran.  Executor fields are recorded only for solvers that take
    # them; an explicit flag on any other solver is a hard error.
    executor = None
    runtime_workers = None
    if "executor" in accepted:
        executor = args.executor or default_executor_name()
        runtime_workers = args.runtime_workers
    elif args.executor is not None or args.runtime_workers is not None:
        flag = "--executor" if args.executor is not None else "--runtime-workers"
        raise SolverCapabilityError(
            f"{flag} is not supported by solver {args.algorithm!r} "
            f"(accepted parameters: {', '.join(sorted(accepted))})"
        )
    # Data fields follow the same rule: resolved values for solvers
    # that stream/batch, hard errors for explicit flags elsewhere.
    from repro.data import default_batch_size

    data_source = None
    batch_size = None
    prefetch = None
    if "batch_size" in accepted:
        data_source = args.data_store
        batch_size = (
            args.batch_size
            if args.batch_size is not None
            else default_batch_size()
        )
        prefetch = args.prefetch
    else:
        for flag, value in (
            ("--data-store", args.data_store),
            ("--batch-size", args.batch_size),
            ("--prefetch", args.prefetch),
        ):
            if value is not None:
                raise SolverCapabilityError(
                    f"{flag} is not supported by solver "
                    f"{args.algorithm!r} (accepted parameters: "
                    f"{', '.join(sorted(accepted))})"
                )
    probe_modes = None
    if "probe_modes" in accepted:
        probe_modes = args.probe_modes
    elif args.probe_modes is not None:
        raise SolverCapabilityError(
            f"--probe-modes is not supported by solver "
            f"{args.algorithm!r} (accepted parameters: "
            f"{', '.join(sorted(accepted))})"
        )
    return ReconstructionConfig(
        solver=args.algorithm,
        solver_params=params,
        run_params=run_params,
        backend=args.backend or default_backend_name(),
        dtype=args.dtype or default_dtype_name(),
        executor=executor,
        runtime_workers=runtime_workers,
        data_source=data_source,
        batch_size=batch_size,
        prefetch=prefetch,
        probe_modes=probe_modes,
    )


def _explicit_solver_flags(args) -> List[str]:
    """Solver flags the user set away from their defaults (so a run
    driven by ``--config`` can reject them instead of silently ignoring
    them)."""
    flags = ["--algorithm"] if args.algorithm != "gd" else []
    flags.extend(
        flag for _, flag, _, explicit in _solver_flag_values(args) if explicit
    )
    return flags


def _stream_spec(args):
    """The scan-source spec selected by --stream/--stream-schedule.

    ``--stream-schedule`` takes inline JSON or a path to a JSON file and
    implies ``--stream``; bare ``--stream`` replays the dataset in the
    default 4 contiguous waves.  Returns ``None`` when neither is set.
    """
    import json
    from pathlib import Path

    if args.stream_schedule is not None:
        text = args.stream_schedule
        candidate = Path(text)
        if candidate.is_file():
            text = candidate.read_text()
        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError(
                "--stream-schedule must be a JSON object "
                '(e.g. {"kind": "replay", "waves": 4})'
            )
        return spec
    if args.stream:
        return {"kind": "replay", "waves": 4}
    return None


def _cmd_reconstruct(args) -> int:
    from pathlib import Path

    from repro.api import ReconstructionConfig, reconstruct
    from repro.api.registry import SolverCapabilityError, UnknownSolverError
    from repro.backend import BackendUnavailableError
    from repro.data import StoreUnavailableError
    from repro.io import load_dataset, save_result

    dataset = load_dataset(args.dataset)
    try:
        if args.config is not None:
            clashing = _explicit_solver_flags(args)
            if clashing:
                print(f"reconstruct: error: --config replaces the solver "
                      f"flags; remove {', '.join(clashing)} or drop "
                      f"--config", file=sys.stderr)
                return 2
            try:
                config_text = Path(args.config).read_text()
            except OSError as exc:
                print(f"reconstruct: error: cannot read --config "
                      f"{args.config}: {exc}", file=sys.stderr)
                return 2
            config = ReconstructionConfig.from_json(config_text)
            if args.resume is not None:
                config = config.with_run_params(resume=args.resume)
            if args.backend is not None or args.dtype is not None:
                # Like --resume, the compute flags *override* a config
                # (replay an archived run on different hardware).
                config = config.with_compute(
                    backend=args.backend, dtype=args.dtype
                )
            if args.executor is not None or args.runtime_workers is not None:
                config = config.with_runtime(
                    executor=args.executor,
                    runtime_workers=args.runtime_workers,
                )
            if (
                args.data_store is not None
                or args.batch_size is not None
                or args.prefetch is not None
            ):
                # --no-prefetch passes False through with_data (only
                # None means "keep the config's value"), so a replay
                # can switch an archived prefetch=true off.
                config = config.with_data(
                    data_source=args.data_store,
                    batch_size=args.batch_size,
                    prefetch=args.prefetch,
                )
            if args.probe_modes is not None:
                config = config.with_probe(probe_modes=args.probe_modes)
        else:
            config = _config_from_flags(args, dataset)
        stream_spec = _stream_spec(args)
        if stream_spec is not None:
            # Like --resume, streaming *overrides* a config: the same
            # archived run can be replayed as a live acquisition.
            config = config.with_stream(scan_source=stream_spec)
        resume = config.run_params.get("resume")
        if resume is not None:
            print(f"resuming from {resume}")
        if args.trace is not None:
            from repro.obs import Telemetry, activate

            # One recorder for the whole command, activated before the
            # run so the solver, its engines and any worker processes
            # all record onto the timeline --trace exports.
            config = config.with_telemetry(True)
            tel = Telemetry()
            with activate(tel):
                result = reconstruct(dataset, config)
        else:
            tel = None
            result = reconstruct(dataset, config)
    except (UnknownSolverError, SolverCapabilityError,
            BackendUnavailableError, StoreUnavailableError,
            ValueError, TypeError) as exc:
        print(f"reconstruct: error: {exc}", file=sys.stderr)
        return 2

    path = save_result(args.out, result, config=config)
    print(f"solver: {config.solver}")
    print(f"backend: {config.backend} ({config.dtype})")
    if config.probe_modes is not None and config.probe_modes > 1:
        print(f"probe modes: {config.probe_modes} (mixed-state)")
    if config.scan_source is not None:
        print(f"stream: {config.scan_source.get('kind', '?')} source")
    if config.data_source is not None or (
        config.batch_size is not None and config.batch_size > 1
    ):
        source = config.data_source or "memory"
        batch = config.batch_size if config.batch_size is not None else 1
        flags = ", prefetch" if config.prefetch else ""
        print(f"data: {source} (batch={batch}{flags})")
    if config.executor is not None:
        workers = (
            f", workers={config.runtime_workers}"
            if config.runtime_workers is not None
            else ""
        )
        print(f"executor: {config.executor}{workers}")
    print(f"cost: {result.history[0]:.4e} -> {result.history[-1]:.4e} "
          f"over {len(result.history)} iterations")
    print(f"messages: {result.messages}, "
          f"peak memory/rank: {result.peak_memory_mean / 1e6:.2f} MB")
    print(f"wrote {path} (config embedded for replay)")
    if tel is not None:
        from repro.obs import format_stats_table, write_chrome_trace

        trace_path = write_chrome_trace(args.trace, tel)
        print(f"wrote {trace_path} "
              f"(chrome://tracing / https://ui.perfetto.dev)")
        print()
        print(format_stats_table(result.telemetry or tel.summary()))
    return 0


def _cmd_store(args) -> int:
    from repro.data import StoreUnavailableError, write_store
    from repro.io import load_dataset

    dataset = load_dataset(args.dataset)
    try:
        path = write_store(
            args.out, dataset, chunk_size=args.chunk_size, fmt=args.format
        )
    except (StoreUnavailableError, ValueError) as exc:
        print(f"store: error: {exc}", file=sys.stderr)
        return 2
    n_chunks = -(-dataset.n_probes // args.chunk_size)
    print(
        f"wrote {path} ({dataset.n_probes} probes in {n_chunks} "
        f"chunks of {args.chunk_size})"
    )
    return 0


def _cmd_predict(args) -> int:
    from repro.experiments.report import format_table
    from repro.perfmodel import PerformancePredictor
    from repro.physics.dataset import large_pbtio3_spec, small_pbtio3_spec

    spec = large_pbtio3_spec() if args.dataset == "large" else small_pbtio3_spec()
    gpus = [int(g) for g in args.gpus.split(",")]
    predictor = PerformancePredictor(spec)
    rows = predictor.sweep(gpus, args.algorithm, planner=args.planner)
    table = format_table(
        ["nodes", "GPUs", "mem GB", "time min", "eff %"],
        [
            [r.nodes, r.gpus, r.memory_gb, r.runtime_min, r.efficiency_pct]
            for r in rows
        ],
        title=f"{spec.name} — {args.algorithm} — 100 iterations",
    )
    print(table)
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import get_experiment

    result = get_experiment(args.name)()
    print(result.format())
    return 0


def _cmd_serve(args) -> int:
    from repro.service import JobError, ReconstructionService

    try:
        service = ReconstructionService(
            args.root,
            workers=args.workers,
            checkpoint_every=args.checkpoint_every,
        )
    except (ValueError, JobError) as exc:
        # JobError here means another service holds <root>/serve.lock.
        print(f"serve: error: {exc}", file=sys.stderr)
        return 2
    stats = service.stats()
    print(f"serving {args.root} with {args.workers} worker(s)"
          f" ({stats['recovered']} job(s) recovered)")
    try:
        if args.drain:
            service.drain()
        else:  # pragma: no cover - interactive mode
            import time as _time

            while True:
                _time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        print("interrupted; finishing running jobs")
    finally:
        service.close()
    stats = service.stats()
    print(f"settled: {stats['done']} done, {stats['failed']} failed, "
          f"{stats['cancelled']} cancelled, {stats['paused']} paused")
    return 1 if stats["failed"] else 0


def _cmd_submit(args) -> int:
    from pathlib import Path

    from repro.api import ReconstructionConfig
    from repro.service import JobError, create_job

    try:
        config_text = Path(args.config).read_text()
    except OSError as exc:
        print(f"submit: error: cannot read --config {args.config}: {exc}",
              file=sys.stderr)
        return 2
    try:
        config = ReconstructionConfig.from_json(config_text)
        record = create_job(
            args.root,
            args.dataset,
            config,
            priority=args.priority,
            job_id=args.job_id,
        )
    except (JobError, ValueError, OSError) as exc:
        print(f"submit: error: {exc}", file=sys.stderr)
        return 2
    print(f"submitted {record.job_id} ({config.solver}, "
          f"{record.iterations_total} iterations, "
          f"priority {record.priority})")
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import (
        JobError,
        jobs as jobstore,
        prepare_resume,
        read_progress,
        request_control,
    )

    actions = [
        a for a in (args.cancel, args.pause, args.resume) if a is not None
    ]
    if len(actions) > 1:
        print("jobs: error: give at most one of --cancel/--pause/--resume",
              file=sys.stderr)
        return 2
    if args.at_iteration is not None and not (args.cancel or args.pause):
        print("jobs: error: --at-iteration needs --cancel or --pause",
              file=sys.stderr)
        return 2
    try:
        if args.cancel or args.pause:
            job_id = args.cancel or args.pause
            action = "cancel" if args.cancel else "pause"
            jobstore.load_record(args.root, job_id)  # existence check
            request_control(args.root, job_id, action, args.at_iteration)
            when = (
                f"once {args.at_iteration} iterations are banked"
                if args.at_iteration is not None
                else "at the next iteration boundary"
            )
            print(f"{action} requested for {job_id} ({when})")
            return 0
        if args.resume:
            record = prepare_resume(args.root, args.resume)
            print(f"requeued {record.job_id} from iteration "
                  f"{record.iterations_done} (resume #{record.resumes})")
            return 0
    except (JobError, FileNotFoundError) as exc:
        print(f"jobs: error: {exc}", file=sys.stderr)
        return 2

    def render() -> bool:
        """Print the listing; True while any job is still live."""
        from repro.service.jobs import JobState

        job_ids = jobstore.list_job_ids(args.root)
        if not job_ids:
            print(f"no jobs under {args.root}")
            return False
        active = False
        print(f"{'JOB':14} {'STATE':10} {'PRI':>3} {'ITER':>9} "
              f"{'RESUMES':>7}  DETAIL")
        for job_id in job_ids:
            record = jobstore.load_record(args.root, job_id)
            detail = ""
            if record.state == "RUNNING":
                update = read_progress(
                    jobstore.job_dir(args.root, job_id) / "progress.json"
                )
                if update is not None:
                    detail = (f"cost {update.cost:.3e}, "
                              f"{update.iter_per_s:.2f} it/s")
                    if update.backend is not None:
                        detail += f" on {update.backend}/{update.dtype}"
                    if update.coverage is not None:
                        detail += f", cov {update.coverage:.0%}"
                    if update.phase is not None:
                        detail += f" [{update.phase}]"
            elif record.state == "FAILED" and record.error:
                detail = record.error.strip().splitlines()[-1]
            done = (
                record.iterations_done if record.state != "DONE"
                else record.iterations_total
            )
            active = active or record.state not in JobState.SETTLED
            print(f"{record.job_id:14} {record.state:10} "
                  f"{record.priority:>3} "
                  f"{done:>4}/{record.iterations_total:<4} "
                  f"{record.resumes:>7}  {detail}")
        return active

    if not args.watch:
        render()
        return 0
    import time as _time

    polls = 0
    while True:
        active = render()
        polls += 1
        bounded = args.watch_count is not None and polls >= args.watch_count
        if not active or bounded:
            return 0
        _time.sleep(args.interval)
        print()


def _cmd_stats(args) -> int:
    import json

    from repro.obs import format_stats_table, load_stats

    try:
        summary = load_stats(args.path)
    except (OSError, ValueError) as exc:
        print(f"stats: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_stats_table(summary))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import main as lint_main

    return lint_main(args.lint_args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    # `lint` forwards its whole tail to repro.analysis' own parser
    # (argparse REMAINDER alone refuses option-like first tokens, so
    # collect strays from parse_known_args too); every other command
    # keeps strict parsing.
    args, extra = parser.parse_known_args(argv)
    if extra and args.command != "lint":
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    if args.command == "lint":
        args.lint_args = list(extra) + list(args.lint_args)
    from repro.obs import configure_logging

    # Explicit --log-level beats -v beats REPRO_LOG beats warnings-only;
    # the handler touches only the "repro" logger, never the root.
    configure_logging(explicit=args.log_level, verbosity=args.verbose)
    handlers = {
        "simulate": _cmd_simulate,
        "store": _cmd_store,
        "reconstruct": _cmd_reconstruct,
        "predict": _cmd_predict,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "stats": _cmd_stats,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
