"""Command-line interface.

Four subcommands cover the simulate -> reconstruct -> analyze workflow:

.. code-block:: bash

    repro-ptycho simulate  --grid 8x8 --detector 24 --slices 2 --out ds.npz
    repro-ptycho reconstruct --dataset ds.npz --ranks 9 --iterations 10 \
        --out rec.npz
    repro-ptycho predict   --dataset large --algorithm gd --gpus 6,54,462
    repro-ptycho experiment --name table1

(Also runnable as ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _parse_grid(text: str) -> tuple:
    try:
        rows, cols = text.lower().split("x")
        return (int(rows), int(cols))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"grid must look like 8x8, got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ptycho",
        description=(
            "Gradient-decomposed parallel ptychographic reconstruction "
            "(SC22 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a PbTiO3 acquisition")
    sim.add_argument("--grid", type=_parse_grid, default=(8, 8))
    sim.add_argument("--detector", type=int, default=24)
    sim.add_argument("--slices", type=int, default=2)
    sim.add_argument("--overlap", type=float, default=0.72)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--dose", type=float, default=None,
                     help="Poisson dose (electrons/position); noiseless if omitted")
    sim.add_argument("--out", required=True)

    rec = sub.add_parser("reconstruct", help="reconstruct an acquisition")
    rec.add_argument("--dataset", required=True)
    rec.add_argument("--ranks", type=int, default=4)
    rec.add_argument("--iterations", type=int, default=10)
    rec.add_argument("--lr", type=float, default=None,
                     help="step size (auto-preconditioned if omitted)")
    rec.add_argument("--mode", choices=["alg1", "synchronous"], default="alg1")
    rec.add_argument(
        "--planner",
        choices=["appp", "barrier", "allreduce", "neighbor"],
        default="appp",
    )
    rec.add_argument("--sync-period", default="iteration")
    rec.add_argument("--algorithm", choices=["gd", "hve", "serial"], default="gd")
    rec.add_argument("--refine-probe", action="store_true")
    rec.add_argument("--resume", default=None,
                     help="warm-start from a saved result archive")
    rec.add_argument("--out", required=True)

    pred = sub.add_parser(
        "predict", help="full-scale performance prediction (Tables II/III)"
    )
    pred.add_argument("--dataset", choices=["small", "large"], default="large")
    pred.add_argument("--algorithm", choices=["gd", "hve"], default="gd")
    pred.add_argument("--gpus", default="6,54,198,462",
                      help="comma-separated GPU counts")
    pred.add_argument(
        "--planner", choices=["appp", "barrier", "allreduce"], default="appp"
    )

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument(
        "--name",
        required=True,
        choices=["table1", "table2", "table3", "fig5", "fig6", "fig7a",
                 "fig7b", "fig8", "fig9"],
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_simulate(args) -> int:
    from repro.io import save_dataset
    from repro.physics.dataset import scaled_pbtio3_spec, simulate_dataset

    spec = scaled_pbtio3_spec(
        scan_grid=args.grid,
        detector_px=args.detector,
        n_slices=args.slices,
        overlap_ratio=args.overlap,
    )
    dataset = simulate_dataset(spec, seed=args.seed, poisson_dose=args.dose)
    path = save_dataset(args.out, dataset)
    print(
        f"wrote {path} ({dataset.n_probes} probes, "
        f"object {spec.object_shape[0]}x{spec.object_shape[1]}x{spec.n_slices})"
    )
    return 0


def _cmd_reconstruct(args) -> int:
    from repro.baseline import HaloExchangeReconstructor, SerialReconstructor
    from repro.core import GradientDecompositionReconstructor
    from repro.io import load_dataset, load_result, save_result
    from repro.physics.dataset import suggest_lr

    dataset = load_dataset(args.dataset)
    lr = args.lr if args.lr is not None else suggest_lr(dataset, alpha=0.35)
    initial_volume = None
    if args.resume is not None:
        initial_volume = load_result(args.resume).volume
        print(f"resuming from {args.resume}")

    if args.algorithm == "serial":
        recon = SerialReconstructor(iterations=args.iterations, lr=lr,
                                    refine_probe=args.refine_probe)
        result = recon.reconstruct(dataset, initial_volume=initial_volume)
    elif args.algorithm == "hve":
        recon = HaloExchangeReconstructor(
            n_ranks=args.ranks, iterations=args.iterations, lr=lr
        )
        result = recon.reconstruct(dataset)
    else:
        period = args.sync_period
        if isinstance(period, str) and period.isdigit():
            period = int(period)
        recon = GradientDecompositionReconstructor(
            n_ranks=args.ranks,
            iterations=args.iterations,
            lr=lr,
            mode=args.mode,
            planner=args.planner,
            sync_period=period,
            refine_probe=args.refine_probe,
        )
        result = recon.reconstruct(dataset, initial_volume=initial_volume)

    path = save_result(args.out, result)
    print(f"cost: {result.history[0]:.4e} -> {result.history[-1]:.4e} "
          f"over {len(result.history)} iterations")
    print(f"messages: {result.messages}, "
          f"peak memory/rank: {result.peak_memory_mean / 1e6:.2f} MB")
    print(f"wrote {path}")
    return 0


def _cmd_predict(args) -> int:
    from repro.experiments.report import format_table
    from repro.perfmodel import PerformancePredictor
    from repro.physics.dataset import large_pbtio3_spec, small_pbtio3_spec

    spec = large_pbtio3_spec() if args.dataset == "large" else small_pbtio3_spec()
    gpus = [int(g) for g in args.gpus.split(",")]
    predictor = PerformancePredictor(spec)
    rows = predictor.sweep(gpus, args.algorithm, planner=args.planner)
    table = format_table(
        ["nodes", "GPUs", "mem GB", "time min", "eff %"],
        [
            [r.nodes, r.gpus, r.memory_gb, r.runtime_min, r.efficiency_pct]
            for r in rows
        ],
        title=f"{spec.name} — {args.algorithm} — 100 iterations",
    )
    print(table)
    return 0


def _cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "table1": experiments.run_table1,
        "table2": experiments.run_table2,
        "table3": experiments.run_table3,
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "fig7a": experiments.run_fig7a,
        "fig7b": experiments.run_fig7b,
        "fig8": experiments.run_fig8,
        "fig9": experiments.run_fig9,
    }
    result = runners[args.name]()
    print(result.format())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "reconstruct": _cmd_reconstruct,
        "predict": _cmd_predict,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
