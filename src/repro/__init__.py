"""repro — reproduction of "Image Gradient Decomposition for Parallel and
Memory-Efficient Ptychographic Reconstruction" (SC 2022).

Public API highlights
---------------------
Physics / data:
    :func:`repro.physics.simulate_dataset`,
    :func:`repro.physics.scaled_pbtio3_spec`,
    :func:`repro.physics.small_pbtio3_spec`,
    :func:`repro.physics.large_pbtio3_spec`

Reconstructors:
    :class:`repro.core.GradientDecompositionReconstructor` (the paper's
    Algorithm 1), :class:`repro.baseline.HaloExchangeReconstructor` (the
    state-of-the-art baseline), :class:`repro.baseline.SerialReconstructor`
    (the correctness reference)

Scale/performance models (Tables II/III, Fig. 7):
    :class:`repro.perfmodel.MachineSpec`,
    :class:`repro.perfmodel.PerformancePredictor`

Experiments (one per paper table/figure):
    :mod:`repro.experiments` — ``run_table1`` .. ``run_fig9``

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro import utils  # noqa: F401  (re-exported subpackages)
from repro import physics  # noqa: F401
from repro import schedule  # noqa: F401
from repro import parallel  # noqa: F401
from repro import core  # noqa: F401
from repro import baseline  # noqa: F401
from repro import perfmodel  # noqa: F401
from repro import metrics  # noqa: F401
from repro import experiments  # noqa: F401

from repro.core import GradientDecompositionReconstructor, ReconstructionResult
from repro.baseline import HaloExchangeReconstructor, SerialReconstructor
from repro.physics import (
    simulate_dataset,
    scaled_pbtio3_spec,
    small_pbtio3_spec,
    large_pbtio3_spec,
)
from repro.physics.dataset import suggest_lr
from repro.perfmodel import PerformancePredictor, MachineSpec, SUMMIT

__all__ = [
    "__version__",
    "utils",
    "physics",
    "schedule",
    "parallel",
    "core",
    "baseline",
    "perfmodel",
    "metrics",
    "experiments",
    "GradientDecompositionReconstructor",
    "ReconstructionResult",
    "HaloExchangeReconstructor",
    "SerialReconstructor",
    "simulate_dataset",
    "scaled_pbtio3_spec",
    "small_pbtio3_spec",
    "large_pbtio3_spec",
    "suggest_lr",
    "PerformancePredictor",
    "MachineSpec",
    "SUMMIT",
]
