"""repro — reproduction of "Image Gradient Decomposition for Parallel and
Memory-Efficient Ptychographic Reconstruction" (SC 2022).

Public API highlights
---------------------
Config-driven reconstruction (the recommended entry point):
    :func:`repro.reconstruct` runs any registered solver from a
    :class:`repro.api.ReconstructionConfig`; solvers ``"gd"``, ``"hve"``
    and ``"serial"`` ship registered, and third parties add their own
    with :func:`repro.api.register_solver`.  Per-iteration observation
    goes through :class:`repro.api.IterationEvent` observers
    (:class:`repro.api.CheckpointPolicy` snapshots runs to disk).

Compute backends / precision:
    :mod:`repro.backend` — the :func:`repro.register_backend` registry
    (``numpy``/``threaded``/``cupy``), :class:`repro.PrecisionPolicy`
    (``complex128`` reference, ``complex64`` fast path), and
    :func:`repro.use_backend`; configs carry ``backend=``/``dtype=``.

Execution runtime:
    :mod:`repro.runtime` — the executor registry (``serial`` in-process
    reference, ``process`` multi-worker pool with shared-memory tile
    state); configs carry ``executor=``/``runtime_workers=``, and the
    ``process`` executor reproduces ``serial`` bit-for-bit on the numpy
    backend.

Reconstruction-as-a-service:
    :mod:`repro.service` — :class:`repro.service.ReconstructionService`
    runs submitted configs asynchronously over a bounded worker pool
    with priority queueing, cancel/pause/resume on durable checkpoints,
    and live :class:`repro.service.ProgressStream` progress; the
    ``repro serve`` / ``submit`` / ``jobs`` CLI drives a job directory
    that survives restarts.

Observability:
    :mod:`repro.obs` — zero-dependency telemetry: per-run
    :class:`repro.obs.Telemetry` recorders (spans, counters, per-rank
    timelines), Chrome trace-event export for
    ``chrome://tracing``/Perfetto, aggregated phase-breakdown
    summaries (``repro stats``), and the ``repro.*`` structured
    logging hierarchy; configs carry ``telemetry=``, the CLI
    ``--trace``, the environment ``REPRO_TRACE``/``REPRO_LOG``.

Streaming & batching:
    :mod:`repro.data` — :class:`repro.data.DiffractionStore`
    measurement stores (in-memory reference, chunked on-disk with
    optional prefetch), :class:`repro.data.BatchPlanner`, and
    :func:`repro.data.write_store`; configs carry
    ``data_source=``/``batch_size=``/``prefetch=``, and every setting
    is fingerprint-identical to the per-position in-memory reference.

Physics / data:
    :func:`repro.physics.simulate_dataset`,
    :func:`repro.physics.scaled_pbtio3_spec`,
    :func:`repro.physics.small_pbtio3_spec`,
    :func:`repro.physics.large_pbtio3_spec`

Reconstructor classes (what the registry adapters wrap):
    :class:`repro.core.GradientDecompositionReconstructor` (the paper's
    Algorithm 1), :class:`repro.baseline.HaloExchangeReconstructor` (the
    state-of-the-art baseline), :class:`repro.baseline.SerialReconstructor`
    (the correctness reference)

Scale/performance models (Tables II/III, Fig. 7):
    :class:`repro.perfmodel.MachineSpec`,
    :class:`repro.perfmodel.PerformancePredictor`

Experiments (one per paper table/figure):
    :mod:`repro.experiments` — ``run_table1`` .. ``run_fig9``, all
    reachable through :data:`repro.experiments.EXPERIMENTS`

See README.md for a quickstart built on ``repro.reconstruct``.
"""

__version__ = "1.1.0"

import logging as _logging

# Library-logging contract: every repro module logs under the "repro"
# namespace; the NullHandler keeps the library silent unless the
# application (or the CLI's -v/--log-level) opts in.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro import obs  # noqa: F401  (re-exported subpackages)
from repro import backend  # noqa: F401
from repro import data  # noqa: F401
from repro import utils  # noqa: F401
from repro import physics  # noqa: F401
from repro import schedule  # noqa: F401
from repro import parallel  # noqa: F401
from repro import core  # noqa: F401
from repro import runtime  # noqa: F401
from repro import baseline  # noqa: F401
from repro import perfmodel  # noqa: F401
from repro import metrics  # noqa: F401
from repro import io  # noqa: F401
from repro import api  # noqa: F401
from repro import service  # noqa: F401
from repro import experiments  # noqa: F401

from repro.core import GradientDecompositionReconstructor, ReconstructionResult
from repro.baseline import HaloExchangeReconstructor, SerialReconstructor
from repro.physics import (
    simulate_dataset,
    scaled_pbtio3_spec,
    small_pbtio3_spec,
    large_pbtio3_spec,
)
from repro.physics.dataset import suggest_lr
from repro.perfmodel import PerformancePredictor, MachineSpec, SUMMIT
from repro.api import (
    CheckpointPolicy,
    IterationEvent,
    ReconstructionConfig,
    reconstruct,
    register_solver,
    solver_from_config,
    solver_names,
)
from repro.backend import (
    PrecisionPolicy,
    backend_names,
    register_backend,
    use_backend,
)
from repro.runtime import (
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.service import JobHandle, ReconstructionService
from repro.obs import Telemetry

__all__ = [
    "__version__",
    "obs",
    "backend",
    "data",
    "utils",
    "physics",
    "schedule",
    "parallel",
    "core",
    "runtime",
    "baseline",
    "perfmodel",
    "metrics",
    "io",
    "api",
    "service",
    "experiments",
    "GradientDecompositionReconstructor",
    "ReconstructionResult",
    "HaloExchangeReconstructor",
    "SerialReconstructor",
    "simulate_dataset",
    "scaled_pbtio3_spec",
    "small_pbtio3_spec",
    "large_pbtio3_spec",
    "suggest_lr",
    "PerformancePredictor",
    "MachineSpec",
    "SUMMIT",
    "reconstruct",
    "ReconstructionConfig",
    "register_solver",
    "solver_from_config",
    "solver_names",
    "IterationEvent",
    "CheckpointPolicy",
    "PrecisionPolicy",
    "backend_names",
    "register_backend",
    "use_backend",
    "executor_names",
    "register_executor",
    "resolve_executor",
    "ReconstructionService",
    "JobHandle",
    "Telemetry",
]
