"""Fig. 5 — the APPP pipeline timeline (3x3 mesh).

The paper's Fig. 5 is a Gantt chart of the 9-GPU example: gradient
computation, then vertical forward/backward and horizontal
forward/backward passes, with **cross-direction pipelining** — a
bottom-row GPU starts the horizontal passes while upper rows are still
finishing the vertical backward pass, because nothing but message
availability synchronizes the ranks.

We regenerate it by running the APPP schedule through the event simulator
with trace recording, rendering an ASCII Gantt chart, and *asserting* the
pipelining property the figure illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.config import ReconstructionConfig
from repro.api.registry import solver_from_config
from repro.core.decomposition import decompose_gradient
from repro.core.passes import TAG_HORIZONTAL, TAG_VERTICAL, build_appp_passes
from repro.parallel.event_sim import EventSimulator, TraceEvent
from repro.parallel.network import NetworkModel
from repro.parallel.topology import ClusterTopology, MeshLayout
from repro.schedule.ops import BufferExchange, Schedule
from repro.physics.dataset import scaled_pbtio3_spec
from repro.physics.scan import RasterScan

from repro.experiments.registry import register_experiment

__all__ = ["Fig5Result", "run_fig5"]


class _UnitCosts:
    """Costs shaped like the figure: long compute, visible transfers."""

    def __init__(self, decomp, jitter=0.25):
        self.decomp = decomp
        self.jitter = jitter

    def gradient_seconds(self, rank, n_probes):
        # Deterministic heterogeneity so ranks finish staggered like the
        # figure's uneven green arrows.
        return n_probes * (1.0 + self.jitter * ((rank * 37 % 9) / 9.0 - 0.5))

    def exchange_bytes(self, region_area):
        return float(region_area)

    def apply_seconds(self, region_area):
        return 0.05

    def update_seconds(self, rank):
        return 0.2

    def allreduce_bytes(self):
        return 1.0


@dataclass
class Fig5Result:
    """Trace + direction classification of every exchange."""

    trace: List[TraceEvent]
    direction_of: Dict[int, str]
    makespan_s: float
    mesh: MeshLayout

    # ------------------------------------------------------------------
    def cross_direction_pipelining(self) -> bool:
        """True when some rank starts a horizontal-pass op before another
        rank finishes the vertical backward pass — the defining overlap of
        the paper's Fig. 5."""
        horizontal_starts = [
            e.start_s
            for e in self.trace
            if self.direction_of.get(e.uid) == "horizontal"
        ]
        vertical_ends = [
            e.end_s
            for e in self.trace
            if self.direction_of.get(e.uid) == "vertical"
        ]
        if not horizontal_starts or not vertical_ends:
            return False
        return min(horizontal_starts) < max(vertical_ends)

    def format(self, width: int = 72) -> str:
        """ASCII Gantt chart: one row per rank, time left to right.

        ``c`` = gradient compute, ``v``/``h`` = vertical/horizontal pass
        activity, ``u`` = tile update.
        """
        n = self.mesh.n_ranks
        span = self.makespan_s
        grid = [[" "] * width for _ in range(n)]

        def paint(event: TraceEvent, char: str) -> None:
            a = int(event.start_s / span * (width - 1))
            b = max(a + 1, int(event.end_s / span * (width - 1)))
            for x in range(a, min(b, width)):
                grid[event.rank][x] = char

        for e in self.trace:
            if e.kind == "compute":
                paint(e, "c")
            elif e.kind in ("send", "recv"):
                d = self.direction_of.get(e.uid)
                paint(e, "v" if d == "vertical" else "h")
            elif e.kind == "update":
                paint(e, "u")
        lines = [
            "Fig. 5 — APPP pipeline timeline (c=compute, v=vertical pass, "
            "h=horizontal pass, u=update)"
        ]
        for rank in range(n):
            lines.append(f"GPU {rank + 1}: |" + "".join(grid[rank]) + "|")
        return "\n".join(lines)


@register_experiment("fig5")
def run_fig5(mesh: Optional[MeshLayout] = None) -> Fig5Result:
    """Regenerate the Fig. 5 timeline on the paper's 3x3 example mesh."""
    mesh = mesh if mesh is not None else MeshLayout(3, 3)
    spec = scaled_pbtio3_spec(
        scan_grid=(9, 9), detector_px=16, n_slices=2, overlap_ratio=0.75
    )
    scan = RasterScan(spec.scan_spec(), probe_window_px=spec.detector_px)
    decomp = decompose_gradient(scan, spec.object_shape, mesh=mesh)
    # Built through the solver registry; schedule construction reaches
    # the wrapped reconstructor via adapter delegation.
    solver = solver_from_config(
        ReconstructionConfig(
            solver="gd",
            solver_params={"mesh": [mesh.rows, mesh.cols], "iterations": 1},
        )
    )
    schedule = solver.build_iteration_schedule(decomp)

    direction_of: Dict[int, str] = {}
    for op in schedule:
        if isinstance(op, BufferExchange):
            if op.tag in (TAG_VERTICAL, TAG_VERTICAL + 1):
                direction_of[op.uid] = "vertical"
            elif op.tag in (TAG_HORIZONTAL, TAG_HORIZONTAL + 1):
                direction_of[op.uid] = "horizontal"

    sim = EventSimulator(
        NetworkModel(ClusterTopology(mesh.n_ranks)), _UnitCosts(decomp)
    )
    report = sim.run(schedule, record_trace=True)
    return Fig5Result(
        trace=report.trace or [],
        direction_of=direction_of,
        makespan_s=report.makespan_s,
        mesh=mesh,
    )
