"""Table III — large-dataset performance comparison (6..4158 GPUs).

The headline table: Gradient Decomposition reaches 4158 GPUs (paper: 2.2
minutes, 0.18 GB/GPU) while Halo Voxel Exchange stops scaling at 462.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.report import format_table
from repro.experiments.table2 import Table2Result
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.predictor import NA, PerformancePredictor, ScalingRow
from repro.physics.dataset import large_pbtio3_spec

from repro.experiments.registry import register_experiment

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3_GD", "PAPER_TABLE3_HVE"]

#: Paper Table III(a): GPUs -> (memory GB, runtime min, efficiency %).
PAPER_TABLE3_GD: Dict[int, tuple] = {
    6: (9.14, 5543.0, 100),
    54: (1.54, 183.0, 336),
    198: (0.66, 37.5, 448),
    462: (0.42, 14.2, 509),
    924: (0.32, 7.0, 518),
    4158: (0.18, 2.2, 364),
}

#: Paper Table III(b): the 462-GPU runtime blow-up (189.5 min, eff 49%).
PAPER_TABLE3_HVE: Dict[int, tuple] = {
    6: (9.47, 7213.3, 100),
    54: (1.8, 271.7, 295),
    198: (0.78, 59.2, 369),
    462: (0.48, 189.5, 49),
}


@dataclass
class Table3Result(Table2Result):
    """Same layout as Table II, large dataset."""

    paper_gd: Dict[int, tuple] = field(default_factory=lambda: PAPER_TABLE3_GD)
    paper_hve: Dict[int, tuple] = field(default_factory=lambda: PAPER_TABLE3_HVE)

    def format(self) -> str:
        return (
            self._format_side(
                self.gd_rows, self.paper_gd, "Table III(a) — Gradient Decomposition"
            )
            + "\n\n"
            + self._format_side(
                self.hve_rows, self.paper_hve, "Table III(b) — Halo Voxel Exchange"
            )
        )

    # ------------------------------------------------------------------
    # Headline claims (paper abstract)
    # ------------------------------------------------------------------
    def memory_reduction_factor(self) -> float:
        """GD memory at the smallest vs largest GPU count (paper: 51x)."""
        feasible = [r for r in self.gd_rows if r.feasible]
        return float(feasible[0].memory_gb) / float(feasible[-1].memory_gb)

    def scalability_factor(self) -> float:
        """Max GD GPUs / max feasible HVE GPUs (paper: 9x)."""
        gd_max = max(r.gpus for r in self.gd_rows if r.feasible)
        hve_max = max(r.gpus for r in self.hve_rows if r.feasible)
        return gd_max / hve_max

    def speed_factor(self) -> float:
        """HVE runtime at its max scale / GD fastest runtime (paper: 86x)."""
        gd_best = min(float(r.runtime_min) for r in self.gd_rows if r.feasible)
        hve_rows = [r for r in self.hve_rows if r.feasible]
        hve_at_max = float(hve_rows[-1].runtime_min)
        return hve_at_max / gd_best


@register_experiment("table3")
def run_table3(
    gpu_counts: Sequence[int] = (6, 54, 198, 462, 924, 4158),
    hve_gpu_counts: Sequence[int] = (6, 54, 198, 462),
    machine: MachineSpec = SUMMIT,
) -> Table3Result:
    """Regenerate Table III at the paper's full large-dataset scale."""
    predictor = PerformancePredictor(large_pbtio3_spec(), machine=machine)
    return Table3Result(
        gd_rows=predictor.sweep(gpu_counts, "gd"),
        hve_rows=predictor.sweep(hve_gpu_counts, "hve"),
    )
