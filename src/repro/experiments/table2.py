"""Table II — small-dataset performance comparison (6..462 GPUs).

Gradient Decomposition memory/runtime/efficiency versus Halo Voxel
Exchange, including the HVE "NA" rows beyond 54 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.report import format_table
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.predictor import NA, PerformancePredictor, ScalingRow
from repro.physics.dataset import small_pbtio3_spec

from repro.experiments.registry import register_experiment

__all__ = ["Table2Result", "run_table2", "PAPER_TABLE2_GD", "PAPER_TABLE2_HVE"]

#: Paper Table II(a): GPUs -> (memory GB, runtime min, efficiency %).
PAPER_TABLE2_GD: Dict[int, tuple] = {
    6: (2.53, 360.0, 100),
    24: (1.20, 73.0, 123),
    54: (0.58, 20.6, 194),
    126: (0.39, 11.5, 149),
    198: (0.31, 5.5, 198),
    462: (0.23, 3.0, 158),
}

#: Paper Table II(b): Halo Voxel Exchange, NA beyond 54 GPUs.
PAPER_TABLE2_HVE: Dict[int, tuple] = {
    6: (2.80, 463.3, 100),
    24: (1.20, 95.3, 121),
    54: (0.78, 43.7, 118),
    126: (NA, NA, NA),
}


@dataclass
class Table2Result:
    """Modeled rows for both algorithms plus the paper references."""

    gd_rows: List[ScalingRow]
    hve_rows: List[ScalingRow]
    paper_gd: Dict[int, tuple] = field(default_factory=lambda: PAPER_TABLE2_GD)
    paper_hve: Dict[int, tuple] = field(default_factory=lambda: PAPER_TABLE2_HVE)

    def _format_side(
        self, rows: List[ScalingRow], paper: Dict[int, tuple], title: str
    ) -> str:
        table_rows = []
        for r in rows:
            ref = paper.get(r.gpus, (NA, NA, NA))
            table_rows.append(
                [
                    r.nodes,
                    r.gpus,
                    r.memory_gb,
                    ref[0],
                    r.runtime_min,
                    ref[1],
                    r.efficiency_pct,
                    ref[2],
                ]
            )
        return format_table(
            [
                "nodes",
                "GPUs",
                "mem GB",
                "paper",
                "time min",
                "paper",
                "eff %",
                "paper",
            ],
            table_rows,
            title=title,
        )

    def format(self) -> str:
        return (
            self._format_side(
                self.gd_rows, self.paper_gd, "Table II(a) — Gradient Decomposition"
            )
            + "\n\n"
            + self._format_side(
                self.hve_rows, self.paper_hve, "Table II(b) — Halo Voxel Exchange"
            )
        )


@register_experiment("table2")
def run_table2(
    gpu_counts: Sequence[int] = (6, 24, 54, 126, 198, 462),
    hve_gpu_counts: Sequence[int] = (6, 24, 54, 126),
    machine: MachineSpec = SUMMIT,
) -> Table2Result:
    """Regenerate Table II at the paper's full small-dataset scale."""
    predictor = PerformancePredictor(small_pbtio3_spec(), machine=machine)
    return Table2Result(
        gd_rows=predictor.sweep(gpu_counts, "gd"),
        hve_rows=predictor.sweep(hve_gpu_counts, "hve"),
    )
