"""Fig. 7a — strong-scaling curves for both datasets vs the ideal O(1/P).

The paper plots runtime against GPU count for both Lead Titanate datasets
together with the ideal linear-speedup line; super-linear segments sit
*below* the ideal line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.report import format_table
from repro.metrics.scaling import strong_scaling_efficiency
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.predictor import PerformancePredictor
from repro.physics.dataset import large_pbtio3_spec, small_pbtio3_spec

from repro.experiments.registry import register_experiment

__all__ = ["Fig7aResult", "run_fig7a"]


@dataclass
class ScalingSeries:
    """One curve of Fig. 7a."""

    label: str
    gpus: List[int]
    runtime_min: List[float]

    def ideal_runtime_min(self) -> List[float]:
        """The O(1/P) reference anchored at the first point."""
        base = self.runtime_min[0] * self.gpus[0]
        return [base / g for g in self.gpus]

    def efficiency_pct(self) -> List[float]:
        return strong_scaling_efficiency(self.runtime_min, self.gpus)


@dataclass
class Fig7aResult:
    """Both dataset curves."""

    series: List[ScalingSeries]

    def format(self) -> str:
        blocks = []
        for s in self.series:
            rows = [
                [g, t, i, e]
                for g, t, i, e in zip(
                    s.gpus,
                    s.runtime_min,
                    s.ideal_runtime_min(),
                    s.efficiency_pct(),
                )
            ]
            blocks.append(
                format_table(
                    ["GPUs", "time min", "ideal O(1/P)", "eff %"],
                    rows,
                    title=f"Fig. 7a — {s.label}",
                )
            )
        return "\n\n".join(blocks)

    def superlinear_points(self, label: str) -> List[int]:
        """GPU counts where the curve beats the ideal line (the paper's
        super-linear region)."""
        s = next(x for x in self.series if x.label == label)
        return [
            g
            for g, t, i in zip(s.gpus, s.runtime_min, s.ideal_runtime_min())
            if t < i
        ]


@register_experiment("fig7a")
def run_fig7a(
    small_gpus: Sequence[int] = (6, 24, 54, 126, 198, 462),
    large_gpus: Sequence[int] = (6, 54, 198, 462, 924, 4158),
    machine: MachineSpec = SUMMIT,
) -> Fig7aResult:
    """Regenerate the Fig. 7a series from the performance model."""
    out = []
    for label, spec, gpus in (
        ("small Lead Titanate", small_pbtio3_spec(), small_gpus),
        ("large Lead Titanate", large_pbtio3_spec(), large_gpus),
    ):
        predictor = PerformancePredictor(spec, machine=machine)
        rows = predictor.sweep(gpus, "gd")
        out.append(
            ScalingSeries(
                label=label,
                gpus=[r.gpus for r in rows],
                runtime_min=[float(r.runtime_min) for r in rows],
            )
        )
    return Fig7aResult(series=out)
