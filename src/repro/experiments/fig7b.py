"""Fig. 7b — runtime breakdown with and without APPP (large dataset).

Per-GPU-count bars of computation / GPU waiting / communication time, for
the APPP pipelined passes versus the all-reduce alternative ("w/o APPP").
The paper's headline observations, which this experiment checks:

* with APPP, communication overhead stays low even at 462 GPUs;
* without it, communication dominates at 462 GPUs (16x more comm time);
* GPU waiting time decreases as GPUs increase (263 min at 24 GPUs down to
  ~a second at 462).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.report import format_table
from repro.perfmodel.machine import MachineSpec, SUMMIT
from repro.perfmodel.predictor import PerformancePredictor
from repro.physics.dataset import large_pbtio3_spec

from repro.experiments.registry import register_experiment

__all__ = ["Fig7bResult", "run_fig7b"]


@dataclass
class BreakdownRow:
    """One bar group: mean per-rank minutes over the full 100 iterations."""

    gpus: int
    planner: str
    compute_min: float
    wait_min: float
    comm_min: float

    @property
    def total_min(self) -> float:
        return self.compute_min + self.wait_min + self.comm_min


@dataclass
class Fig7bResult:
    """All bar groups."""

    rows: List[BreakdownRow]

    def format(self) -> str:
        table_rows = [
            [r.gpus, r.planner, r.compute_min, r.wait_min, r.comm_min, r.total_min]
            for r in self.rows
        ]
        return format_table(
            ["GPUs", "planner", "compute min", "wait min", "comm min", "total"],
            table_rows,
            title="Fig. 7b — runtime breakdown, APPP vs w/o APPP (large dataset)",
        )

    # ------------------------------------------------------------------
    def comm_ratio(self, gpus: int) -> float:
        """comm(w/o APPP) / comm(APPP) at ``gpus`` (paper: 16x at 462)."""
        appp = next(
            r for r in self.rows if r.gpus == gpus and r.planner == "appp"
        )
        other = next(
            r for r in self.rows if r.gpus == gpus and r.planner != "appp"
        )
        if appp.comm_min == 0:
            return float("inf")
        return other.comm_min / appp.comm_min

    def wait_series(self, planner: str = "appp") -> Dict[int, float]:
        """GPU waiting minutes by GPU count (decreasing, per the paper)."""
        return {
            r.gpus: r.wait_min for r in self.rows if r.planner == planner
        }


@register_experiment("fig7b")
def run_fig7b(
    gpu_counts: Sequence[int] = (24, 54, 126, 198, 462),
    machine: MachineSpec = SUMMIT,
    iterations: int = 100,
) -> Fig7bResult:
    """Regenerate the Fig. 7b breakdown from the event simulation of the
    actual APPP and all-reduce schedules."""
    predictor = PerformancePredictor(
        large_pbtio3_spec(), machine=machine, iterations=iterations
    )
    rows: List[BreakdownRow] = []
    scale = iterations / 60.0
    for gpus in gpu_counts:
        for planner, label in (("appp", "appp"), ("allreduce", "w/o appp")):
            report = predictor.gd_report(gpus, planner=planner)
            rows.append(
                BreakdownRow(
                    gpus=gpus,
                    planner=label,
                    compute_min=report.mean("compute_s") * scale,
                    wait_min=report.mean("wait_s") * scale,
                    comm_min=report.mean("comm_s") * scale,
                )
            )
    return Fig7bResult(rows=rows)
