"""Fig. 8 — seam artifacts: Halo Voxel Exchange vs Gradient Decomposition.

This is a *numeric* experiment: both algorithms actually reconstruct the
same scaled-down PbTiO3 acquisition on the same tile mesh in the paper's
**high-overlap regime** (probe circles overlapping non-adjacent tiles,
Sec. IV), and the seam metric (:func:`repro.metrics.seam.seam_metric`)
quantifies tile-border discontinuities.

Faithful to the paper's Sec. II-C, the Halo Voxel Exchange runs several
*independent* local sweeps between voxel exchanges — the embarrassingly
parallel phase whose copy-paste synchronization imprints the seams of the
paper's Fig. 8(a).  The Gradient Decomposition accumulates gradients
instead and stays seam-free (Fig. 8(b)).

Note on Alg. 1: the experiment runs the gradient decomposition with
``compensate_local=True`` (buffer update excludes the locally-applied
gradients).  Algorithm 1 *as printed* re-applies local gradients inside
the accumulated buffer, which at practical step sizes overshoots in the
high-overlap regime (the instability the paper itself notes in Sec. VI-F)
— see DESIGN.md Sec. 6.  The faithful variant's seam score is also
reported for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.api.config import ReconstructionConfig
from repro.api.reconstruct import reconstruct
from repro.experiments.report import format_table
from repro.metrics.seam import seam_metric
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import (
    PtychoDataset,
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)

from repro.experiments.registry import register_experiment

__all__ = ["Fig8Result", "run_fig8"]


@dataclass
class Fig8Result:
    """Reconstructions + seam scores."""

    seam_gd: float
    seam_hve: float
    seam_serial: float
    volume_gd: np.ndarray = field(repr=False)
    volume_hve: np.ndarray = field(repr=False)
    volume_serial: np.ndarray = field(repr=False)
    dataset: PtychoDataset = field(repr=False)

    def format(self) -> str:
        rows = [
            ["serial reference", self.seam_serial, "(no tiles)"],
            ["Gradient Decomposition", self.seam_gd, "paper: seam-free"],
            ["Halo Voxel Exchange", self.seam_hve, "paper: visible seams"],
        ]
        return format_table(
            ["reconstruction", "seam score", "note"],
            rows,
            title="Fig. 8 — tile-border seam metric "
            "(boundary/background gradient ratio)",
        )

    @property
    def hve_has_seams(self) -> bool:
        """The paper's qualitative claim: HVE seams clearly above both the
        serial reference and the Gradient Decomposition."""
        return (
            self.seam_hve > 1.15 * self.seam_serial
            and self.seam_hve > 1.15 * self.seam_gd
        )

    @property
    def gd_seam_free(self) -> bool:
        """GD boundary statistics indistinguishable from serial (10%)."""
        return abs(self.seam_gd - self.seam_serial) <= 0.1 * self.seam_serial


@register_experiment("fig8")
def run_fig8(
    mesh: Optional[MeshLayout] = None,
    iterations: int = 12,
    inner_sweeps: int = 12,
    seed: int = 7,
) -> Fig8Result:
    """Run the seam-artifact comparison on a scaled high-overlap
    acquisition (3x3 mesh by default — the paper's running example)."""
    mesh = mesh if mesh is not None else MeshLayout(3, 3)
    spec = scaled_pbtio3_spec(
        scan_grid=(16, 16),
        detector_px=24,
        n_slices=2,
        circle_overlap=0.8,
        object_margin_px=4,
    )
    dataset = simulate_dataset(spec, seed=seed)
    lr = suggest_lr(dataset, alpha=0.35)

    mesh_json = [mesh.rows, mesh.cols]
    res_serial = reconstruct(
        dataset,
        ReconstructionConfig(
            solver="serial",
            solver_params={
                "iterations": iterations,
                "lr": float(lr),
                "scheme": "sgd",
            },
        ),
    )

    res_gd = reconstruct(
        dataset,
        ReconstructionConfig(
            solver="gd",
            solver_params={
                "mesh": mesh_json,
                "iterations": iterations,
                "lr": float(lr),
                "mode": "alg1",
                "sync_period": "iteration",
                "compensate_local": True,
            },
        ),
    )

    # One HVE "iteration" here = inner_sweeps independent local sweeps +
    # a voxel exchange, so total local sweeps match the other runs.
    res_hve = reconstruct(
        dataset,
        ReconstructionConfig(
            solver="hve",
            solver_params={
                "mesh": mesh_json,
                "iterations": max(1, iterations // inner_sweeps),
                "lr": float(lr),
                "extra_rows": 2,
                "inner_sweeps": inner_sweeps,
                "enforce_tile_constraint": False,
            },
        ),
    )

    decomp = res_gd.decomposition
    margin = spec.detector_px // 2
    return Fig8Result(
        seam_gd=seam_metric(res_gd.volume, decomp, margin=margin),
        seam_hve=seam_metric(res_hve.volume, decomp, margin=margin),
        seam_serial=seam_metric(res_serial.volume, decomp, margin=margin),
        volume_gd=res_gd.volume,
        volume_hve=res_hve.volume,
        volume_serial=res_serial.volume,
        dataset=dataset,
    )
