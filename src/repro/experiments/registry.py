"""Registry of paper-artifact experiments.

Each experiment module decorates its ``run_*`` function with
:func:`register_experiment`; the CLI's ``experiment --name`` choices and
dispatch both derive from :data:`EXPERIMENTS`, so adding an experiment
is one decorator — no dispatch table to update anywhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = [
    "EXPERIMENTS",
    "register_experiment",
    "experiment_names",
    "get_experiment",
]

#: name -> zero-argument runner returning a result with ``.format()``.
EXPERIMENTS: Dict[str, Callable[..., Any]] = {}


def register_experiment(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a ``run_*`` function under ``name``."""
    if not isinstance(name, str) or not name:
        raise ValueError("experiment name must be a non-empty string")

    def decorator(fn: Callable) -> Callable:
        if name in EXPERIMENTS:
            raise ValueError(f"experiment {name!r} is already registered")
        EXPERIMENTS[name] = fn
        return fn

    return decorator


def experiment_names() -> List[str]:
    """Sorted names of all registered experiments."""
    return sorted(EXPERIMENTS)


def get_experiment(name: str) -> Callable[..., Any]:
    """The runner registered under ``name``."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        registered = ", ".join(experiment_names()) or "(none)"
        raise ValueError(
            f"unknown experiment {name!r}; registered: {registered}"
        ) from None
