"""Experiment harness: one module per paper table/figure.

Each module exposes a ``run_*`` function returning a structured result
with a ``format()`` method that prints the paper's reported values next
to this reproduction's measured/modeled values.  The benchmark suite under
``benchmarks/`` calls these, and EXPERIMENTS.md records their output.

Every runner registers itself in :data:`EXPERIMENTS` (see
:mod:`repro.experiments.registry`); the CLI's ``experiment`` subcommand
derives both its choices and its dispatch from that registry.  The
numeric experiments (fig5/fig8/fig9) build their solvers through
:mod:`repro.api` configs, so they exercise the same code path as
``repro.reconstruct`` and the CLI.

=============  =======================================  ==================
paper artifact what it shows                            module
=============  =======================================  ==================
Table I        dataset sizes                            ``table1``
Table II       small-dataset scaling, both algorithms   ``table2``
Table III      large-dataset scaling, both algorithms   ``table3``
Fig. 7a        strong-scaling curves vs O(1/P)          ``fig7a``
Fig. 7b        compute/wait/comm breakdown, APPP vs w/o ``fig7b``
Fig. 8         seam artifacts                           ``fig8``
Fig. 9         convergence vs pass frequency            ``fig9``
=============  =======================================  ==================
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.experiments.table1 import run_table1
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.fig7a import run_fig7a
from repro.experiments.fig7b import run_fig7b
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9

__all__ = [
    "EXPERIMENTS",
    "experiment_names",
    "get_experiment",
    "register_experiment",
    "run_table1",
    "run_fig5",
    "run_fig6",
    "run_table2",
    "run_table3",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig9",
]
