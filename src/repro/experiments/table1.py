"""Table I — dataset sizes for measurements and reconstructions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import format_table
from repro.physics.dataset import (
    DatasetSpec,
    large_pbtio3_spec,
    small_pbtio3_spec,
)

from repro.experiments.registry import register_experiment

__all__ = ["Table1Result", "run_table1"]

#: Paper Table I reference values.
PAPER_TABLE1 = {
    "pbtio3-small": {
        "measurements": "1024 x 1024 x 4158",
        "reconstruction": "1536 x 1536 x 100",
        "resolution": "10 x 10 x 125 pm^3",
    },
    "pbtio3-large": {
        "measurements": "1024 x 1024 x 16632",
        "reconstruction": "3072 x 3072 x 100",
        "resolution": "10 x 10 x 125 pm^3",
    },
}


@dataclass
class Table1Result:
    """Dataset inventory with byte sizes."""

    specs: List[DatasetSpec]

    def rows(self) -> List[List[str]]:
        out = []
        for s in self.specs:
            out.append(
                [
                    s.name,
                    f"{s.detector_px} x {s.detector_px} x {s.n_probes}",
                    f"{s.object_shape[0]} x {s.object_shape[1]} x {s.n_slices}",
                    f"{s.pixel_size_pm:g} x {s.pixel_size_pm:g} x "
                    f"{s.slice_thickness_pm:g} pm^3",
                    f"{s.measurement_bytes_total / 1e9:.1f}",
                    f"{s.volume_bytes_total / 1e9:.1f}",
                ]
            )
        return out

    def format(self) -> str:
        """Measured table next to the paper's reference values."""
        table = format_table(
            [
                "dataset",
                "measurements y",
                "reconstruction V",
                "voxel size",
                "y GB",
                "V GB",
            ],
            self.rows(),
            title="Table I — dataset sizes (this reproduction)",
        )
        ref_rows = [
            [name, v["measurements"], v["reconstruction"], v["resolution"]]
            for name, v in PAPER_TABLE1.items()
        ]
        ref = format_table(
            ["dataset", "measurements y", "reconstruction V", "voxel size"],
            ref_rows,
            title="Paper Table I (reference)",
        )
        return table + "\n\n" + ref

    def matches_paper(self) -> bool:
        """Structural equality with the paper's Table I."""
        for s in self.specs:
            ref = PAPER_TABLE1[s.name]
            ours = f"{s.detector_px} x {s.detector_px} x {s.n_probes}"
            if ours != ref["measurements"]:
                return False
            ours = f"{s.object_shape[0]} x {s.object_shape[1]} x {s.n_slices}"
            if ours != ref["reconstruction"]:
                return False
        return True


@register_experiment("table1")
def run_table1() -> Table1Result:
    """Build the Table I inventory from the full-size dataset specs."""
    return Table1Result(specs=[small_pbtio3_spec(), large_pbtio3_spec()])
