"""Fig. 6 — an example Lead Titanate image.

The paper's Fig. 6 shows a PbTiO3 slice where "each circle in the image
represents a small group of atoms".  We regenerate it from the synthetic
specimen generator and *verify* the physics it illustrates: the bright
circles are atomic columns arranged on the perovskite lattice with the
correct ~390 pm spacing, dominated by the heavy Pb sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.physics.potential import SpecimenSpec, make_specimen

from repro.experiments.registry import register_experiment

__all__ = ["Fig6Result", "run_fig6"]


def _find_peaks_2d(image: np.ndarray, threshold: float) -> List[Tuple[int, int]]:
    """Local maxima above ``threshold`` (8-neighbourhood)."""
    peaks = []
    rows, cols = image.shape
    for r in range(1, rows - 1):
        for c in range(1, cols - 1):
            v = image[r, c]
            if v < threshold:
                continue
            patch = image[r - 1 : r + 2, c - 1 : c + 2]
            if v >= patch.max():
                peaks.append((r, c))
    return peaks


@dataclass
class Fig6Result:
    """The rendered slice plus its structural analysis."""

    phase_image: np.ndarray = field(repr=False)
    atom_columns: List[Tuple[int, int]]
    lattice_spacing_px: float
    spec: SpecimenSpec

    def format(self) -> str:
        expected = self.spec.lattice_a_pm / self.spec.pixel_size_pm
        lines = [
            "Fig. 6 — synthetic Lead Titanate slice",
            f"  field of view: {self.phase_image.shape[0]}x"
            f"{self.phase_image.shape[1]} px "
            f"({self.phase_image.shape[0] * self.spec.pixel_size_pm / 1000:.1f} nm)",
            f"  atomic columns detected: {len(self.atom_columns)}",
            f"  measured lattice spacing: {self.lattice_spacing_px:.1f} px "
            f"(expected {expected:.1f} px = {self.spec.lattice_a_pm:g} pm)",
            "",
            self.ascii_render(),
        ]
        return "\n".join(lines)

    def ascii_render(self, width: int = 64) -> str:
        """Downsampled ASCII view of the phase image (the paper's circles
        appear as bright blobs)."""
        img = self.phase_image
        step = max(1, img.shape[1] // width)
        sampled = img[::step, ::step]
        lo, hi = sampled.min(), sampled.max()
        scale = " .:-=+*#%@"
        norm = (sampled - lo) / max(hi - lo, 1e-12)
        rows = []
        for r in range(sampled.shape[0]):
            rows.append(
                "".join(scale[int(v * (len(scale) - 1))] for v in norm[r])
            )
        return "\n".join(rows)

    def lattice_matches(self, tolerance: float = 0.15) -> bool:
        """Measured column spacing within ``tolerance`` of the PbTiO3
        lattice constant."""
        expected = self.spec.lattice_a_pm / self.spec.pixel_size_pm
        return abs(self.lattice_spacing_px - expected) <= tolerance * expected


@register_experiment("fig6")
def run_fig6(shape: Tuple[int, int] = (192, 192)) -> Fig6Result:
    """Render and analyze a PbTiO3 slice."""
    spec = SpecimenSpec(shape=shape, n_slices=2)
    volume = make_specimen(spec)  # perfect crystal for clean analysis
    phase = np.angle(volume[0])

    peaks = _find_peaks_2d(phase, threshold=0.5 * phase.max())
    # Nearest-neighbour spacing among detected columns.
    spacing = float("nan")
    if len(peaks) >= 2:
        pts = np.asarray(peaks, dtype=np.float64)
        dists = []
        for i in range(len(pts)):
            d = np.hypot(
                pts[:, 0] - pts[i, 0], pts[:, 1] - pts[i, 1]
            )
            d[i] = np.inf
            dists.append(d.min())
        spacing = float(np.median(dists))
    return Fig6Result(
        phase_image=phase,
        atom_columns=peaks,
        lattice_spacing_px=spacing,
        spec=spec,
    )
