"""Fig. 9 — convergence vs communication frequency (42 GPUs).

Three Gradient Decomposition runs differing only in the delayed
accumulation period ``T`` of Alg. 1:

* parallel passes after **every probe location** (T=1, paper's yellow);
* **twice per iteration** (red);
* **once per iteration** (blue).

The paper's observation (Sec. VI-F): the reduced frequencies are not only
cheaper in communication, they converge slightly *faster*, because
per-probe passes overshoot in the overlap regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.config import ReconstructionConfig
from repro.api.reconstruct import reconstruct
from repro.experiments.report import format_table
from repro.metrics.convergence import auc_cost, relative_decrease
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import (
    PtychoDataset,
    scaled_pbtio3_spec,
    simulate_dataset,
    suggest_lr,
)

from repro.experiments.registry import register_experiment

__all__ = ["Fig9Result", "run_fig9"]

#: The three communication frequencies of the figure.
FREQUENCIES = {
    "every probe location": "probe",
    "twice per iteration": "half",
    "once per iteration": "iteration",
}


@dataclass
class Fig9Result:
    """Cost histories per communication frequency."""

    histories: Dict[str, List[float]]
    message_counts: Dict[str, int]

    def format(self) -> str:
        rows = []
        for label, history in self.histories.items():
            rows.append(
                [
                    label,
                    history[0],
                    history[-1],
                    relative_decrease(history),
                    auc_cost(history),
                    self.message_counts[label],
                ]
            )
        return format_table(
            [
                "pass frequency",
                "initial cost",
                "final cost",
                "final/initial",
                "AUC",
                "messages",
            ],
            rows,
            title="Fig. 9 — convergence vs communication frequency",
        )

    # ------------------------------------------------------------------
    def reduced_frequency_wins(self) -> bool:
        """Paper's claim: once/twice per iteration converge at least as
        fast as per-probe passes (by area under the cost curve)."""
        per_probe = auc_cost(self.histories["every probe location"])
        others = [
            auc_cost(h)
            for k, h in self.histories.items()
            if k != "every probe location"
        ]
        return all(a <= per_probe * 1.02 for a in others)

    def communication_savings(self) -> float:
        """Message-count ratio: per-probe passes vs once-per-iteration."""
        return self.message_counts["every probe location"] / max(
            self.message_counts["once per iteration"], 1
        )


@register_experiment("fig9")
def run_fig9(
    mesh: Optional[MeshLayout] = None,
    iterations: int = 10,
    seed: int = 23,
) -> Fig9Result:
    """Run the three-frequency convergence study.

    The paper uses 42 GPUs; the default mesh is the same 6x7 grid on a
    scaled acquisition with matching overlap structure.
    """
    mesh = mesh if mesh is not None else MeshLayout(6, 7)
    spec = scaled_pbtio3_spec(
        scan_grid=(12, 14), detector_px=20, n_slices=2, overlap_ratio=0.75
    )
    dataset = simulate_dataset(spec, seed=seed)
    lr = suggest_lr(dataset, alpha=0.3)

    histories: Dict[str, List[float]] = {}
    message_counts: Dict[str, int] = {}
    for label, period in FREQUENCIES.items():
        config = ReconstructionConfig(
            solver="gd",
            solver_params={
                "mesh": [mesh.rows, mesh.cols],
                "iterations": iterations,
                "lr": float(lr),
                "mode": "alg1",
                "sync_period": period,
            },
        )
        result = reconstruct(dataset, config)
        histories[label] = result.history
        message_counts[label] = result.messages
    return Fig9Result(histories=histories, message_counts=message_counts)
