"""Shared report formatting for the experiment harness."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "fmt"]


def fmt(value: Any, digits: int = 2) -> str:
    """Human-friendly cell formatting (numbers rounded, NA passed through)."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
