"""Diffraction-measurement stores: where ``|y_i|`` lives during a run.

The numeric engine historically materialized every measured amplitude in
RAM (the ``(N, det, det)`` stack of :class:`~repro.physics.dataset.
PtychoDataset`).  That is exactly what the paper's memory-efficiency
argument says must *not* happen at scale — Table I's large acquisition is
70 GB of measurements before a single voxel is allocated.  A
:class:`DiffractionStore` abstracts the measurement source so the engine
reads amplitudes on demand:

* :class:`InMemoryStore` — the reference: zero-copy views into an
  in-RAM stack.  The engine's default; bit-identical to the historical
  behaviour (including its per-rank measurement-shard byte accounting).
* :class:`ChunkedNpzStore` — write-once, chunked, single-file on-disk
  store (an uncompressed zip of ``.npy`` chunk members plus a JSON
  header).  Chunks load lazily into a small LRU cache; sequential reads
  can overlap I/O with compute via a background prefetcher.
* :class:`Hdf5Store` — the same layout on HDF5 chunked datasets, for
  interoperability with beamline pipelines.  Import-guarded: registered
  always, usable only where ``h5py`` is installed.

``open_store`` resolves the ``data_source`` spelling used by configs and
the CLI (``None``/``"memory"`` → in-memory; a path → on-disk, dispatched
on extension) — mirroring how backend/executor names resolve through
their registries.

All stores return amplitudes at *storage* dtype (``float16`` for the
simulated acquisitions); precision conversion stays in the compute
layer, so swapping stores can never change numerics — the invariant the
parity suite in ``tests/data`` pins.
"""

from __future__ import annotations

import json
import threading
import time
import zipfile
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.prefetch import ChunkPrefetcher
from repro.obs import telemetry as _obs

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.physics.dataset import PtychoDataset

__all__ = [
    "DiffractionStore",
    "InMemoryStore",
    "ChunkedNpzStore",
    "Hdf5Store",
    "StoreFormatError",
    "StoreUnavailableError",
    "open_store",
    "write_store",
]

#: Zip member holding the chunked-store header.
_META_MEMBER = "store_meta.json"
_STORE_KIND = "repro-diffraction-store"
_STORE_VERSION = 1
#: Default probes per on-disk chunk (write side).
DEFAULT_CHUNK_SIZE = 64
#: Default resident chunks on the read side (current + next).
DEFAULT_CACHE_CHUNKS = 2

_HDF5_SUFFIXES = (".h5", ".hdf5")


class StoreFormatError(ValueError):
    """Raised when a file is not (or is an incompatible version of) a
    diffraction store."""


class StoreUnavailableError(RuntimeError):
    """Raised when a store format needs an optional dependency that is
    not installed here (mirrors
    :class:`repro.backend.BackendUnavailableError`)."""


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class DiffractionStore(ABC):
    """One measurement source: indexed reads of ``|y_i|`` amplitudes.

    Reads return arrays at the store's native dtype; callers convert to
    compute precision (exactly as they did for the in-RAM stack, which
    keeps every store swap numerics-neutral).
    """

    @property
    @abstractmethod
    def n_probes(self) -> int:
        """Number of stored probe positions."""

    @property
    @abstractmethod
    def detector_px(self) -> int:
        """Side length of each stored amplitude frame."""

    @property
    @abstractmethod
    def dtype(self) -> np.dtype:
        """Native storage dtype of the amplitudes."""

    @abstractmethod
    def read(self, index: int) -> np.ndarray:
        """The ``(det, det)`` amplitude frame of probe ``index``."""

    def read_batch(self, indices: Sequence[int]) -> np.ndarray:
        """``(B, det, det)`` stack for ``indices`` (gathered reads).

        The default stacks :meth:`read` results; chunked stores override
        to serve runs of indices from already-resident chunks.
        """
        return np.stack([self.read(i) for i in indices])

    def shard_nbytes(self, indices: Sequence[int]) -> int:
        """Resident bytes a rank holding ``indices`` pays this store.

        The in-memory reference pins the whole shard; out-of-core stores
        report their bounded cache instead — the quantity the memory
        tracker records per rank.
        """
        itemsize = self.dtype.itemsize
        return len(indices) * self.detector_px**2 * itemsize

    @property
    def frame_nbytes(self) -> int:
        """Bytes of one stored amplitude frame."""
        return self.detector_px**2 * self.dtype.itemsize

    def close(self) -> None:
        """Release file handles / prefetch workers.  Idempotent."""
        return

    def worker_copy(self) -> "DiffractionStore":
        """A copy safe for a *forked* worker process to read from.

        Fork inherits open file descriptors, so workers sharing the
        parent's handle would race on one seek position; file-backed
        stores override this to open their own handle.  The in-memory
        reference returns itself (fork page-sharing is exactly what it
        wants).  Under ``spawn`` the pickle path already drops handles,
        and this reduces to a cheap reopen.
        """
        return self

    def __enter__(self) -> "DiffractionStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_probes={self.n_probes}, "
            f"detector_px={self.detector_px}, dtype={self.dtype})"
        )


# ----------------------------------------------------------------------
# In-memory reference
# ----------------------------------------------------------------------
class InMemoryStore(DiffractionStore):
    """Zero-copy views into an in-RAM ``(N, det, det)`` amplitude stack
    — the reference implementation and the engine's default."""

    def __init__(self, amplitudes: np.ndarray) -> None:
        amplitudes = np.asarray(amplitudes)
        if amplitudes.ndim != 3 or amplitudes.shape[1] != amplitudes.shape[2]:
            raise ValueError(
                f"amplitudes must be (N, det, det), got {amplitudes.shape}"
            )
        self._amplitudes = amplitudes

    @property
    def n_probes(self) -> int:
        return self._amplitudes.shape[0]

    @property
    def detector_px(self) -> int:
        return self._amplitudes.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self._amplitudes.dtype

    def read(self, index: int) -> np.ndarray:
        return self._amplitudes[index]

    def read_batch(self, indices: Sequence[int]) -> np.ndarray:
        # Fancy indexing gathers the whole batch in one pass.
        return self._amplitudes[np.asarray(indices, dtype=np.intp)]


# ----------------------------------------------------------------------
# Chunked single-file on-disk store (.npz-style zip)
# ----------------------------------------------------------------------
class ChunkedNpzStore(DiffractionStore):
    """Write-once chunked store in one uncompressed zip file.

    Layout: a JSON header member plus ``chunk_%05d.npy`` members of
    ``chunk_size`` consecutive frames each (the last chunk may be
    ragged).  Uncompressed members make a chunk read one seek + one
    ``np.lib.format`` parse, and the single-file form travels like any
    ``.npz`` archive.

    Reads are lazy: at most ``cache_chunks`` chunks stay resident (LRU),
    so a rank streaming its shard holds ``O(cache_chunks * chunk)``
    bytes instead of the whole shard.  With ``prefetch=True`` a single
    background worker loads the *next* chunk while the caller computes
    on the current one (sequential raster reads are the common access
    pattern).

    Instances pickle by path — open handles, cache and prefetcher are
    dropped and lazily rebuilt — so a store rides an
    :class:`~repro.runtime.executor.EnginePlan` into worker processes,
    each of which then reads the file independently.
    """

    def __init__(
        self,
        path: Union[str, Path],
        cache_chunks: int = DEFAULT_CACHE_CHUNKS,
        prefetch: bool = False,
    ) -> None:
        if cache_chunks <= 0:
            raise ValueError("cache_chunks must be positive")
        self.path = Path(path)
        self.cache_chunks = int(cache_chunks)
        self.prefetch = bool(prefetch)
        self._zip: Optional[zipfile.ZipFile] = None
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._prefetcher: Optional[ChunkPrefetcher] = None
        # Serializes chunk I/O against close(): the shared zip handle
        # seeks, so concurrent member reads (prefetch worker vs caller)
        # would corrupt each other, and a close racing an in-flight
        # read could be undone by the lazy reopen in _zipfile() —
        # leaking the file descriptor.  The lock makes close() wait for
        # the in-flight read, and _closed makes every later read fail
        # pointedly instead of silently reopening.
        self._io_lock = threading.Lock()
        self._closed = False
        self._meta = self._read_meta()

    # -- header --------------------------------------------------------
    def _read_meta(self) -> Dict:
        try:
            with zipfile.ZipFile(self.path) as zf:
                if _META_MEMBER not in zf.namelist():
                    raise StoreFormatError(
                        f"{self.path} is not a chunked diffraction store "
                        f"(missing {_META_MEMBER})"
                    )
                meta = json.loads(zf.read(_META_MEMBER).decode("utf-8"))
        except zipfile.BadZipFile as exc:
            raise StoreFormatError(
                f"{self.path} is not a chunked diffraction store: {exc}"
            ) from None
        if meta.get("kind") != _STORE_KIND:
            raise StoreFormatError(
                f"{self.path} holds {meta.get('kind')!r}, not {_STORE_KIND!r}"
            )
        if int(meta.get("version", 0)) > _STORE_VERSION:
            raise StoreFormatError(
                f"{self.path} uses store format v{meta['version']}; this "
                f"build reads <= v{_STORE_VERSION}"
            )
        return meta

    # -- protocol ------------------------------------------------------
    @property
    def n_probes(self) -> int:
        return int(self._meta["n_probes"])

    @property
    def detector_px(self) -> int:
        return int(self._meta["detector_px"])

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._meta["dtype"])

    @property
    def chunk_size(self) -> int:
        """Frames per on-disk chunk (write-time choice)."""
        return int(self._meta["chunk_size"])

    @property
    def n_chunks(self) -> int:
        """Number of on-disk chunks."""
        return -(-self.n_probes // self.chunk_size)

    @property
    def chunk_nbytes(self) -> int:
        """Bytes of one full chunk."""
        return self.chunk_size * self.frame_nbytes

    def shard_nbytes(self, indices: Sequence[int]) -> int:
        """Resident bytes are cache-bounded, not shard-sized — the
        out-of-core memory win the tracker should report."""
        full = super().shard_nbytes(indices)
        return min(full, self.cache_chunks * self.chunk_nbytes)

    def read(self, index: int) -> np.ndarray:
        if not (0 <= index < self.n_probes):
            raise IndexError(
                f"probe index {index} out of range [0, {self.n_probes})"
            )
        ci, offset = divmod(index, self.chunk_size)
        return self._chunk(ci)[offset]

    def read_batch(self, indices: Sequence[int]) -> np.ndarray:
        out = np.empty(
            (len(indices), self.detector_px, self.detector_px),
            dtype=self.dtype,
        )
        for b, index in enumerate(indices):
            out[b] = self.read(index)
        return out

    # -- chunk I/O -----------------------------------------------------
    def _zipfile(self) -> zipfile.ZipFile:
        # Callers hold _io_lock.
        if self._closed:
            raise ValueError(
                f"store {self.path} is closed; reads after close() are "
                "a lifecycle bug (reopen via worker_copy() if needed)"
            )
        if self._zip is None:
            self._zip = zipfile.ZipFile(self.path)
        return self._zip

    def _read_chunk_member(self, ci: int) -> np.ndarray:
        with self._io_lock:
            with self._zipfile().open(_chunk_member(ci)) as member:
                return np.lib.format.read_array(member, allow_pickle=False)

    def _load_chunk(self, ci: int) -> np.ndarray:
        tel = _obs.current()
        if not tel.enabled:
            return self._read_chunk_member(ci)
        t0 = time.perf_counter()
        chunk = self._read_chunk_member(ci)
        tel.add({
            "store.chunk_load.calls": 1,
            "store.chunk_load.seconds": time.perf_counter() - t0,
        })
        return chunk

    def _chunk(self, ci: int) -> np.ndarray:
        tel = _obs.current()
        cached = self._cache.get(ci)
        if cached is not None:
            if tel.enabled:
                tel.count("store.cache.hits")
            self._cache.move_to_end(ci)
        else:
            if tel.enabled:
                tel.count("store.cache.misses")
            pending = (
                self._prefetcher.take(ci)
                if self._prefetcher is not None
                else None
            )
            cached = pending if pending is not None else self._load_chunk(ci)
            self._cache[ci] = cached
            while len(self._cache) > self.cache_chunks:
                self._cache.popitem(last=False)
        if self.prefetch and ci + 1 < self.n_chunks:
            nxt = ci + 1
            if nxt not in self._cache:
                if self._prefetcher is None:
                    self._prefetcher = ChunkPrefetcher(self._load_chunk)
                self._prefetcher.schedule(nxt)
        return cached

    def stats(self) -> Dict[str, int]:
        """Prefetch/cache statistics (for the benchmark harness)."""
        out = {"resident_chunks": len(self._cache)}
        if self._prefetcher is not None:
            out.update(self._prefetcher.stats())
        return out

    # -- lifecycle / pickling ------------------------------------------
    def close(self) -> None:
        # Order matters: stop the prefetch worker first (cancelling
        # queued loads, waiting out a running one), *then* mark closed
        # and drop the handle under the IO lock — an in-flight caller
        # read finishes cleanly, and everything after it raises instead
        # of lazily reopening the file it just watched close.
        prefetcher, self._prefetcher = self._prefetcher, None
        if prefetcher is not None:
            prefetcher.close()
        with self._io_lock:
            self._closed = True
            zf, self._zip = self._zip, None
            self._cache.clear()
        # Evicted under the lock, closed outside it: close() does file
        # I/O and must not extend the critical section readers contend
        # on.  _closed already makes any later _zipfile() call fail.
        if zf is not None:
            zf.close()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_zip"] = None
        state["_cache"] = OrderedDict()
        state["_prefetcher"] = None
        del state["_io_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._io_lock = threading.Lock()

    def worker_copy(self) -> "ChunkedNpzStore":
        return ChunkedNpzStore(
            self.path,
            cache_chunks=self.cache_chunks,
            prefetch=self.prefetch,
        )

    # -- writer --------------------------------------------------------
    @classmethod
    def write(
        cls,
        path: Union[str, Path],
        amplitudes: np.ndarray,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Path:
        """Write a chunked store from an ``(N, det, det)`` stack.

        One pass, one chunk in flight — the writer never holds more than
        ``chunk_size`` frames beyond the input itself, so it also serves
        as the streaming sink for simulation pipelines.
        """
        amplitudes = np.asarray(amplitudes)
        if amplitudes.ndim != 3 or amplitudes.shape[1] != amplitudes.shape[2]:
            raise ValueError(
                f"amplitudes must be (N, det, det), got {amplitudes.shape}"
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        path = Path(path)
        n = amplitudes.shape[0]
        meta = {
            "kind": _STORE_KIND,
            "version": _STORE_VERSION,
            "n_probes": int(n),
            "detector_px": int(amplitudes.shape[1]),
            "dtype": amplitudes.dtype.name,
            "chunk_size": int(chunk_size),
        }
        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
            zf.writestr(_META_MEMBER, json.dumps(meta, indent=2))
            for ci, start in enumerate(range(0, n, chunk_size)):
                chunk = np.ascontiguousarray(
                    amplitudes[start : start + chunk_size]
                )
                with zf.open(_chunk_member(ci), "w") as member:
                    np.lib.format.write_array(
                        member, chunk, allow_pickle=False
                    )
        return path


def _chunk_member(ci: int) -> str:
    return f"chunk_{ci:05d}.npy"


# ----------------------------------------------------------------------
# HDF5 store (optional dependency)
# ----------------------------------------------------------------------
def _h5py():
    try:
        import h5py
    except ImportError:
        raise StoreUnavailableError(
            "the HDF5 diffraction store needs h5py, which is not "
            "installed; use the chunked .npz store instead"
        ) from None
    return h5py


class Hdf5Store(DiffractionStore):
    """Chunked HDF5 store: dataset ``amplitudes`` of shape
    ``(N, det, det)``, chunked ``(chunk_size, det, det)``.

    Same read contract as :class:`ChunkedNpzStore` (HDF5's own chunk
    cache plays the LRU role).  Import-guarded: constructing or writing
    raises :class:`StoreUnavailableError` where ``h5py`` is missing.
    """

    def __init__(self, path: Union[str, Path], prefetch: bool = False) -> None:
        h5py = _h5py()
        self.path = Path(path)
        self.prefetch = bool(prefetch)  # h5py reads are already buffered
        self._file = h5py.File(self.path, "r")
        if "amplitudes" not in self._file:
            self._file.close()
            raise StoreFormatError(
                f"{self.path} has no 'amplitudes' dataset"
            )
        self._ds = self._file["amplitudes"]
        if self._ds.ndim != 3 or self._ds.shape[1] != self._ds.shape[2]:
            self._file.close()
            raise StoreFormatError(
                f"{self.path} amplitudes dataset is {self._ds.shape}, "
                "expected (N, det, det)"
            )

    @classmethod
    def available(cls) -> bool:
        """Whether ``h5py`` is importable here."""
        try:
            _h5py()
        except StoreUnavailableError:
            return False
        return True

    @property
    def n_probes(self) -> int:
        return int(self._ds.shape[0])

    @property
    def detector_px(self) -> int:
        return int(self._ds.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._ds.dtype)

    def shard_nbytes(self, indices: Sequence[int]) -> int:
        full = super().shard_nbytes(indices)
        chunks = self._ds.chunks
        if chunks is None:  # pragma: no cover - contiguous layout
            return full
        return min(full, DEFAULT_CACHE_CHUNKS * chunks[0] * self.frame_nbytes)

    def read(self, index: int) -> np.ndarray:
        return self._ds[index]

    def read_batch(self, indices: Sequence[int]) -> np.ndarray:
        # h5py fancy selection needs increasing, duplicate-free
        # indices; one selection read + an inverse-permutation scatter
        # beats B scalar dataset reads (per-call HDF5 overhead).
        idx = np.asarray(indices, dtype=np.intp)
        unique, inverse = np.unique(idx, return_inverse=True)
        data = self._ds[unique.tolist()]
        return np.ascontiguousarray(data[inverse])

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._ds = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_file"] = None
        state["_ds"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.path is not None:
            fresh = Hdf5Store(self.path, prefetch=self.prefetch)
            self._file = fresh._file
            self._ds = fresh._ds

    def worker_copy(self) -> "Hdf5Store":
        return Hdf5Store(self.path, prefetch=self.prefetch)

    @classmethod
    def write(
        cls,
        path: Union[str, Path],
        amplitudes: np.ndarray,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Path:
        """Write an HDF5 store from an ``(N, det, det)`` stack."""
        h5py = _h5py()
        amplitudes = np.asarray(amplitudes)
        if amplitudes.ndim != 3 or amplitudes.shape[1] != amplitudes.shape[2]:
            raise ValueError(
                f"amplitudes must be (N, det, det), got {amplitudes.shape}"
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        path = Path(path)
        chunk = (
            min(chunk_size, amplitudes.shape[0]),
            amplitudes.shape[1],
            amplitudes.shape[2],
        )
        with h5py.File(path, "w") as f:
            f.create_dataset("amplitudes", data=amplitudes, chunks=chunk)
        return path


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def open_store(
    source: Union[str, Path, DiffractionStore, None],
    dataset: Optional["PtychoDataset"] = None,
    prefetch: bool = False,
) -> Tuple[DiffractionStore, bool]:
    """Resolve a ``data_source`` spelling to a store.

    ``None`` or ``"memory"`` wraps ``dataset.amplitudes`` in the
    in-memory reference (``dataset`` required); a path dispatches on
    extension (``.h5``/``.hdf5`` → HDF5, anything else → chunked zip);
    a store instance passes through untouched (but is still
    geometry-checked against ``dataset`` when one is given).

    Returns ``(store, owned)`` — ``owned`` is True when this call opened
    the store, i.e. the caller is responsible for closing it (instances
    passed through belong to whoever built them).
    """
    if isinstance(source, DiffractionStore):
        if dataset is not None:
            _check_store_matches(source, dataset, source, owned=False)
        return source, False
    if source is None or source == "memory":
        if dataset is None:
            raise ValueError(
                "data_source 'memory' needs a dataset to wrap"
            )
        return InMemoryStore(dataset.amplitudes), True
    path = Path(source)
    if not path.is_file():
        raise ValueError(
            f"data_source {str(source)!r} does not exist (write one "
            f"with repro.data.write_store or the CLI store subcommand)"
        )
    if path.suffix.lower() in _HDF5_SUFFIXES:
        store: DiffractionStore = Hdf5Store(path, prefetch=prefetch)
    else:
        store = ChunkedNpzStore(path, prefetch=prefetch)
    if dataset is not None:
        _check_store_matches(store, dataset, path, owned=True)
    return store, True


def _check_store_matches(
    store: DiffractionStore, dataset: "PtychoDataset", where, owned: bool
) -> None:
    if store.n_probes != dataset.n_probes or (
        store.detector_px != dataset.spec.detector_px
    ):
        if owned:
            store.close()
        raise ValueError(
            f"store {where} holds {store.n_probes} x "
            f"{store.detector_px}px frames but the dataset expects "
            f"{dataset.n_probes} x {dataset.spec.detector_px}px"
        )


def write_store(
    path: Union[str, Path],
    dataset: "PtychoDataset",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    fmt: Optional[str] = None,
) -> Path:
    """Write-once export of a dataset's measurements to an on-disk store.

    ``fmt`` is ``"npz"`` or ``"hdf5"``; ``None`` infers from the path
    extension (``.h5``/``.hdf5`` → HDF5, else chunked zip).  An
    explicit ``fmt`` contradicting the extension is rejected —
    :func:`open_store` dispatches by extension, so a mismatched file
    could be written but never read back.
    """
    extension_fmt = (
        "hdf5" if Path(path).suffix.lower() in _HDF5_SUFFIXES else "npz"
    )
    if fmt is None:
        fmt = extension_fmt
    elif fmt in ("npz", "hdf5") and fmt != extension_fmt:
        raise ValueError(
            f"format {fmt!r} contradicts the {Path(path).suffix!r} "
            f"extension of {path} — open_store dispatches by "
            f"extension, so this store could never be read back; "
            f"rename the file or drop the explicit format"
        )
    if fmt == "hdf5":
        return Hdf5Store.write(path, dataset.amplitudes, chunk_size)
    if fmt == "npz":
        return ChunkedNpzStore.write(path, dataset.amplitudes, chunk_size)
    raise ValueError(f"unknown store format {fmt!r}; choose npz or hdf5")
