"""Dynamic acquisition: measurement stores that grow while a run runs.

Every store in :mod:`repro.data.store` is *static* — the full
diffraction set exists before iteration 0.  The paper's target scenario
is the opposite: a beamline where acquisition outpaces reconstruction,
so frames arrive *while* the solver sweeps.  This module supplies the
dynamic half of the data layer:

* :class:`StreamingStore` — an appendable :class:`~repro.data.store.
  DiffractionStore` with a thread-safe frame journal.  Readers either
  proceed on the currently-covered position subset (``coverage()``/
  ``poll()``) or block with a timeout (``wait_for``) until enough
  frames exist — the WAIT side of the WAIT/END_OF_SCAN semantics.
  ``mark_end_of_scan()`` is the END_OF_SCAN side: once set, waiters
  settle immediately even when fewer frames than advertised arrived.
* :class:`ScanSource` — the protocol a frame producer implements:
  advertised geometry plus a deterministic wave schedule.
* :class:`SimulatedScanSource` — scripted arrival schedules (waves,
  stalls, out-of-order positions, an explicit end-of-scan marker) for
  tests and smoke runs.
* :class:`ReplayScanSource` — replays any existing measurement stack or
  store incrementally, in ``K`` contiguous waves — how an archived
  acquisition is fed back through the streaming path.
* :class:`StreamFeeder` — delivers a source's waves into a
  :class:`StreamingStore`, either synchronously keyed on solver sweeps
  (``feed_until``) or from a background thread on a timed schedule.
* :class:`StreamPolicy` — the run-level knobs (wait timeout, minimum
  start coverage, sweeps per coverage snapshot, deterministic
  re-weighting, restart-on-growth).

Everything here is deterministic by construction: a given schedule
always delivers the same frames in the same journal order, which is
what lets the parity suite pin streamed runs against static replays.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.data.store import DiffractionStore

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.physics.dataset import PtychoDataset

__all__ = [
    "StreamError",
    "StreamTimeout",
    "StreamStatus",
    "StreamingStore",
    "ScanWave",
    "ScanSource",
    "SimulatedScanSource",
    "ReplayScanSource",
    "StreamFeeder",
    "StreamPolicy",
    "build_scan_source",
]


class StreamError(RuntimeError):
    """A streaming-acquisition contract violation (duplicate frame,
    read of a frame that has not arrived, malformed schedule, ...)."""


class StreamTimeout(StreamError):
    """``wait_for`` exceeded its timeout before enough frames arrived
    and the scan had not ended — the clean surface of a stalled source."""


@dataclass(frozen=True)
class StreamStatus:
    """Snapshot of a stream: how much arrived, how much was promised."""

    arrived: int
    advertised: int
    end_of_scan: bool

    @property
    def complete(self) -> bool:
        """No more frames can change the run: full coverage or EOS."""
        return self.end_of_scan or self.arrived >= self.advertised


# ----------------------------------------------------------------------
# Appendable store
# ----------------------------------------------------------------------
class StreamingStore(DiffractionStore):
    """An appendable measurement store with WAIT/END_OF_SCAN semantics.

    The geometry (``n_probes`` *advertised*, ``detector_px``, storage
    dtype) is declared up front — that is what the acquisition promises
    — while frames arrive later via :meth:`append`.  A journal records
    the exact arrival order (``(seq, index)`` implicitly: position in
    :meth:`journal` is the sequence number), which the property suite
    uses to prove no frame is dropped, duplicated, or reordered.

    All mutation and inspection happens under one condition variable, so
    a background feeder thread and the solver thread can share an
    instance.  Reading a frame that has not arrived is a
    :class:`StreamError` — the engine only ever asks for covered
    positions, so such a read is a scheduling bug, not a wait.

    Instances pickle (the lock is rebuilt), so a store rides an
    ``EnginePlan`` into spawned workers; each worker then sees the
    frames that had arrived at pickling time — exactly the coverage
    snapshot its epoch was planned against.
    """

    def __init__(
        self, n_probes: int, detector_px: int, dtype: Union[str, np.dtype]
    ) -> None:
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        if detector_px <= 0:
            raise ValueError("detector_px must be positive")
        self._n_probes = int(n_probes)
        self._detector_px = int(detector_px)
        self._dtype = np.dtype(dtype)
        self._frames: Dict[int, np.ndarray] = {}
        self._journal: List[int] = []
        self._eos = False
        self._cond = threading.Condition()

    # -- DiffractionStore protocol -------------------------------------
    @property
    def n_probes(self) -> int:
        """*Advertised* probe count — what the scan promised, which may
        exceed what ever arrives when the scan ends early."""
        return self._n_probes

    @property
    def detector_px(self) -> int:
        return self._detector_px

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def read(self, index: int) -> np.ndarray:
        with self._cond:
            frame = self._frames.get(index)
        if frame is None:
            if not (0 <= index < self._n_probes):
                raise IndexError(
                    f"probe index {index} out of range [0, {self._n_probes})"
                )
            raise StreamError(
                f"frame {index} has not arrived yet "
                f"(coverage {len(self._frames)}/{self._n_probes}); "
                "plan sweeps over coverage(), or wait_for() more frames"
            )
        return frame

    # -- acquisition side ----------------------------------------------
    def append(self, index: int, frame: np.ndarray) -> None:
        """Deliver one frame.  Duplicate delivery, delivery after
        end-of-scan, and geometry mismatches are contract errors."""
        arr = np.asarray(frame, dtype=self._dtype)
        if arr.shape != (self._detector_px, self._detector_px):
            raise StreamError(
                f"frame {index} is {arr.shape}, expected "
                f"({self._detector_px}, {self._detector_px})"
            )
        if not (0 <= index < self._n_probes):
            raise StreamError(
                f"frame index {index} out of advertised range "
                f"[0, {self._n_probes})"
            )
        with self._cond:
            if self._eos:
                raise StreamError(
                    f"frame {index} arrived after end-of-scan"
                )
            if index in self._frames:
                raise StreamError(f"frame {index} delivered twice")
            self._frames[index] = arr
            self._journal.append(index)
            self._cond.notify_all()

    def extend(self, pairs: Iterable[Tuple[int, np.ndarray]]) -> None:
        """Deliver several ``(index, frame)`` pairs in order."""
        for index, frame in pairs:
            self.append(index, frame)

    def mark_end_of_scan(self) -> None:
        """Declare that no further frames will arrive.  Idempotent.
        Waiters wake immediately and settle on the covered subset."""
        with self._cond:
            self._eos = True
            self._cond.notify_all()

    # -- reader side ---------------------------------------------------
    def coverage(self) -> Tuple[int, ...]:
        """The sorted tuple of positions whose frames have arrived."""
        with self._cond:
            return tuple(sorted(self._frames))

    def journal(self) -> Tuple[int, ...]:
        """Frame indices in exact arrival order (the audit trail)."""
        with self._cond:
            return tuple(self._journal)

    def poll(self) -> StreamStatus:
        """Non-blocking status snapshot."""
        with self._cond:
            return StreamStatus(
                arrived=len(self._frames),
                advertised=self._n_probes,
                end_of_scan=self._eos,
            )

    def wait_for(
        self, n: int, timeout: Optional[float] = None
    ) -> StreamStatus:
        """Block until at least ``n`` frames arrived *or* end-of-scan.

        Returns the status that satisfied the wait — callers must check
        ``status.arrived`` because EOS legitimately releases the wait
        with fewer frames than asked for.  Raises :class:`StreamTimeout`
        when ``timeout`` (seconds, monotonic) elapses first.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        with self._cond:
            while len(self._frames) < n and not self._eos:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise StreamTimeout(
                        f"waited {timeout:g}s for {n} frames but only "
                        f"{len(self._frames)} arrived and the scan has "
                        "not ended — the source appears stalled"
                    )
                self._cond.wait(remaining)
            return StreamStatus(
                arrived=len(self._frames),
                advertised=self._n_probes,
                end_of_scan=self._eos,
            )

    # -- lifecycle / pickling ------------------------------------------
    def __getstate__(self):
        with self._cond:
            state = self.__dict__.copy()
            state["_frames"] = dict(self._frames)
            state["_journal"] = list(self._journal)
        del state["_cond"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cond = threading.Condition()

    def worker_copy(self) -> "StreamingStore":
        # Forked workers share the instance read-only (their epoch only
        # reads already-covered positions); spawned workers got a
        # coverage snapshot through the pickle path above.
        return self


# ----------------------------------------------------------------------
# Scan sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanWave:
    """One delivery burst of a scan schedule.

    ``frames`` arrive in the given order (out-of-order positions are the
    point).  A wave is gated either on solver progress (``after_sweep``:
    delivered once that many sweeps completed — the synchronous,
    perfectly reproducible mode) or on time (``delay_s`` seconds after
    the previous wave — the background-feeder mode).  ``end_of_scan``
    marks the scan over after this wave, even if fewer frames than
    advertised were delivered.
    """

    frames: Tuple[int, ...]
    after_sweep: Optional[int] = None
    delay_s: float = 0.0
    end_of_scan: bool = False


class ScanSource:
    """Protocol for frame producers: advertised geometry plus a
    deterministic wave schedule.  Subclasses provide frame payloads via
    :meth:`frame`."""

    @property
    def n_probes(self) -> int:
        """Advertised probe count (what the scan promises)."""
        raise NotImplementedError

    @property
    def detector_px(self) -> int:
        raise NotImplementedError

    @property
    def frame_dtype(self) -> np.dtype:
        raise NotImplementedError

    @property
    def waves(self) -> Tuple[ScanWave, ...]:
        raise NotImplementedError

    @property
    def mode(self) -> str:
        """``"sweep"`` (progress-gated) or ``"timed"`` (delay-gated)."""
        timed = any(w.delay_s > 0 for w in self.waves)
        gated = any(w.after_sweep is not None for w in self.waves)
        if timed and gated:
            raise StreamError(
                "scan schedule mixes after_sweep and delay_s gating; "
                "a schedule is either sweep-keyed or timed, not both"
            )
        return "timed" if timed else "sweep"

    def frame(self, index: int) -> np.ndarray:
        """The amplitude payload of probe ``index``."""
        raise NotImplementedError


def _validate_waves(
    waves: Sequence[ScanWave], n_probes: int
) -> Tuple[ScanWave, ...]:
    seen: set = set()
    for w, wave in enumerate(waves):
        if not wave.frames and not wave.end_of_scan:
            raise StreamError(f"wave {w} delivers no frames")
        for idx in wave.frames:
            if not (0 <= idx < n_probes):
                raise StreamError(
                    f"wave {w} frame {idx} out of advertised range "
                    f"[0, {n_probes})"
                )
            if idx in seen:
                raise StreamError(
                    f"frame {idx} scheduled twice (wave {w})"
                )
            seen.add(idx)
        if wave.delay_s < 0:
            raise StreamError(f"wave {w} has negative delay_s")
        if wave.after_sweep is not None and wave.after_sweep < 0:
            raise StreamError(f"wave {w} has negative after_sweep")
    return tuple(waves)


class SimulatedScanSource(ScanSource):
    """A deterministic scripted acquisition over an in-RAM stack.

    ``waves`` script exactly when each frame becomes visible; stalls are
    spelled as large ``delay_s`` gaps, out-of-order positions as frame
    lists in non-raster order, and an early scan end as a wave with
    ``end_of_scan=True`` before full coverage.  ``advertised`` defaults
    to the stack size but may exceed the scheduled frames — that is the
    "scan promised more than it delivered" fault the driver must settle
    gracefully.
    """

    def __init__(
        self,
        amplitudes: np.ndarray,
        waves: Sequence[ScanWave],
        advertised: Optional[int] = None,
    ) -> None:
        amplitudes = np.asarray(amplitudes)
        if amplitudes.ndim != 3 or amplitudes.shape[1] != amplitudes.shape[2]:
            raise ValueError(
                f"amplitudes must be (N, det, det), got {amplitudes.shape}"
            )
        self._amplitudes = amplitudes
        self._advertised = (
            int(advertised) if advertised is not None else amplitudes.shape[0]
        )
        if self._advertised <= 0 or self._advertised > amplitudes.shape[0]:
            raise ValueError(
                f"advertised must be in [1, {amplitudes.shape[0]}], "
                f"got {self._advertised}"
            )
        self._waves = _validate_waves(waves, self._advertised)
        self.mode  # validate gating consistency eagerly

    @property
    def n_probes(self) -> int:
        return self._advertised

    @property
    def detector_px(self) -> int:
        return int(self._amplitudes.shape[1])

    @property
    def frame_dtype(self) -> np.dtype:
        return self._amplitudes.dtype

    @property
    def waves(self) -> Tuple[ScanWave, ...]:
        return self._waves

    def frame(self, index: int) -> np.ndarray:
        return self._amplitudes[index]


class ReplayScanSource(ScanSource):
    """Replay an existing static acquisition incrementally.

    Splits the position range of a store (or raw stack) into
    ``n_waves`` contiguous waves keyed ``after_sweep = 0, 1, ...`` — the
    canonical "K-wave" schedule the parity suite compares against static
    runs restarted at the same coverage points.
    """

    def __init__(
        self,
        source: Union[DiffractionStore, np.ndarray],
        n_waves: int,
    ) -> None:
        if n_waves <= 0:
            raise ValueError("n_waves must be positive")
        if isinstance(source, DiffractionStore):
            self._store: Optional[DiffractionStore] = source
            self._amplitudes = None
            n = source.n_probes
        else:
            self._store = None
            self._amplitudes = np.asarray(source)
            if (
                self._amplitudes.ndim != 3
                or self._amplitudes.shape[1] != self._amplitudes.shape[2]
            ):
                raise ValueError(
                    "amplitudes must be (N, det, det), got "
                    f"{self._amplitudes.shape}"
                )
            n = self._amplitudes.shape[0]
        n_waves = min(int(n_waves), n)
        bounds = np.linspace(0, n, n_waves + 1).astype(int)
        self._waves = tuple(
            ScanWave(
                frames=tuple(range(int(bounds[w]), int(bounds[w + 1]))),
                after_sweep=w,
                end_of_scan=(w == n_waves - 1),
            )
            for w in range(n_waves)
        )
        self._n = n

    @property
    def n_probes(self) -> int:
        return self._n

    @property
    def detector_px(self) -> int:
        if self._store is not None:
            return self._store.detector_px
        return int(self._amplitudes.shape[1])

    @property
    def frame_dtype(self) -> np.dtype:
        if self._store is not None:
            return self._store.dtype
        return self._amplitudes.dtype

    @property
    def waves(self) -> Tuple[ScanWave, ...]:
        return self._waves

    def frame(self, index: int) -> np.ndarray:
        if self._store is not None:
            return np.asarray(self._store.read(index))
        return self._amplitudes[index]


# ----------------------------------------------------------------------
# Feeder
# ----------------------------------------------------------------------
class StreamFeeder:
    """Delivers a :class:`ScanSource`'s waves into a
    :class:`StreamingStore`.

    Sweep-keyed schedules are pumped synchronously from the solver
    thread (:meth:`feed_until` between coverage snapshots — perfectly
    reproducible, no real time involved).  Timed schedules run on a
    background thread (:meth:`start`/:meth:`stop`) that sleeps each
    wave's ``delay_s`` and then appends its frames.

    When every advertised frame has been delivered, end-of-scan is
    marked implicitly; an explicit ``end_of_scan`` wave marks it early.
    """

    def __init__(self, source: ScanSource, store: StreamingStore) -> None:
        self.source = source
        self.store = store
        self.mode = source.mode  # validates gating consistency
        self._next_wave = 0
        self._delivered = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def frames_delivered(self) -> int:
        """Frames appended so far (for telemetry accounting)."""
        return self._delivered

    def _deliver(self, wave: ScanWave) -> int:
        for idx in wave.frames:
            self.store.append(idx, self.source.frame(idx))
        self._delivered += len(wave.frames)
        status = self.store.poll()
        if wave.end_of_scan or status.arrived >= status.advertised:
            self.store.mark_end_of_scan()
        return len(wave.frames)

    # -- sweep-keyed (synchronous) mode --------------------------------
    def feed_until(self, sweeps_done: int) -> int:
        """Deliver every pending wave gated at or before ``sweeps_done``
        completed sweeps.  Returns the number of frames delivered."""
        if self.mode != "sweep":
            raise StreamError(
                "feed_until applies to sweep-keyed schedules; timed "
                "schedules run via start()/stop()"
            )
        delivered = 0
        waves = self.source.waves
        while self._next_wave < len(waves):
            wave = waves[self._next_wave]
            gate = wave.after_sweep if wave.after_sweep is not None else 0
            if gate > sweeps_done:
                break
            delivered += self._deliver(wave)
            self._next_wave += 1
        return delivered

    def exhausted(self) -> bool:
        """Whether every scheduled wave has been delivered."""
        return self._next_wave >= len(self.source.waves)

    def feed_all(self) -> int:
        """Deliver every remaining wave immediately (pre-arrival)."""
        delivered = 0
        waves = self.source.waves
        while self._next_wave < len(waves):
            delivered += self._deliver(waves[self._next_wave])
            self._next_wave += 1
        return delivered

    # -- timed (background) mode ---------------------------------------
    def start(self) -> None:
        """Run a timed schedule on a background thread."""
        if self.mode != "timed":
            raise StreamError(
                "start() applies to timed schedules; sweep-keyed "
                "schedules are pumped via feed_until()"
            )
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run_timed, name="stream-feeder", daemon=True
        )
        self._thread.start()

    def _run_timed(self) -> None:
        waves = self.source.waves
        while self._next_wave < len(waves):
            wave = waves[self._next_wave]
            if wave.delay_s > 0 and self._stop.wait(wave.delay_s):
                return
            if self._stop.is_set():
                return
            self._deliver(wave)
            self._next_wave += 1

    def stop(self) -> None:
        """Stop a timed feeder and join its thread.  Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamPolicy:
    """Run-level streaming knobs (the ``stream_policy`` config field).

    Attributes
    ----------
    wait_timeout_s:
        How long the driver waits for new frames when coverage is
        incomplete and nothing arrived during the last epoch, before
        surfacing :class:`StreamTimeout`.
    min_start_frames:
        Frames that must exist before iteration 0 runs.
    sweeps_per_epoch:
        Sweeps executed per coverage snapshot while the stream is
        still growing (once coverage is complete or the scan ended, the
        remaining iterations run in one final epoch).
    reweight:
        Deterministically scale the learning rate by
        ``advertised / covered`` while coverage is partial, so early
        sparse sweeps take proportionally larger steps.  Requires an
        explicit ``lr`` in ``solver_params``.
    on_growth:
        ``"continue"`` keeps the warm start when coverage grows;
        ``"restart"`` discards the volume and starts the epoch from
        vacuum whenever new positions appeared.
    """

    wait_timeout_s: float = 30.0
    min_start_frames: int = 1
    sweeps_per_epoch: int = 1
    reweight: bool = False
    on_growth: str = "continue"

    def __post_init__(self) -> None:
        if self.wait_timeout_s <= 0:
            raise ValueError("wait_timeout_s must be positive")
        if self.min_start_frames <= 0:
            raise ValueError("min_start_frames must be positive")
        if self.sweeps_per_epoch <= 0:
            raise ValueError("sweeps_per_epoch must be positive")
        if self.on_growth not in ("continue", "restart"):
            raise ValueError(
                f"on_growth must be 'continue' or 'restart', "
                f"got {self.on_growth!r}"
            )

    @classmethod
    def from_mapping(
        cls, payload: Optional[Mapping[str, Any]]
    ) -> "StreamPolicy":
        """Build from a config's ``stream_policy`` JSON mapping."""
        if payload is None:
            return cls()
        known = {
            "wait_timeout_s",
            "min_start_frames",
            "sweeps_per_epoch",
            "reweight",
            "on_growth",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown stream_policy keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(payload))


# ----------------------------------------------------------------------
# Spec resolution (the ``scan_source`` config field)
# ----------------------------------------------------------------------
def build_scan_source(
    spec: Mapping[str, Any], dataset: "PtychoDataset"
) -> ScanSource:
    """Resolve a config's ``scan_source`` JSON mapping to a source.

    Two kinds::

        {"kind": "replay", "waves": 4}
            Replay the dataset's measurements in 4 contiguous
            sweep-keyed waves (the default streaming schedule).

        {"kind": "simulated",
         "waves": [{"frames": [3, 1, 2], "after_sweep": 0},
                   {"count": 5, "delay_s": 0.2},
                   {"frames": [], "end_of_scan": true}],
         "advertised": 9}
            A scripted schedule over the dataset's measurements.  Each
            wave names explicit ``frames`` (enabling out-of-order
            delivery) or a ``count`` of the next unscheduled positions
            in raster order; gates are ``after_sweep`` (sweep-keyed) or
            ``delay_s`` (timed) — never both kinds in one schedule.
    """
    if not isinstance(spec, Mapping):
        raise TypeError(
            f"scan_source must be a mapping, got {type(spec).__name__}"
        )
    kind = spec.get("kind", "replay")
    if kind == "replay":
        unknown = set(spec) - {"kind", "waves"}
        if unknown:
            raise ValueError(
                f"unknown replay scan_source keys {sorted(unknown)}"
            )
        n_waves = spec.get("waves", 4)
        if not isinstance(n_waves, int) or isinstance(n_waves, bool):
            raise TypeError("replay scan_source 'waves' must be an int")
        return ReplayScanSource(dataset.amplitudes, n_waves)
    if kind == "simulated":
        unknown = set(spec) - {"kind", "waves", "advertised"}
        if unknown:
            raise ValueError(
                f"unknown simulated scan_source keys {sorted(unknown)}"
            )
        wave_specs = spec.get("waves")
        if not isinstance(wave_specs, Sequence) or isinstance(
            wave_specs, (str, bytes)
        ):
            raise TypeError(
                "simulated scan_source needs a 'waves' list"
            )
        advertised = spec.get("advertised", dataset.n_probes)
        waves: List[ScanWave] = []
        scheduled: set = set()
        cursor = 0
        for w, wave_spec in enumerate(wave_specs):
            if not isinstance(wave_spec, Mapping):
                raise TypeError(f"wave {w} must be a mapping")
            unknown = set(wave_spec) - {
                "frames",
                "count",
                "after_sweep",
                "delay_s",
                "end_of_scan",
            }
            if unknown:
                raise ValueError(
                    f"unknown wave {w} keys {sorted(unknown)}"
                )
            if "frames" in wave_spec and "count" in wave_spec:
                raise ValueError(
                    f"wave {w} spells both 'frames' and 'count'"
                )
            if "frames" in wave_spec:
                frames = tuple(int(i) for i in wave_spec["frames"])
            elif "count" in wave_spec:
                count = int(wave_spec["count"])
                frames = []
                while len(frames) < count and cursor < advertised:
                    if cursor not in scheduled:
                        frames.append(cursor)
                    cursor += 1
                frames = tuple(frames)
            else:
                frames = ()
            scheduled.update(frames)
            after_sweep = wave_spec.get("after_sweep")
            waves.append(
                ScanWave(
                    frames=frames,
                    after_sweep=(
                        int(after_sweep) if after_sweep is not None else None
                    ),
                    delay_s=float(wave_spec.get("delay_s", 0.0)),
                    end_of_scan=bool(wave_spec.get("end_of_scan", False)),
                )
            )
        return SimulatedScanSource(
            dataset.amplitudes, waves, advertised=advertised
        )
    raise ValueError(
        f"unknown scan_source kind {kind!r}; choose 'replay' or 'simulated'"
    )
