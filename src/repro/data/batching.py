"""Batch planning: grouping scan positions for batched execution.

A :class:`BatchPlanner` splits each rank-tile's probe list into
fixed-size batches that the numeric engine runs through the multislice
model *as one stack* — one ``fft2c`` over a ``(B, window, window)``
batch instead of ``B`` separate transforms.  The FFT backends are
measurably faster on batched stacks (see ``BENCH_backends.json``), so
this is the hot-path win; the plan itself is pure bookkeeping.

Planning invariants (property-tested in ``tests/data``):

* every input position appears in exactly one batch;
* order is preserved (concatenating the batches reproduces the input —
  required for bit-exact parity with per-position execution, whose
  accumulation order is the probe order);
* no batch exceeds ``batch_size`` and none is empty (the final batch may
  be ragged).

``batch_size`` resolves like every other execution knob: explicit value
→ ``REPRO_BATCH_SIZE`` environment → 1 (the per-position reference).
Batch size 1 *is* the historical engine behaviour, bit for bit.
"""

from __future__ import annotations

import operator
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.core.decomposition import Decomposition

__all__ = [
    "BatchPlanner",
    "resolve_batch_size",
    "resolve_positions",
    "default_batch_size",
    "ENV_BATCH_SIZE",
]

#: Environment variable consulted when no explicit batch size is given.
ENV_BATCH_SIZE = "REPRO_BATCH_SIZE"


def default_batch_size() -> int:
    """The ambient batch size (``REPRO_BATCH_SIZE`` or 1)."""
    raw = os.environ.get(ENV_BATCH_SIZE)
    if raw is None:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_BATCH_SIZE} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"{ENV_BATCH_SIZE} must be a positive integer, got {raw!r}"
        )
    return value


def resolve_batch_size(spec: Optional[int] = None) -> int:
    """Explicit batch size → itself; ``None`` → the ambient default.

    Follows the backend/executor precedence contract: an explicit value
    (solver argument, pinned config field) is never overridden by the
    environment.
    """
    if spec is None:
        return default_batch_size()
    value = int(spec)
    if value <= 0:
        raise ValueError(f"batch_size must be positive, got {spec}")
    return value


@dataclass(frozen=True)
class BatchPlanner:
    """Order-preserving fixed-size batching of probe index lists."""

    batch_size: int

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )

    def iter_batches(
        self, indices: Sequence[int]
    ) -> Iterator[Tuple[int, ...]]:
        """Yield consecutive ``<= batch_size`` slices of ``indices``."""
        b = self.batch_size
        for start in range(0, len(indices), b):
            yield tuple(indices[start : start + b])

    def plan(self, indices: Sequence[int]) -> List[Tuple[int, ...]]:
        """The full batch list for one probe sequence."""
        return list(self.iter_batches(indices))

    def plan_tiles(
        self, decomp: "Decomposition"
    ) -> Dict[int, List[Tuple[int, ...]]]:
        """Per-rank-tile batch lists over each tile's *own* probes (the
        gradient-decomposition assignment; rank → batches)."""
        return {t.rank: self.plan(t.probes) for t in decomp.tiles}

    def n_batches(self, n_positions: int) -> int:
        """Batches needed for ``n_positions`` probes."""
        if n_positions <= 0:
            return 0
        return -(-n_positions // self.batch_size)

    def plan_covered(
        self, indices: Sequence[int], covered: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Batches over the covered subset of ``indices``.

        The streaming driver plans each sweep against a coverage
        snapshot: positions whose frames have not arrived are skipped,
        everything else keeps its original order — so the batches
        partition *exactly* the covered positions (property-tested in
        ``tests/data/test_stream_properties.py``).
        """
        member = frozenset(covered)
        return self.plan([i for i in indices if i in member])


def resolve_positions(
    positions: Optional[Sequence[int]], n_positions: int
) -> Optional[Tuple[int, ...]]:
    """Validate a solver's ``positions`` restriction.

    ``None`` means the full scan (the static default).  Otherwise the
    subset must be non-empty, duplicate-free ints inside
    ``[0, n_positions)``; the *given order is preserved* — solvers
    filter their own sweep order by membership, so the tuple order
    never changes numerics, but keeping it stable keeps errors
    readable.
    """
    if positions is None:
        return None
    out = []
    seen = set()
    for p in positions:
        if isinstance(p, bool):
            raise ValueError(f"positions must be ints, got {p!r}")
        try:
            p = operator.index(p)
        except TypeError:
            raise ValueError(
                f"positions must be ints, got {p!r}"
            ) from None
        if not (0 <= p < n_positions):
            raise ValueError(
                f"position {p} out of range [0, {n_positions})"
            )
        if p in seen:
            raise ValueError(f"position {p} listed twice")
        seen.add(p)
        out.append(int(p))
    if not out:
        raise ValueError(
            "positions must name at least one scan position "
            "(None means the full scan)"
        )
    return tuple(out)
