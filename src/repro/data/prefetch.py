"""Single-worker background chunk prefetch.

A :class:`ChunkPrefetcher` overlaps the *next* chunk's I/O with the
caller's compute on the current one — the classic double-buffering that
makes sequential out-of-core sweeps I/O-latency free.  One worker thread
is deliberate: diffraction sweeps read chunks in raster order, so a
deeper pipeline buys nothing and a thread pool would fight the zip/HDF5
reader for the file handle.

The prefetcher is storage-agnostic (it is handed a ``load(chunk_index)``
callable) so both on-disk store flavours share it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Optional

import numpy as np

from repro.obs import telemetry as _obs

__all__ = ["ChunkPrefetcher"]


class ChunkPrefetcher:
    """Schedules background loads and hands completed ones back.

    Thread-safety: ``schedule``/``take`` may race with the worker; a
    single lock guards the pending map.  Failed loads are *not* swallowed
    — ``take`` re-raises the worker's exception so an unreadable chunk
    fails the read that needed it, not some later unrelated one.
    """

    def __init__(self, load: Callable[[int], np.ndarray]) -> None:
        self._load = load
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-prefetch"
        )
        self._lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._scheduled = 0
        self._hits = 0
        self._closed = False

    def schedule(self, chunk_index: int) -> None:
        """Start loading ``chunk_index`` in the background (idempotent
        while a load for it is still in flight; no-op after close)."""
        with self._lock:
            if self._closed or chunk_index in self._pending:
                return
            self._scheduled += 1
            self._pending[chunk_index] = self._pool.submit(
                self._load, chunk_index
            )

    def take(self, chunk_index: int) -> Optional[np.ndarray]:
        """The prefetched chunk, blocking on an in-flight load; ``None``
        when ``chunk_index`` was never scheduled (caller loads inline)."""
        with self._lock:
            future = self._pending.pop(chunk_index, None)
        if future is None:
            return None
        self._hits += 1
        tel = _obs.current()
        if not tel.enabled:
            return future.result()
        # The caller blocks here exactly when compute outran the I/O —
        # the residual latency double-buffering failed to hide.
        t0 = time.perf_counter()
        chunk = future.result()
        tel.add({
            "store.prefetch.hits": 1,
            "store.prefetch.wait_seconds": time.perf_counter() - t0,
        })
        return chunk

    def stats(self) -> Dict[str, int]:
        """Lifetime scheduled/consumed counts (benchmark telemetry)."""
        return {
            "prefetch_scheduled": self._scheduled,
            "prefetch_hits": self._hits,
        }

    def close(self) -> None:
        """Drop pending work and join the worker.  Idempotent.

        ``cancel_futures`` matters: without it a load still *queued* at
        close time would run against a store that is concurrently
        tearing down its file handle.  A load already *running* is
        waited for (the store's IO lock serializes it against the
        close), and cancelled futures are simply dropped — ``take``
        treats their chunk as never scheduled.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._pending.clear()
        self._pool.shutdown(wait=True, cancel_futures=True)
