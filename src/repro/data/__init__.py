"""Streaming & batched measurement pipeline (see ``store`` module doc).

Public surface:

* stores — :class:`DiffractionStore` protocol, the in-memory reference,
  the chunked on-disk implementations, and :func:`open_store` /
  :func:`write_store` resolution;
* batching — :class:`BatchPlanner` and the ``REPRO_BATCH_SIZE``
  resolution helpers;
* prefetch — the background :class:`ChunkPrefetcher` the on-disk
  stores share.
"""

from repro.data.batching import (
    ENV_BATCH_SIZE,
    BatchPlanner,
    default_batch_size,
    resolve_batch_size,
)
from repro.data.prefetch import ChunkPrefetcher
from repro.data.store import (
    ChunkedNpzStore,
    DiffractionStore,
    Hdf5Store,
    InMemoryStore,
    StoreFormatError,
    StoreUnavailableError,
    open_store,
    write_store,
)

__all__ = [
    "BatchPlanner",
    "ChunkPrefetcher",
    "ChunkedNpzStore",
    "DiffractionStore",
    "ENV_BATCH_SIZE",
    "Hdf5Store",
    "InMemoryStore",
    "StoreFormatError",
    "StoreUnavailableError",
    "default_batch_size",
    "open_store",
    "resolve_batch_size",
    "write_store",
]
