"""Streaming & batched measurement pipeline (see ``store`` module doc).

Public surface:

* stores — :class:`DiffractionStore` protocol, the in-memory reference,
  the chunked on-disk implementations, and :func:`open_store` /
  :func:`write_store` resolution;
* batching — :class:`BatchPlanner` and the ``REPRO_BATCH_SIZE``
  resolution helpers;
* prefetch — the background :class:`ChunkPrefetcher` the on-disk
  stores share;
* streaming — the dynamic-acquisition layer: :class:`StreamingStore`
  (appendable store with WAIT/END_OF_SCAN semantics), the
  :class:`ScanSource` protocol with simulated/replay implementations,
  the :class:`StreamFeeder` that pumps waves into a store, and the
  :class:`StreamPolicy` run knobs.
"""

from repro.data.batching import (
    ENV_BATCH_SIZE,
    BatchPlanner,
    default_batch_size,
    resolve_batch_size,
    resolve_positions,
)
from repro.data.prefetch import ChunkPrefetcher
from repro.data.store import (
    ChunkedNpzStore,
    DiffractionStore,
    Hdf5Store,
    InMemoryStore,
    StoreFormatError,
    StoreUnavailableError,
    open_store,
    write_store,
)
from repro.data.streaming import (
    ReplayScanSource,
    ScanSource,
    ScanWave,
    SimulatedScanSource,
    StreamError,
    StreamFeeder,
    StreamingStore,
    StreamPolicy,
    StreamStatus,
    StreamTimeout,
    build_scan_source,
)

__all__ = [
    "BatchPlanner",
    "ChunkPrefetcher",
    "ChunkedNpzStore",
    "DiffractionStore",
    "ENV_BATCH_SIZE",
    "Hdf5Store",
    "InMemoryStore",
    "ReplayScanSource",
    "ScanSource",
    "ScanWave",
    "SimulatedScanSource",
    "StoreFormatError",
    "StoreUnavailableError",
    "StreamError",
    "StreamFeeder",
    "StreamPolicy",
    "StreamStatus",
    "StreamTimeout",
    "StreamingStore",
    "build_scan_source",
    "default_batch_size",
    "open_store",
    "resolve_batch_size",
    "resolve_positions",
    "write_store",
]
