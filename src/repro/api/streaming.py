"""The streaming reconstruction driver: epochs over coverage snapshots.

A streamed run (``config.scan_source`` set) is executed as a sequence of
*epochs* — static sub-runs, each planned against the coverage snapshot
taken at its start and warm-started from the previous epoch's volume.
That construction is what makes the two parity invariants hold exactly:

* **Full pre-arrival** — when every frame arrives before iteration 0,
  the driver collapses to ONE epoch with no ``positions`` restriction,
  i.e. literally the static path reading from a
  :class:`~repro.data.StreamingStore` (parity-pinned bit-identical to
  the in-memory reference by the store suite).
* **Wave parity** — a run streamed in K waves equals K static runs with
  ``positions`` pinned to the same coverage snapshots, each resumed
  from its predecessor's volume (pinned by
  ``tests/data/test_stream_parity.py``).

Between epochs the driver pumps the feeder (sweep-keyed schedules) or
waits, bounded by the policy timeout, for new frames (timed schedules) —
the WAIT half of the WAIT/END_OF_SCAN semantics.  Once coverage is
complete or the scan ended, the remaining iterations run as one final
epoch.  Observers see a single continuous run: epoch-local events are
re-emitted with leg-global iteration numbers, accumulated
history/traffic, merged snapshots, and the coverage fraction stamped on
:attr:`~repro.core.observers.IterationEvent.coverage`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import ReconstructionConfig
from repro.api.registry import solver_from_config
from repro.core.observers import IterationEvent, Observer, dispatch
from repro.core.reconstructor import ReconstructionResult
from repro.data.streaming import (
    ScanSource,
    StreamError,
    StreamFeeder,
    StreamingStore,
    StreamPolicy,
    build_scan_source,
)
from repro.obs import telemetry as _obs
from repro.physics.dataset import PtychoDataset

__all__ = ["run_streaming"]


def _merge_peaks(banked: List[int], epoch: Sequence[int]) -> List[int]:
    """Element-wise max of per-rank peaks (ragged-safe)."""
    out = list(banked)
    for i, value in enumerate(epoch):
        if i < len(out):
            out[i] = max(out[i], int(value))
        else:
            out.append(int(value))
    return out


class _Bank:
    """Accumulates completed-epoch results into one leg-global view."""

    def __init__(self) -> None:
        self.history: List[float] = []
        self.messages = 0
        self.message_bytes = 0
        self.peaks: List[int] = []
        self.elapsed_s = 0.0

    def deposit(self, result: ReconstructionResult, elapsed_s: float) -> None:
        self.history.extend(result.history)
        self.messages += result.messages
        self.message_bytes += result.message_bytes
        self.peaks = _merge_peaks(self.peaks, result.peak_memory_per_rank)
        self.elapsed_s += elapsed_s

    def merge(self, partial: ReconstructionResult) -> ReconstructionResult:
        """A leg-global result: banked epochs + an epoch-partial tail."""
        return ReconstructionResult(
            volume=partial.volume,
            history=self.history + list(partial.history),
            messages=self.messages + partial.messages,
            message_bytes=self.message_bytes + partial.message_bytes,
            peak_memory_per_rank=_merge_peaks(
                self.peaks, partial.peak_memory_per_rank
            ),
            decomposition=partial.decomposition,
            probe=partial.probe,
        )


class _EpochRelay:
    """Re-emits one epoch's events as leg-global events.

    Downstream observers (progress streams, checkpoint policies, the
    service leg controller) see iteration numbers counted across the
    whole leg, cumulative traffic, merged snapshots, and the coverage
    fraction — so they work on streamed runs unchanged.
    """

    def __init__(
        self,
        observers: Tuple[Observer, ...],
        bank: _Bank,
        it_offset: int,
        n_iterations: int,
        coverage: float,
    ) -> None:
        self.observers = observers
        self.bank = bank
        self.it_offset = it_offset
        self.n_iterations = n_iterations
        self.coverage = coverage

    def __call__(self, event: IterationEvent) -> None:
        bank = self.bank
        dispatch(
            self.observers,
            IterationEvent(
                solver=event.solver,
                iteration=self.it_offset + event.iteration,
                n_iterations=self.n_iterations,
                cost=event.cost,
                elapsed_s=bank.elapsed_s + event.elapsed_s,
                messages=bank.messages + event.messages,
                message_bytes=bank.message_bytes + event.message_bytes,
                peak_memory_bytes=event.peak_memory_bytes,
                snapshot=lambda: bank.merge(event.snapshot()),
                coverage=self.coverage,
            ),
        )


def _epoch_config(
    config: ReconstructionConfig,
    n_iter: int,
    covered: Optional[Tuple[int, ...]],
    policy: StreamPolicy,
    advertised: int,
) -> ReconstructionConfig:
    """The static config of one epoch: streaming fields stripped, the
    iteration budget set, and — while coverage is partial — the sweep
    restricted to the covered positions (optionally re-weighted)."""
    params: Dict[str, Any] = dict(config.solver_params)
    params["iterations"] = int(n_iter)
    params.pop("positions", None)
    if covered is not None:
        params["positions"] = [int(p) for p in covered]
        if policy.reweight:
            params["lr"] = float(params["lr"]) * (
                advertised / len(covered)
            )
    return ReconstructionConfig(
        solver=config.solver,
        solver_params=params,
        backend=config.backend,
        dtype=config.dtype,
        executor=config.executor,
        runtime_workers=config.runtime_workers,
        batch_size=config.batch_size,
        prefetch=config.prefetch,
        probe_modes=config.probe_modes,
        telemetry=config.telemetry,
    )


def _wait_for_frames(
    store: StreamingStore, n: int, policy: StreamPolicy
) -> None:
    """Bounded wait for the ``n``-th frame, with telemetry accounting
    (counted here, on the driver thread, so counters land on the
    recorder active for this run)."""
    tel = _obs.current()
    if not tel.enabled:
        store.wait_for(n, timeout=policy.wait_timeout_s)
        return
    t0 = time.perf_counter()
    try:
        store.wait_for(n, timeout=policy.wait_timeout_s)
    finally:
        tel.add({
            "stream.waits": 1,
            "stream.wait_seconds": time.perf_counter() - t0,
        })


def run_streaming(
    dataset: PtychoDataset,
    config: ReconstructionConfig,
    observers: Sequence[Observer] = (),
    *,
    initial_probe: Optional[np.ndarray] = None,
    initial_volume: Optional[np.ndarray] = None,
) -> ReconstructionResult:
    """Execute a streamed reconstruction (see module docstring).

    Called by :func:`repro.api.reconstruct.reconstruct` when
    ``config.scan_source`` is set; not normally invoked directly.
    """
    policy = StreamPolicy.from_mapping(config.stream_policy)
    source: ScanSource = build_scan_source(
        dict(config.scan_source or {}), dataset
    )
    if source.n_probes != dataset.n_probes or (
        source.detector_px != dataset.spec.detector_px
    ):
        raise StreamError(
            f"scan source advertises {source.n_probes} x "
            f"{source.detector_px}px frames but the dataset expects "
            f"{dataset.n_probes} x {dataset.spec.detector_px}px"
        )
    if policy.reweight and "lr" not in config.solver_params:
        raise ValueError(
            "stream_policy reweight=true needs an explicit 'lr' in "
            "solver_params (the scaled step is lr * advertised/covered)"
        )
    total = int(config.solver_params.get("iterations", 10))
    if total <= 0:
        raise ValueError("iterations must be positive")
    # A resumed service leg passes the iterations already banked by
    # earlier legs so the feeder fast-forwards its sweep clock — the
    # sweep-keyed waves that had arrived before the interrupt are
    # re-delivered up front, deterministically rebuilding the frame
    # journal the interrupted leg had seen.
    stream_offset = int(config.run_params.get("stream_offset", 0))
    if stream_offset < 0:
        raise ValueError("stream_offset must be >= 0")

    store = StreamingStore(
        source.n_probes, source.detector_px, source.frame_dtype
    )
    feeder = StreamFeeder(source, store)
    tel = _obs.current()
    bank = _Bank()
    run_observers = tuple(observers)
    volume = initial_volume
    probe = initial_probe
    epoch_probe: Optional[np.ndarray] = None
    result: Optional[ReconstructionResult] = None

    try:
        # -- prime: first frames must exist before iteration 0 ---------
        if feeder.mode == "timed":
            feeder.start()
            _wait_for_frames(store, policy.min_start_frames, policy)
        else:
            feeder.feed_until(stream_offset)
        status = store.poll()
        if tel.enabled:
            tel.add({"stream.frames_arrived": float(status.arrived)})
        if status.arrived < policy.min_start_frames:
            raise StreamError(
                f"only {status.arrived} frame(s) available before the "
                f"first sweep but the stream policy requires "
                f"{policy.min_start_frames} (min_start_frames); the "
                "schedule must deliver them at sweep 0"
            )

        # -- epoch loop ------------------------------------------------
        it_done = 0
        epoch_index = 0
        prev_covered = -1
        while it_done < total:
            status = store.poll()
            covered = store.coverage()
            full = len(covered) >= store.n_probes
            settled = (
                full
                or status.end_of_scan
                or (feeder.mode == "sweep" and feeder.exhausted())
            )
            n_iter = (
                total - it_done
                if settled
                else min(policy.sweeps_per_epoch, total - it_done)
            )
            if (
                policy.on_growth == "restart"
                and prev_covered >= 0
                and len(covered) > prev_covered
            ):
                # Coverage grew: discard the warm start and let this
                # epoch begin from vacuum over the wider position set.
                volume = None
                epoch_probe = None
            coverage_frac = len(covered) / store.n_probes
            epoch_config = _epoch_config(
                config,
                n_iter,
                None if full else covered,
                policy,
                store.n_probes,
            )
            solver = solver_from_config(epoch_config)
            # The adapter proxies attribute *reads* to the inner
            # reconstructor, so the store must be planted on .inner
            # itself; open_store passes instances straight through.
            getattr(solver, "inner", solver).data_source = store
            relay = _EpochRelay(
                run_observers, bank, it_done, total, coverage_frac
            )
            kwargs: Dict[str, Any] = {
                "observers": (relay,),
                "initial_volume": volume,
            }
            # Only forward a probe when one exists: the hve adapter
            # rejects initial_probe (no probe-refinement path), exactly
            # as it does on the static path.
            carried_probe = epoch_probe if epoch_probe is not None else probe
            if carried_probe is not None:
                kwargs["initial_probe"] = carried_probe
            t0 = time.perf_counter()
            if tel.enabled:
                with tel.span(
                    "stream.epoch",
                    epoch=epoch_index,
                    iterations=n_iter,
                    covered=len(covered),
                ):
                    result = solver.reconstruct(dataset, **kwargs)
                tel.count("stream.epochs")
            else:
                result = solver.reconstruct(dataset, **kwargs)
            bank.deposit(result, time.perf_counter() - t0)
            volume = result.volume
            if result.probe is not None:
                epoch_probe = result.probe
            it_done += n_iter
            epoch_index += 1
            prev_covered = len(covered)
            if it_done >= total:
                break
            # -- pump arrivals for the next epoch ----------------------
            arrived_before = status.arrived
            if feeder.mode == "sweep":
                delivered = feeder.feed_until(stream_offset + it_done)
                if tel.enabled and delivered:
                    tel.add({"stream.frames_arrived": float(delivered)})
            else:
                fresh = store.poll()
                if not fresh.complete and fresh.arrived == arrived_before:
                    # Nothing arrived during the whole epoch: wait
                    # (bounded) for one more frame — a stalled source
                    # surfaces StreamTimeout here instead of hanging.
                    _wait_for_frames(store, arrived_before + 1, policy)
                after = store.poll()
                if tel.enabled and after.arrived > arrived_before:
                    tel.add({
                        "stream.frames_arrived": float(
                            after.arrived - arrived_before
                        )
                    })
    finally:
        feeder.stop()

    assert result is not None and volume is not None  # total > 0
    return ReconstructionResult(
        volume=volume,
        history=bank.history,
        messages=bank.messages,
        message_bytes=bank.message_bytes,
        peak_memory_per_rank=bank.peaks,
        decomposition=result.decomposition,
        probe=epoch_probe,
    )
