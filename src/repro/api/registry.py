"""The solver registry: one namespace, one dispatch path.

Solvers register under a short name with :func:`register_solver`; every
entry point (``repro.reconstruct``, the CLI's ``--algorithm`` choices,
config files) resolves names through this module, so adding a solver —
first-party or third-party — requires no edits to any dispatch code::

    from repro.api import register_solver

    @register_solver("my-solver")
    class MySolver:
        accepted_params = frozenset({"iterations"})
        def __init__(self, iterations=10): ...
        def reconstruct(self, dataset, *, observers=(), initial_probe=None,
                        initial_volume=None): ...

A registered class must be constructible from a config's
``solver_params`` mapping (``cls(**params)``) and implement the
:class:`Solver` protocol.  The three paper solvers are registered by
:mod:`repro.api.solvers`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Protocol,
    Type,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.config import ReconstructionConfig
    from repro.core.reconstructor import ReconstructionResult

__all__ = [
    "Solver",
    "UnknownSolverError",
    "SolverCapabilityError",
    "register_solver",
    "unregister_solver",
    "solver_names",
    "get_solver",
    "solver_from_config",
]


class UnknownSolverError(ValueError):
    """Raised when a solver name is not in the registry; the message
    always lists what *is* registered."""


class SolverCapabilityError(ValueError):
    """Raised when a solver is asked for a parameter or feature it does
    not support (e.g. probe refinement with the halo-exchange baseline),
    instead of silently dropping the request."""


@runtime_checkable
class Solver(Protocol):
    """Structural interface every registered solver satisfies."""

    def reconstruct(
        self,
        dataset,
        *,
        observers=(),
        initial_probe=None,
        initial_volume=None,
    ) -> "ReconstructionResult":
        """Run the reconstruction, emitting one
        :class:`~repro.core.observers.IterationEvent` per iteration to
        each observer."""
        ...


_REGISTRY: Dict[str, type] = {}


def register_solver(
    name: str, *, overwrite: bool = False
) -> Callable[[type], type]:
    """Class decorator registering a solver under ``name``.

    Re-registering an existing name raises unless ``overwrite=True`` (a
    deliberate escape hatch for third parties shadowing a built-in).
    The class gains a ``solver_name`` attribute set to ``name``.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("solver name must be a non-empty string")

    def decorator(cls: type) -> type:
        if not callable(getattr(cls, "reconstruct", None)):
            raise TypeError(
                f"cannot register {cls.__name__!r}: solvers must define a "
                "reconstruct(dataset, *, observers=..., ...) method"
            )
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"solver {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__}); pass overwrite=True to replace"
            )
        cls.solver_name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    if name not in _REGISTRY:
        raise UnknownSolverError(_unknown_message(name))
    del _REGISTRY[name]


def solver_names() -> List[str]:
    """Sorted names of all registered solvers."""
    return sorted(_REGISTRY)


def get_solver(name: str) -> Type:
    """The solver class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(_unknown_message(name)) from None


def solver_from_config(config: "ReconstructionConfig") -> Solver:
    """Instantiate the solver a config names, with its ``solver_params``.

    The config's compute and runtime fields (``backend``/``dtype``, see
    :mod:`repro.backend`; ``executor``/``runtime_workers``, see
    :mod:`repro.runtime`) are injected as constructor parameters for
    solvers that declare them in ``accepted_params``.  ``None`` fields
    (ambient resolution) inject nothing, so solvers without the
    parameters still run on the ambient defaults — but *pinning* a
    backend, precision or executor on a solver that cannot honour it is
    a :class:`SolverCapabilityError`, never a silent drop.
    """
    cls = get_solver(config.solver)
    params = dict(config.solver_params)
    accepted = getattr(cls, "accepted_params", frozenset())
    for key, value in (
        ("backend", config.backend),
        ("dtype", config.dtype),
        ("executor", config.executor),
        ("runtime_workers", config.runtime_workers),
        ("data_source", config.data_source),
        ("batch_size", config.batch_size),
        ("prefetch", config.prefetch),
        ("probe_modes", config.probe_modes),
    ):
        if key in params:
            # The solver_params spelling (direct class use) must not
            # contradict the config field.
            if value is not None and params[key] != value:
                raise ValueError(
                    f"config names {key}={value!r} but solver_params "
                    f"also sets {key}={params[key]!r}; use the config "
                    f"field only"
                )
            continue
        if value is None:
            continue
        if key in accepted:
            params[key] = value
        else:
            raise SolverCapabilityError(
                f"solver {config.solver!r} does not accept a "
                f"{key} (asked for {key}={value!r}); declare {key!r} in "
                f"its accepted_params to opt in"
            )
    return cls(**params)


def _unknown_message(name: str) -> str:
    registered = ", ".join(solver_names()) or "(none)"
    return f"unknown solver {name!r}; registered solvers: {registered}"
