"""Declarative reconstruction configuration.

A :class:`ReconstructionConfig` is the serializable description of a
reconstruction run: *which* solver (a registry name, see
:mod:`repro.api.registry`), the solver's constructor parameters, and
run-level parameters applied at ``reconstruct()`` time.  It is frozen,
validated at construction, and round-trips losslessly through
``to_dict``/``from_dict`` and ``to_json``/``from_json`` — which is what
lets the CLI embed the resolved config inside every saved result archive
and replay it bit-for-bit later.

Values must be JSON-native (``None``/bool/int/float/str, lists, dicts
with string keys).  Tuples are normalized to lists at construction so a
config compares equal to its JSON round-trip.  Non-serializable objects
(arrays, mesh layouts, ...) are rejected with a pointed error; solvers
that need structured values accept their JSON spelling instead (e.g. the
``"gd"`` solver takes ``"mesh": [rows, cols]``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional

from repro.backend.base import PrecisionPolicy

__all__ = ["ReconstructionConfig"]

#: Config fields that *do* change a run's numerics: the solver
#: arithmetic itself and the compute stack it runs on.  Threaded FFTs
#: and complex64 both change the bits, so ``backend``/``dtype`` are
#: numeric, not placement detail.
_FINGERPRINT_NUMERIC_FIELDS = frozenset(
    {"solver", "solver_params", "backend", "dtype", "probe_modes"}
)

#: Config fields that never change a run's numerics — *where* and *how
#: much at a time* work happens, not *what* is computed.  Executor/
#: store/batch settings are here because every one of them is
#: fingerprint-identical by the parity suites' guarantees; run params
#: (resume source) describe how a run starts, not its arithmetic.
#:
#: Together with ``_FINGERPRINT_NUMERIC_FIELDS`` this must cover every
#: :class:`ReconstructionConfig` field exactly once — the
#: ``fingerprint-knob`` rule of :mod:`repro.analysis` fails the build
#: when a new field is added without declaring which set it belongs to.
#: ``scan_source``/``stream_policy`` are neutral because streaming
#: never changes *what* is computed for a given coverage trajectory: a
#: source whose frames all pre-arrive is parity-pinned bit-identical to
#: the static path, and a partially-covered epoch differs only through
#: the ``positions`` solver param of the internal per-epoch configs —
#: which is numeric, and which the archived run-level config never
#: contains.
_FINGERPRINT_NEUTRAL_FIELDS = frozenset(
    {
        "run_params",
        "executor",
        "runtime_workers",
        "data_source",
        "batch_size",
        "prefetch",
        "telemetry",
        "scan_source",
        "stream_policy",
    }
)

#: ``solver_params`` keys excluded from the fingerprint even though the
#: mapping as a whole is numeric: ``iterations`` is neutral because a
#: resumed leg legitimately runs fewer iterations than the archived run
#: it continues.
_FINGERPRINT_NEUTRAL_SOLVER_PARAMS = frozenset({"iterations"})

#: Every fingerprint-neutral key, field- or solver-param-level (the set
#: :meth:`ReconstructionConfig.fingerprint` filters against).
_FINGERPRINT_NEUTRAL_KEYS = (
    _FINGERPRINT_NEUTRAL_SOLVER_PARAMS | _FINGERPRINT_NEUTRAL_FIELDS
)

_CONFIG_KEYS = (
    "solver",
    "solver_params",
    "run_params",
    "backend",
    "dtype",
    "executor",
    "runtime_workers",
    "data_source",
    "batch_size",
    "prefetch",
    "probe_modes",
    "telemetry",
    "scan_source",
    "stream_policy",
)


def _normalize(value: Any, where: str) -> Any:
    """Deep-copy ``value`` into JSON-native types or raise ``TypeError``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_normalize(v, f"{where}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        return _normalize_mapping(value, where)
    raise TypeError(
        f"{where}: {type(value).__name__} is not JSON-serializable; "
        "configs hold only None/bool/int/float/str, lists, and dicts "
        "with string keys"
    )


def _normalize_mapping(mapping: Mapping, where: str) -> Dict[str, Any]:
    if not isinstance(mapping, Mapping):
        raise TypeError(f"{where} must be a mapping, got {type(mapping).__name__}")
    out: Dict[str, Any] = {}
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise TypeError(f"{where} keys must be strings, got {key!r}")
        out[key] = _normalize(value, f"{where}[{key!r}]")
    return out


@dataclass(frozen=True)
class ReconstructionConfig:
    """Frozen, JSON-round-trippable description of a reconstruction.

    Attributes
    ----------
    solver:
        Registry name of the solver (``"gd"``, ``"hve"``, ``"serial"``,
        or any third-party :func:`~repro.api.registry.register_solver`
        registration).
    solver_params:
        Keyword arguments for the solver's constructor (e.g.
        ``{"n_ranks": 9, "iterations": 10, "lr": 0.02}``).
    run_params:
        Parameters applied by :func:`repro.api.reconstruct` at run time,
        independent of the solver — currently ``{"resume": "path.npz"}``
        to warm-start from a saved result archive.
    backend:
        Compute-backend registry name (``"numpy"``, ``"threaded"``,
        ``"cupy"``, or any :func:`repro.backend.register_backend`
        registration).  ``None`` (the default) means *ambient*: the run
        follows ``REPRO_BACKEND`` / :func:`repro.backend.use_backend` /
        the process default.  The CLI always records the resolved name,
        so saved archives replay on the backend that produced them.
    dtype:
        Compute precision: ``"complex128"`` (the bit-exact reference) or
        ``"complex64"`` (the memory-lean fast path); ``None`` follows
        the ambient default (``REPRO_DTYPE``, else ``complex128``).
    executor:
        Rank-program placement (``"serial"``, ``"process"``, or any
        :func:`repro.runtime.register_executor` registration); ``None``
        follows the ambient default (``REPRO_EXECUTOR``, else
        ``serial``).  Like ``backend``/``dtype``, an *explicit* value
        pinned here is never overridden by the environment — replayed
        archives run where they say they run.
    runtime_workers:
        Worker-pool bound for multi-process executors (``None`` = one
        worker per rank, capped at the CPU count).  Ignored by
        ``serial``.
    data_source:
        Where measured amplitudes live during the run (see
        :mod:`repro.data`): ``None``/``"memory"`` pins them in RAM (the
        bit-identical reference), a path streams from a chunked on-disk
        store.  Stores never change numerics, so replays from any
        source agree.
    batch_size:
        Probes per batched multislice sweep; ``None`` follows the
        ambient default (``REPRO_BATCH_SIZE``, else 1 — the
        per-position reference).  Every value is fingerprint-identical;
        an explicit value pinned here is never overridden by the
        environment.
    prefetch:
        Overlap on-disk chunk I/O with compute (``None`` = ambient
        default, off).
    probe_modes:
        Number of incoherent probe modes (mixed-state reconstruction,
        see :mod:`repro.physics.probe`).  ``None``/1 is the scalar
        path, bit-identical to the historical behaviour — and
        fingerprint-identical to pre-mixed-state archives; ``M > 1``
        changes the forward model (incoherent intensity sum over an
        ``(M, w, w)`` mode stack) and therefore the numerics, so it
        *is* hashed into the fingerprint.
    telemetry:
        Record tracing spans and counters during the run (see
        :mod:`repro.obs`); ``None`` follows the ambient default
        (``REPRO_TRACE``, else off).  Telemetry never changes numerics
        — it is fingerprint-neutral by construction, and the obs test
        suite pins disabled runs bit-identical to the golden
        fingerprints.
    scan_source:
        Streaming acquisition spec (see
        :func:`repro.data.build_scan_source`): ``None`` (the default)
        is the static path; a mapping like ``{"kind": "replay",
        "waves": 4}`` or a scripted ``{"kind": "simulated", ...}``
        schedule routes the run through the streaming driver, whose
        frames arrive while the solver sweeps.  Mutually exclusive
        with ``data_source`` — the stream *is* the measurement source.
    stream_policy:
        Run-level streaming knobs (see
        :class:`repro.data.StreamPolicy`): wait timeout, minimum start
        coverage, sweeps per coverage snapshot, deterministic
        re-weighting, restart-on-growth.  Ignored unless
        ``scan_source`` is set.
    """

    solver: str
    solver_params: Mapping[str, Any] = field(default_factory=dict)
    run_params: Mapping[str, Any] = field(default_factory=dict)
    backend: Optional[str] = None
    dtype: Optional[str] = None
    executor: Optional[str] = None
    runtime_workers: Optional[int] = None
    data_source: Optional[str] = None
    batch_size: Optional[int] = None
    prefetch: Optional[bool] = None
    probe_modes: Optional[int] = None
    telemetry: Optional[bool] = None
    scan_source: Optional[Mapping[str, Any]] = None
    stream_policy: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.solver, str) or not self.solver:
            raise ValueError("solver must be a non-empty string")
        if self.backend is not None and (
            not isinstance(self.backend, str) or not self.backend
        ):
            raise ValueError("backend must be a non-empty string or None")
        if self.executor is not None and (
            not isinstance(self.executor, str) or not self.executor
        ):
            raise ValueError("executor must be a non-empty string or None")
        if self.runtime_workers is not None and (
            not isinstance(self.runtime_workers, int)
            or isinstance(self.runtime_workers, bool)
            or self.runtime_workers <= 0
        ):
            raise ValueError("runtime_workers must be a positive int or None")
        if self.data_source is not None and (
            not isinstance(self.data_source, str) or not self.data_source
        ):
            raise ValueError("data_source must be a non-empty string or None")
        if self.batch_size is not None and (
            not isinstance(self.batch_size, int)
            or isinstance(self.batch_size, bool)
            or self.batch_size <= 0
        ):
            raise ValueError("batch_size must be a positive int or None")
        if self.prefetch is not None and not isinstance(self.prefetch, bool):
            raise ValueError("prefetch must be a bool or None")
        if self.probe_modes is not None and (
            not isinstance(self.probe_modes, int)
            or isinstance(self.probe_modes, bool)
            or self.probe_modes <= 0
        ):
            raise ValueError("probe_modes must be a positive int or None")
        if self.telemetry is not None and not isinstance(self.telemetry, bool):
            raise ValueError("telemetry must be a bool or None")
        # Validates the name only (whether the backend is *registered/
        # available* is a run-time question, so configs written for
        # other machines stay loadable).
        if self.dtype is not None:
            PrecisionPolicy.from_name(self.dtype)
        object.__setattr__(
            self,
            "solver_params",
            MappingProxyType(_normalize_mapping(self.solver_params, "solver_params")),
        )
        object.__setattr__(
            self,
            "run_params",
            MappingProxyType(_normalize_mapping(self.run_params, "run_params")),
        )
        if self.scan_source is not None and self.data_source is not None:
            raise ValueError(
                "scan_source and data_source are mutually exclusive: a "
                "streamed run reads from the stream, not a static store"
            )
        for name in ("scan_source", "stream_policy"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self,
                    name,
                    MappingProxyType(_normalize_mapping(value, name)),
                )

    def __hash__(self) -> int:
        # The dataclass-generated hash would choke on the mapping-proxy
        # fields; the canonical JSON form (sorted keys) is a faithful
        # stand-in — equal configs serialize identically.
        return hash(self.to_json())

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (deep-copied; safe to mutate)."""
        return {
            "solver": self.solver,
            "solver_params": _normalize_mapping(self.solver_params, "solver_params"),
            "run_params": _normalize_mapping(self.run_params, "run_params"),
            "backend": self.backend,
            "dtype": self.dtype,
            "executor": self.executor,
            "runtime_workers": self.runtime_workers,
            "data_source": self.data_source,
            "batch_size": self.batch_size,
            "prefetch": self.prefetch,
            "probe_modes": self.probe_modes,
            "telemetry": self.telemetry,
            "scan_source": (
                _normalize_mapping(self.scan_source, "scan_source")
                if self.scan_source is not None
                else None
            ),
            "stream_policy": (
                _normalize_mapping(self.stream_policy, "stream_policy")
                if self.stream_policy is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReconstructionConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"config payload must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(_CONFIG_KEYS)
        if unknown:
            raise ValueError(
                f"unknown config keys {sorted(unknown)}; "
                f"expected a subset of {list(_CONFIG_KEYS)}"
            )
        if "solver" not in payload:
            raise ValueError("config payload is missing the 'solver' key")
        return cls(
            solver=payload["solver"],
            solver_params=payload.get("solver_params", {}),
            run_params=payload.get("run_params", {}),
            # Pre-backend/pre-runtime/pre-data archives carry none of
            # these keys; they load as "ambient" — which resolves to
            # the numpy/complex128/serial/in-memory/per-position
            # reference they were produced with unless redirected.
            backend=payload.get("backend"),
            dtype=payload.get("dtype"),
            executor=payload.get("executor"),
            runtime_workers=payload.get("runtime_workers"),
            data_source=payload.get("data_source"),
            batch_size=payload.get("batch_size"),
            prefetch=payload.get("prefetch"),
            probe_modes=payload.get("probe_modes"),
            telemetry=payload.get("telemetry"),
            scan_source=payload.get("scan_source"),
            stream_policy=payload.get("stream_policy"),
        )

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (lossless; see module docstring)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReconstructionConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 identity of the *numerics* this config describes.

        Two configs share a fingerprint exactly when they would drive
        the same solver arithmetic on the same data: the solver name,
        every numerics-relevant solver parameter, and the resolved
        backend/precision pair.  Deliberately excluded (see
        ``_FINGERPRINT_NEUTRAL_KEYS``): ``iterations`` (a resumed leg
        runs the *remaining* iterations), run params, and the
        executor/store/batching knobs, all of which are
        fingerprint-identical by construction.  Ambient ``None``
        backend/dtype fields resolve at call time, so a config that
        spells ``"numpy"`` explicitly matches one that inherits it —
        which also means an ambient config's fingerprint *floats* with
        the process default.  Writers of durable archives should pin
        the resolved names first (``with_compute``), as the service
        does, so the archived fingerprint records what actually ran.

        This is what resume validation compares: a checkpoint archived
        under one fingerprint refuses to seed a run with another (see
        :class:`repro.api.reconstruct.ResumeMismatchError`).
        """
        from repro.backend.base import (
            default_dtype_name,
            resolve_backend,
        )

        backend = self.backend
        if backend is None:
            backend = resolve_backend(None).name
        dtype = self.dtype if self.dtype is not None else default_dtype_name()
        params = {
            k: v
            for k, v in sorted(self.solver_params.items())
            if k not in _FINGERPRINT_NEUTRAL_KEYS
        }
        body: Dict[str, Any] = {
            "solver": self.solver,
            "solver_params": params,
            "backend": backend,
            "dtype": dtype,
        }
        # Single-mode (None or 1) is bit-identical to the historical
        # scalar path, so it must hash to the historical bytes — the
        # key only enters the payload for genuinely mixed-state runs.
        if self.probe_modes is not None and self.probe_modes > 1:
            body["probe_modes"] = int(self.probe_modes)
        payload = json.dumps(body, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- derivation ----------------------------------------------------
    def _replace(self, **updates: Any) -> "ReconstructionConfig":
        """New config with the given fields replaced (``None`` values in
        ``updates`` keep the current field — the CLI-override rule)."""
        fields = {key: getattr(self, key) for key in _CONFIG_KEYS}
        fields.update(
            {k: v for k, v in updates.items() if v is not None}
        )
        return ReconstructionConfig(**fields)

    def with_solver_params(self, **updates: Any) -> "ReconstructionConfig":
        """New config with ``solver_params`` keys merged/overridden."""
        merged = dict(self.solver_params)
        merged.update(updates)
        return self._replace(solver_params=merged)

    def with_run_params(self, **updates: Any) -> "ReconstructionConfig":
        """New config with ``run_params`` keys merged/overridden."""
        merged = dict(self.run_params)
        merged.update(updates)
        return self._replace(run_params=merged)

    def with_compute(
        self, backend: Optional[str] = None, dtype: Optional[str] = None
    ) -> "ReconstructionConfig":
        """New config with the compute backend and/or precision replaced
        (``None`` keeps the current value) — how the CLI replays an
        archived run on a different backend, and how the benchmark
        harness sweeps the backend × precision scenario grid."""
        return self._replace(backend=backend, dtype=dtype)

    def with_runtime(
        self,
        executor: Optional[str] = None,
        runtime_workers: Optional[int] = None,
    ) -> "ReconstructionConfig":
        """New config with the executor and/or worker bound replaced
        (``None`` keeps the current value) — how the CLI replays an
        archived run under a different execution runtime."""
        return self._replace(
            executor=executor, runtime_workers=runtime_workers
        )

    def with_data(
        self,
        data_source: Optional[str] = None,
        batch_size: Optional[int] = None,
        prefetch: Optional[bool] = None,
    ) -> "ReconstructionConfig":
        """New config with the measurement source, batch size and/or
        prefetch flag replaced (``None`` keeps the current value) — how
        the CLI replays an archived run against a different store, and
        how the data benchmark sweeps batch sizes."""
        return self._replace(
            data_source=data_source,
            batch_size=batch_size,
            prefetch=prefetch,
        )

    def with_probe(
        self, probe_modes: Optional[int] = None
    ) -> "ReconstructionConfig":
        """New config with the probe mode count replaced (``None`` keeps
        the current value) — how ``repro reconstruct --probe-modes``
        overrides an archived config's mixed-state setting."""
        return self._replace(probe_modes=probe_modes)

    def with_telemetry(self, telemetry: bool = True) -> "ReconstructionConfig":
        """New config with telemetry recording pinned on (or off) —
        how ``repro reconstruct --trace`` turns tracing on without
        touching any numerics-relevant field (``None`` keeps the
        current value, like every other ``with_*`` helper)."""
        return self._replace(telemetry=telemetry)

    def with_stream(
        self,
        scan_source: Optional[Mapping[str, Any]] = None,
        stream_policy: Optional[Mapping[str, Any]] = None,
    ) -> "ReconstructionConfig":
        """New config routed through the streaming driver (``None``
        keeps the current value) — how ``repro reconstruct --stream``
        attaches an arrival schedule and its policy knobs to an
        otherwise-static config."""
        return self._replace(
            scan_source=scan_source, stream_policy=stream_policy
        )
