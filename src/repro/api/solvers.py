"""Registry adapters for the three paper solvers.

Each adapter is a thin, uniform facade over one reconstructor class:

* it validates ``solver_params`` against an explicit ``accepted_params``
  set, so a config naming a parameter the solver cannot honour fails
  with a :class:`~repro.api.registry.SolverCapabilityError` instead of a
  bare ``TypeError`` (or, worse, the historical CLI behaviour of
  silently dropping the flag);
* it converts JSON spellings into constructor objects (``"mesh":
  [rows, cols]`` becomes a :class:`~repro.parallel.topology.MeshLayout`);
* it normalizes the ``reconstruct`` signature to the
  :class:`~repro.api.registry.Solver` protocol — the halo-exchange
  baseline, for instance, rejects ``initial_probe`` explicitly rather
  than not having the keyword.

Attribute access falls through to the wrapped reconstructor, so
solver-specific extras (``build_iteration_schedule``,
``redundancy_factor``, ...) remain reachable on the adapter.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Sequence

import numpy as np

from repro.api.registry import SolverCapabilityError, register_solver
from repro.baseline.halo_exchange import HaloExchangeReconstructor
from repro.baseline.serial import SerialReconstructor
from repro.core.observers import Observer
from repro.core.reconstructor import (
    GradientDecompositionReconstructor,
    ReconstructionResult,
)
from repro.parallel.topology import MeshLayout
from repro.physics.dataset import PtychoDataset

__all__ = [
    "SolverAdapter",
    "GradientDecompositionSolver",
    "HaloExchangeSolver",
    "SerialSolver",
]


def _mesh_from_json(value: Any) -> MeshLayout:
    """``[rows, cols]`` (the JSON spelling) or a MeshLayout passthrough."""
    if isinstance(value, MeshLayout):
        return value
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(v, int) for v in value)
    ):
        return MeshLayout(value[0], value[1])
    raise SolverCapabilityError(
        f"mesh must be [rows, cols] (two ints), got {value!r}"
    )


class SolverAdapter:
    """Base class for registry adapters (see module docstring).

    Subclasses set ``accepted_params`` and implement ``_build``; the
    registry decorator supplies ``solver_name``.
    """

    solver_name: str = ""
    accepted_params: FrozenSet[str] = frozenset()

    def __init__(self, **params: Any) -> None:
        unknown = set(params) - set(self.accepted_params)
        if unknown:
            raise SolverCapabilityError(
                f"solver {self.solver_name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(self.accepted_params)}"
            )
        self.params: Dict[str, Any] = dict(params)
        self.inner = self._build(dict(params))

    def _build(self, params: Dict[str, Any]):
        raise NotImplementedError

    def __getattr__(self, attr: str) -> Any:
        # Fall through to the wrapped reconstructor — but never recurse
        # while ``inner`` itself is still unset (mid-__init__ failures).
        if attr == "inner":
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({args})"


@register_solver("gd")
class GradientDecompositionSolver(SolverAdapter):
    """The paper's Algorithm 1 (gradient decomposition), adapted."""

    accepted_params = frozenset(
        {
            "n_ranks",
            "mesh",
            "iterations",
            "lr",
            "mode",
            "sync_period",
            "planner",
            "halo",
            "compensate_local",
            "refine_probe",
            "probe_lr",
            "backend",
            "dtype",
            "executor",
            "runtime_workers",
            "data_source",
            "batch_size",
            "prefetch",
            "positions",
            "probe_modes",
        }
    )

    def _build(self, params: Dict[str, Any]) -> GradientDecompositionReconstructor:
        if "mesh" in params:
            params["mesh"] = _mesh_from_json(params["mesh"])
        else:
            # A config that names neither a mesh nor a rank count gets the
            # same small-cluster default the CLI has always used.
            params.setdefault("n_ranks", 4)
        return GradientDecompositionReconstructor(**params)

    def reconstruct(
        self,
        dataset: PtychoDataset,
        *,
        observers: Sequence[Observer] = (),
        initial_probe: Optional[np.ndarray] = None,
        initial_volume: Optional[np.ndarray] = None,
    ) -> ReconstructionResult:
        return self.inner.reconstruct(
            dataset,
            observers=observers,
            initial_probe=initial_probe,
            initial_volume=initial_volume,
        )


@register_solver("hve")
class HaloExchangeSolver(SolverAdapter):
    """The halo-voxel-exchange baseline (paper Sec. II-C), adapted."""

    accepted_params = frozenset(
        {
            "n_ranks",
            "mesh",
            "iterations",
            "lr",
            "extra_rows",
            "halo",
            "inner_sweeps",
            "enforce_tile_constraint",
            "backend",
            "dtype",
            "executor",
            "runtime_workers",
            "data_source",
            "batch_size",
            "prefetch",
            "positions",
            "probe_modes",
        }
    )

    def _build(self, params: Dict[str, Any]) -> HaloExchangeReconstructor:
        if "mesh" in params:
            params["mesh"] = _mesh_from_json(params["mesh"])
        else:
            params.setdefault("n_ranks", 4)
        return HaloExchangeReconstructor(**params)

    def reconstruct(
        self,
        dataset: PtychoDataset,
        *,
        observers: Sequence[Observer] = (),
        initial_probe: Optional[np.ndarray] = None,
        initial_volume: Optional[np.ndarray] = None,
    ) -> ReconstructionResult:
        if initial_probe is not None:
            raise SolverCapabilityError(
                "solver 'hve' does not support initial_probe: the "
                "halo-exchange baseline has no probe-refinement path"
            )
        return self.inner.reconstruct(
            dataset, observers=observers, initial_volume=initial_volume
        )


@register_solver("serial")
class SerialSolver(SolverAdapter):
    """The single-volume correctness reference, adapted."""

    accepted_params = frozenset(
        {"iterations", "lr", "scheme", "refine_probe", "probe_lr",
         "backend", "dtype", "data_source", "batch_size", "prefetch",
         "positions", "probe_modes"}
    )

    def _build(self, params: Dict[str, Any]) -> SerialReconstructor:
        return SerialReconstructor(**params)

    def reconstruct(
        self,
        dataset: PtychoDataset,
        *,
        observers: Sequence[Observer] = (),
        initial_probe: Optional[np.ndarray] = None,
        initial_volume: Optional[np.ndarray] = None,
    ) -> ReconstructionResult:
        return self.inner.reconstruct(
            dataset,
            observers=observers,
            initial_probe=initial_probe,
            initial_volume=initial_volume,
        )
