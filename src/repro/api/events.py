"""Stateful observers built on the iteration-event stream.

:class:`~repro.core.observers.IterationEvent` and the observer calling
convention live in :mod:`repro.core.observers` (re-exported here and at
the package top level); this module adds observers that need the I/O
layer, chiefly periodic checkpointing through :mod:`repro.io.storage`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.api.config import ReconstructionConfig
from repro.core.observers import IterationEvent, Observer, dispatch
from repro.io.storage import save_result
from repro.obs import telemetry as _obs

__all__ = [
    "IterationEvent",
    "Observer",
    "dispatch",
    "CheckpointPolicy",
    "HistoryRecorder",
]


class CheckpointPolicy:
    """Observer that snapshots the run to disk every ``every`` iterations.

    Checkpoints are full result archives written through
    :func:`repro.io.storage.save_result`, so any of them can seed a
    restart via ``run_params={"resume": path}`` (or the CLI's
    ``--resume``).  Pass the run's config to embed it in every
    checkpoint for provenance.

    Parameters
    ----------
    directory:
        Where checkpoints land (created on first write).
    every:
        Checkpoint cadence in iterations; the count is 1-based, so
        ``every=2`` writes after iterations 2, 4, 6, ...
    prefix:
        Archive filename prefix (``<prefix>_iter0004.npz``).
    config:
        Optional :class:`~repro.api.config.ReconstructionConfig` embedded
        in each checkpoint archive.
    keep_last:
        If set, only the newest ``keep_last`` checkpoints are kept on
        disk (older ones are deleted after each write).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every: int = 1,
        prefix: str = "checkpoint",
        config: Optional[ReconstructionConfig] = None,
        keep_last: Optional[int] = None,
    ) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        if keep_last is not None and keep_last <= 0:
            raise ValueError("keep_last must be positive")
        self.directory = Path(directory)
        self.every = every
        self.prefix = prefix
        self.config = config
        self.keep_last = keep_last
        #: Paths written so far, oldest first (pruned ones removed).
        self.saved_paths: List[Path] = []

    def __call__(self, event: IterationEvent) -> None:
        if (event.iteration + 1) % self.every != 0:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / (
            f"{self.prefix}_iter{event.iteration + 1:04d}.npz"
        )
        tel = _obs.current()
        if tel.enabled:
            with tel.span("checkpoint.save", iteration=event.iteration):
                save_result(path, event.snapshot(), config=self.config)
        else:
            save_result(path, event.snapshot(), config=self.config)
        self.saved_paths.append(path)
        if self.keep_last is not None:
            while len(self.saved_paths) > self.keep_last:
                stale = self.saved_paths.pop(0)
                stale.unlink(missing_ok=True)

    @property
    def latest(self) -> Optional[Path]:
        """Newest checkpoint on disk, or None before the first write."""
        return self.saved_paths[-1] if self.saved_paths else None


class HistoryRecorder:
    """Observer that accumulates every event — the list-append idiom as a
    named class, handy for tests and notebooks::

        rec = HistoryRecorder()
        repro.reconstruct(dataset, config, observers=[rec])
        rec.events[-1].cost

    Note each event's lazy ``snapshot`` thunk keeps the run's engine
    state (per-rank volumes etc.) alive for as long as the event is
    retained; after a large run, keep the scalars you need (e.g.
    :attr:`costs`) and drop the recorder rather than holding it.
    """

    def __init__(self) -> None:
        self.events: List[IterationEvent] = []

    def __call__(self, event: IterationEvent) -> None:
        self.events.append(event)

    @property
    def costs(self) -> List[float]:
        """Cost curve seen so far."""
        return [e.cost for e in self.events]
