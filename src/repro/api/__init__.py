"""repro.api — config-driven reconstruction with a unified solver registry.

The pieces (one module each):

* :class:`ReconstructionConfig` — frozen, JSON-round-trippable run
  description (solver name + solver params + run params).
* :func:`register_solver` / :func:`solver_from_config` /
  :func:`solver_names` — the registry that all dispatch (CLI,
  ``repro.reconstruct``, experiments) resolves through; ``"gd"``,
  ``"hve"`` and ``"serial"`` are registered by :mod:`repro.api.solvers`,
  third-party solvers register the same way.
* :func:`reconstruct` — the single entry point running any config.
* :class:`IterationEvent` / :class:`CheckpointPolicy` /
  :class:`HistoryRecorder` — the structured observer API replacing the
  legacy ``callback(it, cost, engine)`` hook.

Minimal use::

    import repro
    from repro.api import ReconstructionConfig

    config = ReconstructionConfig(
        solver="gd",
        solver_params={"n_ranks": 9, "iterations": 10, "lr": 0.02},
    )
    result = repro.reconstruct(dataset, config)
"""

from repro.api.config import ReconstructionConfig
from repro.api.registry import (
    Solver,
    SolverCapabilityError,
    UnknownSolverError,
    get_solver,
    register_solver,
    solver_from_config,
    solver_names,
    unregister_solver,
)
from repro.api import solvers  # noqa: F401  (registers gd/hve/serial)
from repro.api.solvers import (
    GradientDecompositionSolver,
    HaloExchangeSolver,
    SerialSolver,
)
from repro.api.events import (
    CheckpointPolicy,
    HistoryRecorder,
    IterationEvent,
    Observer,
)
from repro.api.reconstruct import (
    RUN_PARAM_KEYS,
    ResumeMismatchError,
    reconstruct,
)
from repro.api.streaming import run_streaming

__all__ = [
    "ReconstructionConfig",
    "Solver",
    "UnknownSolverError",
    "SolverCapabilityError",
    "register_solver",
    "unregister_solver",
    "solver_names",
    "get_solver",
    "solver_from_config",
    "GradientDecompositionSolver",
    "HaloExchangeSolver",
    "SerialSolver",
    "IterationEvent",
    "Observer",
    "CheckpointPolicy",
    "HistoryRecorder",
    "reconstruct",
    "ResumeMismatchError",
    "RUN_PARAM_KEYS",
    "run_streaming",
]
