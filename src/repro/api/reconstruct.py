"""The single entry point every solver runs through.

``repro.reconstruct(dataset, config)`` resolves the config's solver name
through the registry, instantiates it with the config's
``solver_params``, applies the run-level parameters (currently
``resume``), and executes — one code path for the paper's Algorithm 1,
the halo-exchange baseline, the serial reference, and any third-party
registration.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.config import ReconstructionConfig
from repro.api.registry import solver_from_config
from repro.backend.base import resolve_backend, resolve_precision
from repro.data import open_store, resolve_batch_size
from repro.core.observers import Observer
from repro.core.reconstructor import ReconstructionResult
from repro.io.storage import load_result
from repro.obs import telemetry as _obs
from repro.physics.dataset import PtychoDataset
from repro.runtime.executor import default_executor_name, get_executor

__all__ = ["reconstruct", "ResumeMismatchError", "RUN_PARAM_KEYS"]

#: run_params keys :func:`reconstruct` understands.
RUN_PARAM_KEYS = frozenset({"resume", "resume_unchecked", "stream_offset"})


class ResumeMismatchError(ValueError):
    """A resume archive was produced by numerically different config.

    Raised when the config embedded in a ``run_params={"resume": path}``
    archive has a different :meth:`~repro.api.config.
    ReconstructionConfig.fingerprint` than the submitted config — i.e.
    the checkpoint was written by a different solver, different
    numerics-relevant solver parameters, or a different
    backend/precision pair, so silently continuing would reconstruct
    the wrong thing.  Archives without an embedded config skip the
    check (nothing to compare); ``run_params={"resume_unchecked":
    True}`` skips it explicitly (deliberate warm-starting across
    configs, e.g. seeding a complex64 run from a complex128 archive).
    """


def reconstruct(
    dataset: PtychoDataset,
    config: Union[ReconstructionConfig, Mapping[str, Any]],
    observers: Sequence[Observer] = (),
    *,
    initial_probe: Optional[np.ndarray] = None,
    initial_volume: Optional[np.ndarray] = None,
) -> ReconstructionResult:
    """Run the reconstruction a config describes.

    Parameters
    ----------
    dataset:
        The acquisition to reconstruct.
    config:
        A :class:`~repro.api.config.ReconstructionConfig` (or its
        ``to_dict`` form, converted on the fly).
    observers:
        Callables receiving one
        :class:`~repro.core.observers.IterationEvent` per iteration.
    initial_probe / initial_volume:
        In-memory starting state, forwarded to the solver.  Arrays do
        not belong in configs; for an on-disk warm start use
        ``run_params={"resume": "result.npz"}`` instead (an explicit
        ``initial_volume`` argument wins over ``resume``).

    Raises
    ------
    UnknownSolverError
        Config names a solver that is not registered.
    SolverCapabilityError
        Config asks the solver for something it cannot do.
    UnknownBackendError / BackendUnavailableError
        Config names a compute backend that is not registered, or one
        that cannot run here (e.g. ``"cupy"`` without a GPU) — checked
        up front, before any solver work starts.
    UnknownExecutorError
        Config names an execution runtime that is not registered.
    StoreFormatError / StoreUnavailableError / ValueError
        Config names a ``data_source`` that is missing, unreadable,
        geometry-mismatched, or needs an uninstalled dependency —
        checked up front, like the backend.
    ResumeMismatchError
        ``run_params["resume"]`` names an archive whose embedded config
        has a different numerics fingerprint than ``config`` (pass
        ``run_params={"resume_unchecked": True}`` to warm-start across
        configs deliberately).
    ValueError
        Unknown ``run_params`` key, or a non-positive ``batch_size``.
    """
    if not isinstance(config, ReconstructionConfig):
        config = ReconstructionConfig.from_dict(config)
    unknown = set(config.run_params) - RUN_PARAM_KEYS
    if unknown:
        raise ValueError(
            f"unknown run_params key(s) {sorted(unknown)}; "
            f"supported: {sorted(RUN_PARAM_KEYS)}"
        )
    if "stream_offset" in config.run_params and config.scan_source is None:
        raise ValueError(
            "run_params['stream_offset'] only applies to streamed runs "
            "(set config.scan_source)"
        )
    # Fail fast on an unrunnable compute/runtime configuration —
    # including the ambient (None → environment) resolutions, so a
    # REPRO_EXECUTOR typo surfaces here, not after dataset decomposition.
    # Note the precedence contract: an explicit config field always
    # wins; REPRO_BACKEND / REPRO_DTYPE / REPRO_EXECUTOR only fill None
    # ("ambient") fields.
    resolve_backend(config.backend)
    resolve_precision(config.dtype)
    get_executor(
        config.executor
        if config.executor is not None
        else default_executor_name()
    )
    # Same fail-fast treatment for the data pipeline: a missing or
    # geometry-mismatched store surfaces here, and the probe-open also
    # validates readability (format, version) before any solver work.
    store, owned = open_store(
        config.data_source, dataset=dataset
    )
    if owned:
        store.close()
    resolve_batch_size(config.batch_size)
    # Streamed runs (scan_source set) defer solver construction to the
    # epoch driver, which builds one static solver per coverage epoch.
    solver = None if config.scan_source is not None else solver_from_config(
        config
    )
    resume = config.run_params.get("resume")
    if initial_volume is None and resume is not None:
        archive = load_result(resume)
        if archive.config is not None and not config.run_params.get(
            "resume_unchecked"
        ):
            expected = archive.config.fingerprint()
            actual = config.fingerprint()
            if expected != actual:
                raise ResumeMismatchError(
                    f"resume archive {resume} was produced by a "
                    f"numerically different configuration (archived "
                    f"solver {archive.config.solver!r} on backend "
                    f"{archive.config.backend or 'ambient'}/"
                    f"{archive.config.dtype or 'ambient'}, fingerprint "
                    f"{expected[:12]}; submitted {config.solver!r} on "
                    f"{config.backend or 'ambient'}/"
                    f"{config.dtype or 'ambient'}, fingerprint "
                    f"{actual[:12]}); pass run_params="
                    '{"resume_unchecked": true} to warm-start across '
                    "configs deliberately"
                )
        initial_volume = archive.volume
        # A refined probe archived with the checkpoint is part of the
        # optimization state; forwarding it makes resume bit-exact for
        # probe-refining runs instead of silently restarting the probe
        # from the dataset's nominal one.
        if initial_probe is None and archive.probe is not None:
            initial_probe = archive.probe
    # A recorder already activated by the caller (the CLI's --trace, a
    # service worker) is reused so its spans and the run's spans land on
    # one timeline; otherwise the usual precedence applies — explicit
    # config field beats REPRO_TRACE beats off — and an enabled run gets
    # its own run-scoped recorder.  Either way the aggregated summary is
    # attached to the result (and from there to saved archives).
    cfg: ReconstructionConfig = config

    def _run() -> ReconstructionResult:
        if solver is None:
            # Local import: repro.api.streaming imports this module's
            # sibling registry, so a top-level import would be circular.
            from repro.api.streaming import run_streaming

            return run_streaming(
                dataset,
                cfg,
                observers=observers,
                initial_probe=initial_probe,
                initial_volume=initial_volume,
            )
        return solver.reconstruct(
            dataset,
            observers=observers,
            initial_probe=initial_probe,
            initial_volume=initial_volume,
        )

    ambient = _obs.current()
    if ambient.enabled:
        result = _run()
        result.telemetry = ambient.summary()
        return result
    if _obs.resolve_telemetry(config.telemetry):
        tel = _obs.Telemetry()
        with _obs.activate(tel):
            result = _run()
        result.telemetry = tel.summary()
        return result
    return _run()
