"""Per-rank memory accounting.

The numeric engine registers every named allocation a rank makes
(measurements, extended tile, accumulation buffer, workspace); the tracker
reports current and peak bytes per rank.  The analytic memory model in
:mod:`repro.perfmodel` is cross-validated against these measured numbers in
the test suite, which is what lets us trust it at the paper's full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["MemoryTracker"]


@dataclass
class _RankLedger:
    allocations: Dict[str, int] = field(default_factory=dict)
    current: int = 0
    peak: int = 0


class MemoryTracker:
    """Tracks named allocations per rank (bytes)."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._ledgers = [_RankLedger() for _ in range(n_ranks)]

    # ------------------------------------------------------------------
    def allocate(self, rank: int, name: str, nbytes: int) -> None:
        """Record an allocation of ``nbytes`` labelled ``name``.

        Re-allocating an existing name replaces it (like reassigning an
        attribute holding an array).
        """
        ledger = self._ledger(rank)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        old = ledger.allocations.get(name, 0)
        ledger.allocations[name] = nbytes
        ledger.current += nbytes - old
        ledger.peak = max(ledger.peak, ledger.current)

    def allocate_array(self, rank: int, name: str, array: np.ndarray) -> None:
        """Convenience: record the byte size of an ndarray."""
        self.allocate(rank, name, int(array.nbytes))

    def allocate_typed(
        self, rank: int, name: str, shape, dtype
    ) -> None:
        """Convenience: record ``prod(shape)`` elements of ``dtype``
        without materializing the array — bytes-per-element comes from
        the dtype (a complex64 policy halves what complex128 would
        book), which is how model-side accounting stays honest about
        precision."""
        n_elements = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        self.allocate(rank, name, n_elements * np.dtype(dtype).itemsize)

    def free(self, rank: int, name: str) -> None:
        """Release a named allocation."""
        ledger = self._ledger(rank)
        nbytes = ledger.allocations.pop(name, None)
        if nbytes is None:
            raise KeyError(f"rank {rank} has no allocation named {name!r}")
        ledger.current -= nbytes

    # ------------------------------------------------------------------
    def current_bytes(self, rank: int) -> int:
        """Currently allocated bytes on ``rank``."""
        return self._ledger(rank).current

    def peak_bytes(self, rank: int) -> int:
        """Peak allocated bytes on ``rank``."""
        return self._ledger(rank).peak

    def peak_bytes_max(self) -> int:
        """Largest per-rank peak — the number that must fit on one GPU."""
        return max(l.peak for l in self._ledgers)

    def peak_bytes_mean(self) -> float:
        """Average per-rank peak (the paper's Tables II/III report average
        peak memory footprint per GPU)."""
        return float(np.mean([l.peak for l in self._ledgers]))

    def breakdown(self, rank: int) -> Dict[str, int]:
        """Named allocation sizes for ``rank`` (copy)."""
        return dict(self._ledger(rank).allocations)

    def per_rank_peaks(self) -> List[int]:
        """Peak bytes for every rank."""
        return [l.peak for l in self._ledgers]

    def _ledger(self, rank: int) -> _RankLedger:
        if not (0 <= rank < len(self._ledgers)):
            raise ValueError(f"rank {rank} out of range")
        return self._ledgers[rank]
